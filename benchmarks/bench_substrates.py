"""Experiment E9: substrate sanity and the BA coin-source ablation.

Verifies that the substrate protocols the paper assumes (A-Cast, binary BA,
CommonSubset) satisfy their definitions under adversarial conditions, and
compares BA behaviour across coin sources (perfect-oracle coin vs local coin
vs the SVSS-based weak coin), which is the design-choice ablation called out
in DESIGN.md.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.adversary import CrashBehavior, RandomNoiseBehavior
from repro.core import api
from repro.protocols.aba import LocalCoinSource, OracleCoinSource, ProtocolCoinSource
from repro.protocols.weak_coin import WeakCommonCoin

TRIALS = 10


def test_e9_acast_under_faults(benchmark):
    single = benchmark(
        lambda: api.run_acast(4, "v", sender=0, seed=0, corruptions={3: CrashBehavior.factory()})
    )
    assert single.agreed_value == "v"

    delivered = sum(
        1
        for seed in range(TRIALS)
        if api.run_acast(
            4, "v", sender=0, seed=seed, corruptions={2: RandomNoiseBehavior.factory()}
        ).agreed_value
        == "v"
    )
    print_table(
        "E9: A-Cast validity under a noisy Byzantine party",
        ["trials", "correct deliveries"],
        [(TRIALS, delivered)],
    )
    assert delivered == TRIALS


def test_e9_common_subset_under_crash(benchmark):
    single = benchmark(
        lambda: api.run_common_subset(
            4, [0, 1, 2], seed=0, corruptions={3: CrashBehavior.factory()}
        )
    )
    assert len(single.agreed_value) >= 3

    agreements = sum(
        1
        for seed in range(TRIALS)
        if not api.run_common_subset(
            4, [0, 1, 2], seed=seed, corruptions={3: CrashBehavior.factory()}
        ).disagreement
    )
    print_table(
        "E9b: CommonSubset agreement with a crashed party",
        ["trials", "agreed"],
        [(TRIALS, agreements)],
    )
    assert agreements == TRIALS


COIN_SOURCES = {
    "oracle (ideal common coin)": lambda: OracleCoinSource(7),
    "local coin (Ben-Or)": lambda: LocalCoinSource(),
    "SVSS weak coin": lambda: ProtocolCoinSource(WeakCommonCoin.factory),
}


@pytest.mark.parametrize("source_name", list(COIN_SOURCES))
def test_e9_aba_coin_source_ablation(benchmark, source_name):
    """BA safety is coin-independent; cost is not.  Measures both."""
    source_factory = COIN_SOURCES[source_name]
    inputs = {0: 0, 1: 1, 2: 0, 3: 1}

    single = benchmark(
        lambda: api.run_aba(4, inputs, seed=0, coin_source=source_factory())
    )
    assert single.agreed_value in (0, 1)

    disagreements = 0
    messages = 0
    for seed in range(TRIALS):
        result = api.run_aba(4, inputs, seed=seed, coin_source=source_factory())
        disagreements += int(result.disagreement)
        messages += result.trace.messages_sent
    print_table(
        f"E9c: binary BA with split inputs, coin source = {source_name}",
        ["trials", "disagreements", "mean messages"],
        [(TRIALS, disagreements, messages // TRIALS)],
    )
    assert disagreements == 0
