"""Experiment E7 (Definition 3.2): SVSS binding-or-shun and shun accounting.

Measures, over batches of SVSS sessions with Byzantine participants:

* honest-dealer validity (the dealt secret is always reconstructed by honest
  parties unless a shunning event occurred),
* the binding-or-shun disjunction (any reconstruction disagreement coincides
  with at least one new shunning event), and
* the global shun budget (< n^2 shunning events, the quantity the CoinFlip
  analysis charges failures against).
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.adversary import BadShareBehavior, WithholdingDealerBehavior
from repro.core import api

SESSIONS = 12


def test_e7_honest_dealer_validity(benchmark):
    single = benchmark(lambda: api.run_svss(4, 777, dealer=0, seed=0))
    assert single.agreed_value == 777

    stats = api.run_many(api.run_svss, range(SESSIONS), n=4, secret=777, dealer=0)
    print_table(
        "E7: SVSS honest-dealer validity",
        ["sessions", "correct reconstructions", "shun events"],
        [(SESSIONS, stats.value_counts[repr(777)], stats.total_shun_events)],
    )
    assert stats.value_counts[repr(777)] == SESSIONS
    assert stats.total_shun_events == 0


def test_e7_binding_or_shun_under_attack(benchmark):
    secret = 424242

    def run(seed=0):
        return api.run_svss(
            4, secret, dealer=0, seed=seed, corruptions={3: BadShareBehavior.factory()}
        )

    benchmark(run)

    violations_without_shun = 0
    total_shuns = 0
    wrong_outputs = 0
    for seed in range(SESSIONS):
        result = run(seed)
        shuns = result.trace.total_shun_events()
        total_shuns += shuns
        wrong = [v for v in result.outputs.values() if v != secret]
        wrong_outputs += len(wrong)
        if wrong and shuns == 0:
            violations_without_shun += 1
    print_table(
        "E7b: binding-or-shun with a corrupted reconstructor",
        ["sessions", "wrong outputs", "shun events", "binding broken w/o shun"],
        [(SESSIONS, wrong_outputs, total_shuns, violations_without_shun)],
    )
    assert violations_without_shun == 0
    assert total_shuns < SESSIONS * 16  # far below the per-run n^2 budget


def test_e7_withholding_dealer_recovery(benchmark):
    """Liveness under a row-withholding dealer: every honest party terminates."""
    def run(seed=0):
        return api.run_svss(
            4,
            99,
            dealer=0,
            seed=seed,
            corruptions={0: WithholdingDealerBehavior.factory(victims=[2])},
        )

    single = benchmark(run)
    assert 2 in single.outputs

    recoveries = 0
    for seed in range(SESSIONS):
        result = run(seed)
        share = result.network.processes[2].protocol(("svss_harness", "share"))
        if share.output is not None and share.output.recovered:
            recoveries += 1
    print_table(
        "E7c: row recovery at the withheld victim",
        ["sessions", "victim terminated via row recovery"],
        [(SESSIONS, recoveries)],
    )
    assert recoveries == SESSIONS
