"""Experiment E4 (Theorem 4.3 / Appendix E): FairChoice validity.

Two complementary reproductions:

* analytic -- the Appendix-E closed-form bound, the exact probability with
  ideal coins and the worst-case probability with eps-biased coins, for a
  sweep of ``m``;
* empirical -- repeated FairChoice executions in the simulator, measuring how
  often the output lands in the smallest possible majority subset.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.analysis.fairness import fairness_row
from repro.core import api

TRIALS = 20
ANALYTIC_MS = [3, 4, 5, 6, 8]


def test_e4_fairness_bound_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [fairness_row(m) for m in ANALYTIC_MS], rounds=1, iterations=1
    )
    print_table(
        "E4: FairChoice validity for the smallest majority subset (analytic)",
        ["m", "bits", "eps", "paper bound", "worst case", "ideal coins", "> 1/2"],
        [
            (
                row.m,
                row.bits,
                f"{row.epsilon:.5f}",
                f"{row.paper_bound:.4f}",
                f"{row.worst_case:.4f}",
                f"{row.ideal_probability:.4f}",
                row.satisfies_claim,
            )
            for row in rows
        ],
    )
    assert all(row.satisfies_claim for row in rows)
    assert all(row.paper_bound > 0.5 for row in rows)


def test_e4_fair_choice_empirical(benchmark):
    m = 3
    target = {0, 1}  # smallest majority subset

    single = benchmark(lambda: api.run_fair_choice(4, m, seed=0, coinflip_rounds=1))
    assert 0 <= single.agreed_value < m

    hits = 0
    disagreements = 0
    for seed in range(TRIALS):
        result = api.run_fair_choice(4, m, seed=seed, coinflip_rounds=1)
        if result.disagreement:
            disagreements += 1
        elif result.agreed_value in target:
            hits += 1
    print_table(
        "E4b: empirical FairChoice hit rate for majority subset {0,1}, m=3",
        ["trials", "hits", "rate", "paper lower bound"],
        [(TRIALS, hits, f"{hits / TRIALS:.2f}", "0.50")],
    )
    assert disagreements == 0
    # Expected hit rate is about 2/3; assert a loose floor well above chance-of-zero.
    assert hits >= TRIALS // 3
