"""Experiment E1 (Theorem 3.5): CoinFlip bias and agreement under attack.

The theorem claims that for every bit value the probability that all honest
parties output that value is at least ``1/2 - eps``, and that honest parties
always agree -- even against Byzantine participants.  We measure the empirical
output frequencies for several adversaries at simulation-scale iteration
counts and check (a) perfect agreement, (b) both outcomes occur with
non-negligible frequency, (c) the adversary does not push either outcome
below a loose statistical floor.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.adversary import BadShareBehavior, CrashBehavior, DeterministicValueDealer
from repro.core import api

TRIALS = 24
#: An odd iteration count so the majority vote cannot tie (with the paper's
#: enormous even k, ties are negligible; at simulation scale they would skew
#: the distribution towards the tie-breaking value).
ROUNDS = 3
#: Loose statistical floor for 24 Bernoulli(~1/2) trials; far below the
#: expectation of 12 but strong enough to catch a fully-biased coin.
MIN_OCCURRENCES = 4

ADVERSARIES = {
    "honest": None,
    "crash": {3: CrashBehavior.factory()},
    "bad-share": {3: BadShareBehavior.factory()},
    "constant-dealer": {2: DeterministicValueDealer.factory(0)},
}


def _frequencies(corruptions):
    stats = api.run_many(
        api.run_coinflip, range(TRIALS), n=4, rounds=ROUNDS, corruptions=corruptions
    )
    return stats


@pytest.mark.parametrize("adversary", list(ADVERSARIES))
def test_e1_coinflip_bias(benchmark, adversary):
    corruptions = ADVERSARIES[adversary]
    single = benchmark(lambda: api.run_coinflip(4, seed=0, rounds=ROUNDS, corruptions=corruptions))
    assert single.agreed_value in (0, 1)

    stats = _frequencies(corruptions)
    zeros = stats.value_counts[repr(0)]
    ones = stats.value_counts[repr(1)]
    print_table(
        f"E1: CoinFlip(eps=0.25) output frequencies, n=4, adversary={adversary}",
        ["value", "count", "frequency", "paper lower bound"],
        [
            (0, zeros, f"{zeros / TRIALS:.2f}", "0.25 (1/2 - eps)"),
            (1, ones, f"{ones / TRIALS:.2f}", "0.25 (1/2 - eps)"),
        ],
    )
    # Agreement must be perfect; bias must not be total.
    assert stats.disagreement_rate == 0.0
    assert zeros >= MIN_OCCURRENCES
    assert ones >= MIN_OCCURRENCES


def test_e1_coinflip_larger_system(benchmark):
    result = benchmark(lambda: api.run_coinflip(7, seed=1, rounds=ROUNDS))
    assert result.agreed_value in (0, 1)
    stats = api.run_many(api.run_coinflip, range(12), n=7, rounds=1)
    print_table(
        "E1: CoinFlip output frequencies, n=7 (honest)",
        ["value", "frequency"],
        [(value, f"{stats.frequency(value):.2f}") for value in (0, 1)],
    )
    assert stats.disagreement_rate == 0.0
