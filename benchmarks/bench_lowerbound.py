"""Experiment E6 (Theorem 2.2): the lower-bound attacks.

Regenerates the lower-bound table: for each candidate AVSS, which properties
hold (Secrecy / Termination, decided by exact enumeration), the Claim-1
view-splitting success probability, and the Claim-2 wrong-output rate.  The
theorem's prediction -- secrecy + termination forces a correctness failure
above the ``1/3 - eps`` budget -- must hold for every candidate.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.lowerbound import (
    CORRECTNESS_FAILURE_THRESHOLD,
    DealerSplitAttack,
    ReconstructionAttack,
    masked_xor_avss,
    run_experiment,
)

TRIALS = 300


def test_e6_lower_bound_table(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment(trials=TRIALS, seed=0), rounds=1, iterations=1
    )
    print_table(
        "E6: Theorem 2.2 attacks against candidate AVSS protocols (n=4, t=1)",
        [
            "candidate",
            "secrecy",
            "termination",
            "claim1 split | guess",
            "claim2 wrong output",
            "violates (2/3+eps)-correctness",
        ],
        [
            (
                row.candidate,
                row.secrecy_holds,
                f"{row.termination_rate:.2f}",
                f"{row.claim1_split_rate_given_guess:.2f}",
                f"{row.claim2_wrong_output_rate:.2f}",
                row.correctness_violated,
            )
            for row in rows.values()
        ],
    )
    assert all(row.consistent_with_theorem for row in rows.values())
    masked = rows["masked-xor"]
    assert masked.secrecy_holds
    assert masked.correctness_violated
    assert masked.claim2_wrong_output_rate > CORRECTNESS_FAILURE_THRESHOLD
    checked = rows["echo-checked"]
    assert not checked.secrecy_holds


def test_e6_claim1_attack_speed(benchmark):
    """Per-execution cost of the dealer view-splitting attack."""
    import random

    attack = DealerSplitAttack(masked_xor_avss())
    rng = random.Random(0)
    outcome = benchmark(lambda: attack.execute(rng))
    assert outcome.applicable


def test_e6_claim2_attack_speed(benchmark):
    """Per-execution cost of the reconstruction re-simulation attack."""
    import random

    attack = ReconstructionAttack(masked_xor_avss())
    rng = random.Random(1)
    outcome = benchmark(lambda: attack.execute(rng))
    assert outcome.a_output is not None
