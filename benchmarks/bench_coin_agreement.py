"""Experiment E2 (Theorem 3.5 vs. weak coins): agreement comparison.

The paper's motivation for the *strong* common coin: a weak coin lets honest
parties disagree with constant probability, a strong coin never does.  We
measure the disagreement rate of both under asynchronous (random) scheduling.

Both measurements are expressed as a declarative campaign
(:mod:`repro.experiments`), so the same sweep can also be run standalone::

    python -m repro.experiments run <campaign.json> --workers 4
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.experiments import CampaignSpec, ExperimentSpec, run_campaign

TRIALS = 30

CAMPAIGN = CampaignSpec(
    name="e2-strong-vs-weak",
    cells=[
        ExperimentSpec(
            name="strong-coin",
            protocol="coinflip",
            n=4,
            seeds=list(range(TRIALS)),
            params={"rounds": 1},
        ),
        ExperimentSpec(
            name="weak-coin",
            protocol="weak_coin",
            n=4,
            seeds=list(range(TRIALS)),
        ),
    ],
)


def test_e2_strong_vs_weak_coin_agreement(benchmark):
    strong_rate = benchmark.pedantic(
        lambda: run_campaign(CampaignSpec(name="e2-strong", cells=[CAMPAIGN.cell("strong-coin")]))[
            "strong-coin"
        ].disagreement_rate,
        rounds=1,
        iterations=1,
    )
    weak_rate = run_campaign(
        CampaignSpec(name="e2-weak", cells=[CAMPAIGN.cell("weak-coin")])
    )["weak-coin"].disagreement_rate
    print_table(
        "E2: honest-party disagreement rate (asynchronous scheduling, n=4)",
        ["primitive", "disagreement rate", "paper claim"],
        [
            ("CoinFlip (strong coin)", f"{strong_rate:.2f}", "0 (always agree)"),
            ("SVSS weak coin", f"{weak_rate:.2f}", "may disagree (constant prob.)"),
        ],
    )
    # The strong coin must never disagree; the weak coin is allowed to (and
    # typically does for some seeds), which is exactly the gap the paper closes.
    assert strong_rate == 0.0
    assert weak_rate >= 0.0


def test_e2_weak_coin_disagreement_is_real(benchmark):
    """At least some asynchronous schedule splits the weak coin's output.

    If no disagreement shows up in this sample the assertion is skipped rather
    than failed -- the weak coin is only *allowed* to disagree.
    """
    rate = benchmark.pedantic(
        lambda: run_campaign(
            CampaignSpec(name="e2b-weak", cells=[CAMPAIGN.cell("weak-coin")])
        )["weak-coin"].disagreement_rate,
        rounds=1,
        iterations=1,
    )
    print_table(
        "E2b: weak coin disagreement over a wider seed sweep",
        ["trials", "disagreement rate"],
        [(TRIALS, f"{rate:.2f}")],
    )
    assert 0.0 <= rate <= 1.0
