"""Experiment E5 (Theorem 4.5): FBA validity and fair validity.

Measures, against a value-injecting Byzantine party:

* unanimous honest inputs always win (classic validity), and
* with divergent honest inputs, the adversary's value wins at most about half
  the time (fair validity) -- the paper's headline property.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.adversary import FBAValueInjector
from repro.adversary.scheduling import favour_parties
from repro.core import api

TRIALS = 16
ADVERSARY = 3
EVIL = "adversary-value"


def test_e5_unanimous_validity(benchmark):
    inputs = {0: "honest", 1: "honest", 2: "honest", 3: EVIL}

    single = benchmark(
        lambda: api.run_fba(
            4,
            inputs,
            seed=0,
            coinflip_rounds=1,
            corruptions={ADVERSARY: FBAValueInjector.factory(EVIL)},
            scheduler=favour_parties([ADVERSARY]),
        )
    )
    assert single.agreed_value == "honest"

    wins = 0
    for seed in range(TRIALS):
        result = api.run_fba(
            4,
            inputs,
            seed=seed,
            coinflip_rounds=1,
            corruptions={ADVERSARY: FBAValueInjector.factory(EVIL)},
        )
        if result.agreed_value == "honest":
            wins += 1
    print_table(
        "E5: FBA with unanimous honest inputs vs value-injecting adversary",
        ["trials", "honest wins", "paper claim"],
        [(TRIALS, wins, "all trials")],
    )
    assert wins == TRIALS


def test_e5_fair_validity_with_divergent_inputs(benchmark):
    inputs = {0: "h0", 1: "h1", 2: "h2", 3: EVIL}

    single = benchmark(
        lambda: api.run_fba(
            4,
            inputs,
            seed=0,
            coinflip_rounds=1,
            corruptions={ADVERSARY: FBAValueInjector.factory(EVIL)},
        )
    )
    assert single.agreed_value in {"h0", "h1", "h2", EVIL}

    honest_wins = 0
    adversary_wins = 0
    for seed in range(TRIALS):
        result = api.run_fba(
            4,
            inputs,
            seed=100 + seed,
            coinflip_rounds=1,
            corruptions={ADVERSARY: FBAValueInjector.factory(EVIL)},
        )
        assert not result.disagreement
        if result.agreed_value == EVIL:
            adversary_wins += 1
        else:
            honest_wins += 1
    print_table(
        "E5b: FBA fair validity with divergent honest inputs",
        ["trials", "honest value wins", "adversary value wins", "paper claim"],
        [(TRIALS, honest_wins, adversary_wins, "honest wins >= 1/2 of trials (in expectation)")],
    )
    # Loose statistical floor: expectation is >= TRIALS/2, demand > TRIALS/4.
    assert honest_wins > TRIALS // 4


def test_e5_fair_validity_without_corruption(benchmark):
    """All-honest divergent inputs: the output is always someone's input."""
    inputs = {0: "a", 1: "b", 2: "c", 3: "d"}
    single = benchmark(lambda: api.run_fba(4, inputs, seed=0, coinflip_rounds=1))
    assert single.agreed_value in set(inputs.values())

    winners = {}
    for seed in range(TRIALS):
        result = api.run_fba(4, inputs, seed=seed, coinflip_rounds=1)
        winners[result.agreed_value] = winners.get(result.agreed_value, 0) + 1
    print_table(
        "E5c: FBA winner distribution, four distinct honest inputs",
        ["value", "wins"],
        sorted(winners.items()),
    )
    assert set(winners) <= set(inputs.values())
