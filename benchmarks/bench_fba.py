"""Experiment E5 (Theorem 4.5): FBA validity and fair validity.

Measures, against a value-injecting Byzantine party:

* unanimous honest inputs always win (classic validity), and
* with divergent honest inputs, the adversary's value wins at most about half
  the time (fair validity) -- the paper's headline property.

Each measurement is one cell of a declarative campaign
(:mod:`repro.experiments`): the adversary (behaviour + scheduler) and the
seed sweep live in data, not in hand-rolled loops.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.experiments import (
    BehaviorSpec,
    CampaignSpec,
    ExperimentSpec,
    SchedulerSpec,
    run_campaign,
)

TRIALS = 16
ADVERSARY = 3
EVIL = "adversary-value"

INJECTOR = {ADVERSARY: BehaviorSpec("fba_value_injector", {"value": EVIL})}


def _fba_cell(name: str, inputs, seeds, adversary=None, scheduler=None) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        protocol="fba",
        n=4,
        seeds=list(seeds),
        params={"inputs": dict(inputs), "coinflip_rounds": 1},
        adversary=dict(adversary or {}),
        scheduler=scheduler,
    )


def _run_cell(cell: ExperimentSpec):
    return run_campaign(CampaignSpec(name=f"e5-{cell.name}", cells=[cell]))[cell.name]


def test_e5_unanimous_validity(benchmark):
    inputs = {0: "honest", 1: "honest", 2: "honest", 3: EVIL}

    rushed = benchmark(
        lambda: _run_cell(
            _fba_cell(
                "unanimous-rushed",
                inputs,
                seeds=[0],
                adversary=INJECTOR,
                scheduler=SchedulerSpec("favour_parties", {"favoured": [ADVERSARY]}),
            )
        )
    )
    assert rushed.frequency("honest") == 1.0

    stats = _run_cell(_fba_cell("unanimous", inputs, seeds=range(TRIALS), adversary=INJECTOR))
    wins = stats.value_counts[repr("honest")]
    print_table(
        "E5: FBA with unanimous honest inputs vs value-injecting adversary",
        ["trials", "honest wins", "paper claim"],
        [(TRIALS, wins, "all trials")],
    )
    assert wins == TRIALS


def test_e5_fair_validity_with_divergent_inputs(benchmark):
    inputs = {0: "h0", 1: "h1", 2: "h2", 3: EVIL}

    single = benchmark(
        lambda: _run_cell(
            _fba_cell("divergent-single", inputs, seeds=[0], adversary=INJECTOR)
        )
    )
    assert single.disagreements == 0
    assert sum(single.value_counts.values()) == 1
    assert set(single.value_counts) <= {repr(v) for v in ("h0", "h1", "h2", EVIL)}

    stats = _run_cell(
        _fba_cell("divergent", inputs, seeds=range(100, 100 + TRIALS), adversary=INJECTOR)
    )
    assert stats.disagreements == 0
    adversary_wins = stats.value_counts[repr(EVIL)]
    honest_wins = stats.trials - adversary_wins
    print_table(
        "E5b: FBA fair validity with divergent honest inputs",
        ["trials", "honest value wins", "adversary value wins", "paper claim"],
        [(TRIALS, honest_wins, adversary_wins, "honest wins >= 1/2 of trials (in expectation)")],
    )
    # Loose statistical floor: expectation is >= TRIALS/2, demand > TRIALS/4.
    assert honest_wins > TRIALS // 4


def test_e5_fair_validity_without_corruption(benchmark):
    """All-honest divergent inputs: the output is always someone's input."""
    inputs = {0: "a", 1: "b", 2: "c", 3: "d"}
    single = benchmark(lambda: _run_cell(_fba_cell("all-honest-single", inputs, seeds=[0])))
    assert single.disagreements == 0
    assert sum(single.value_counts.values()) == 1
    assert set(single.value_counts) <= {repr(v) for v in inputs.values()}

    stats = _run_cell(_fba_cell("all-honest", inputs, seeds=range(TRIALS)))
    print_table(
        "E5c: FBA winner distribution, four distinct honest inputs",
        ["value", "wins"],
        sorted(stats.value_counts.items()),
    )
    assert set(stats.value_counts) <= {repr(v) for v in inputs.values()}
    assert stats.disagreements == 0
