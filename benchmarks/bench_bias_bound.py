"""Experiment E3 (Appendix D): the binomial bias bound behind Theorem 3.5.

Reproduces the appendix's chain of reasoning numerically:

* the paper's iteration count ``k(eps, n) = 4*ceil((e/(eps*pi))^2 n^4)``,
* its closed-form lower bound on ``Pr[X > k/2 + n^2]``,
* the exact binomial tail (the ground truth the bound approximates), and
* the much smaller ``k`` that already suffices when computed exactly --
  showing how conservative the paper's constants are (ablation).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.binomial import (
    bias_bound_row,
    coinflip_iterations,
    minimum_iterations_for_bias,
    monte_carlo_tail,
    paper_tail_lower_bound,
)

CASES = [(2, 0.25), (2, 0.1), (3, 0.25), (3, 0.1)]


def test_e3_bias_bound_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [bias_bound_row(n, epsilon) for n, epsilon in CASES],
        rounds=1,
        iterations=1,
    )
    print_table(
        "E3: Appendix D bias bound, paper k vs exact binomial tail",
        ["n", "eps", "k (paper)", "paper bound", "exact Pr[X>k/2+n^2]", "claim 1/2-eps", "holds"],
        [
            (
                row.n,
                row.epsilon,
                row.k,
                f"{row.paper_bound:.4f}",
                f"{row.exact_probability:.4f}",
                f"{0.5 - row.epsilon:.4f}",
                row.satisfies_claim,
            )
            for row in rows
        ],
    )
    assert all(row.satisfies_claim for row in rows)
    # The paper's closed-form bound must itself clear 1/2 - eps.
    for row in rows:
        assert row.paper_bound >= 0.5 - row.epsilon - 1e-9


def test_e3_paper_constant_is_conservative(benchmark):
    """Ablation: the exactly-computed minimal k is orders of magnitude below the paper's."""
    def build():
        rows = []
        for n, epsilon in [(2, 0.25), (3, 0.25)]:
            paper_k = coinflip_iterations(epsilon, n)
            minimal_k = minimum_iterations_for_bias(n, epsilon)
            rows.append((n, epsilon, paper_k, minimal_k, f"{paper_k / minimal_k:.0f}x"))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print_table(
        "E3b: paper k vs minimal k achieving the same bias (exact computation)",
        ["n", "eps", "paper k", "minimal k", "overshoot"],
        rows,
    )
    for _n, _eps, paper_k, minimal_k, _ratio in rows:
        assert paper_k >= minimal_k


@pytest.mark.parametrize("n,epsilon", [(2, 0.25)])
def test_e3_monte_carlo_cross_check(benchmark, n, epsilon):
    """A Monte-Carlo estimate of the tail agrees with the exact computation."""
    k = min(coinflip_iterations(epsilon, n), 512)
    threshold = k // 2 + n * n
    estimate = benchmark.pedantic(
        lambda: monte_carlo_tail(k, threshold, samples=2000), rounds=1, iterations=1
    )
    exact = bias_bound_row(n, epsilon, k_override=k).exact_probability
    print_table(
        "E3c: Monte-Carlo vs exact binomial tail",
        ["k", "threshold", "exact", "monte-carlo"],
        [(k, threshold, f"{exact:.4f}", f"{estimate:.4f}")],
    )
    assert estimate == pytest.approx(exact, abs=0.05)
    assert paper_tail_lower_bound(k, n) <= exact + 1e-9
