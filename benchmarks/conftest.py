"""Shared helpers for the benchmark/experiment harness.

Every module in this directory regenerates one experiment from DESIGN.md
(section 5).  Each experiment prints a small table comparing the paper's
claimed value with the measured value, and asserts the qualitative "shape"
(who wins, which bound holds); absolute running times are reported by
pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

import pytest

#: Every experiment table is also appended here, so the results survive
#: pytest's stdout capture and can be pasted into EXPERIMENTS.md.
RESULTS_PATH = Path(__file__).resolve().parent / "experiment_tables.txt"


@pytest.fixture(scope="session", autouse=True)
def _reset_results_file():
    """Start each benchmark session with a fresh results file."""
    RESULTS_PATH.write_text("")
    yield


def _emit(text: str) -> None:
    print(text)
    with RESULTS_PATH.open("a") as handle:
        handle.write(text + "\n")


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print an aligned experiment table and append it to the results file."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(column) for column in header]
    for row in rows:
        widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
    line = "  ".join(name.ljust(width) for name, width in zip(header, widths))
    _emit("")
    _emit(f"== {title} ==")
    _emit(line)
    _emit("-" * len(line))
    for row in rows:
        _emit("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def print_kv(title: str, values: Mapping[str, object]) -> None:
    """Print a key/value experiment summary and append it to the results file."""
    _emit("")
    _emit(f"== {title} ==")
    for key, value in values.items():
        _emit(f"  {key}: {value}")
