"""Beacon-service perf family: warm resident executors vs cold worlds.

Thin adapter over :mod:`repro.service.bench` so the beacon rows plug into the
standard ``python -m benchmarks.perf`` harness and the ``check_regression``
gate alongside the crypto/net/sim families.  The speedup rows measure the
exact quantity the service exists to buy -- per-request latency with warm
per-(prime, n) state versus rebuilding the world each request; the
end-to-end service row is trend-only (``speedup: null``) and records
p50/p95/p99 latency and requests/s in its params.
"""

from __future__ import annotations

from typing import List

from benchmarks.perf.harness import BenchResult


def run(quick: bool) -> List[BenchResult]:
    from repro.service import bench

    return bench.run(quick)
