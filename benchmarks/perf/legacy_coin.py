"""Frozen pre-batching coin stack: the ``before`` side of bench_coin_scale.

The batched crypto plane rebuilt the SVSS hot path (shared evaluation
tables, cross-dealer row-validation/eval caches, plan-backed Lagrange
weights) and replaced the flat-Fenwick random delivery queue with a
block-indexed one.  To keep the end-to-end speedup measurable after the
live code moves on, this module freezes byte-for-byte copies of the
pre-batching implementations:

* ``LegacySendOrderRandomQueue`` -- the flat Fenwick tree over send slots
  (one tree node per message) with its list-mode crossover;
* ``LegacySVSSShare`` / ``LegacySVSSRec`` -- per-delivery scalar row
  validation (`_legacy_validate_row_ints`), per-instance ``eval_at_many``
  sweeps and Horner cross-checks;
* ``_legacy_interpolate_at_zero`` -- reconstruction weights derived from
  the full memoised Lagrange basis (its own cache, so bench runs never
  warm one side with the other side's entries);
* ``LegacyWeakCommonCoin`` / ``LegacyCoinFlip`` -- the coin protocols
  wired to the frozen SVSS classes.

Everything here reproduces the live path's outputs and delivery order
byte-identically per seed (asserted by an untimed pre-check in
``bench_coin_scale``); the scalar kernels in :mod:`repro.crypto.kernels`
are shared because they *are* the oracle the batched plane is
equivalence-tested against.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import ProtocolParams
from repro.crypto import kernels
from repro.crypto.field import Field
from repro.crypto.polynomial import Polynomial
from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.errors import DecodingError
from repro.net.message import Message, SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.net.queues import DeliveryQueue
from repro.net.runtime import Simulation, SimulationResult
from repro.net.scheduler import RandomScheduler
from repro.protocols.aba import BinaryAgreement, CoinSource, OracleCoinSource
from repro.protocols.common_subset import CommonSubset
from repro.protocols.svss import party_point


# ----------------------------------------------------------------------
# Frozen flat-Fenwick random queue (pre-PR SendOrderRandomQueue).
# ----------------------------------------------------------------------
class LegacySendOrderRandomQueue(DeliveryQueue):
    """The pre-batching rank-indexed queue: one Fenwick node per send slot."""

    _TREE_THRESHOLD = 32768

    def __init__(self) -> None:
        self._count = 0
        self._list: List[Message] = []
        self._tree: Optional[List[int]] = None
        self._slots: List[Optional[Message]] = []
        self._capacity = 0
        self._randbelow: Optional[Callable[[int], int]] = None
        self._randbelow_rng: Optional[random.Random] = None

    def __len__(self) -> int:
        return self._count

    def _rebuild_tree(self, slots: List[Optional[Message]]) -> None:
        capacity = 16
        while capacity <= len(slots):
            capacity *= 2
        tree = [0] * (capacity + 1)
        for index, message in enumerate(slots):
            if message is not None:
                position = index + 1
                while position <= capacity:
                    tree[position] += 1
                    position += position & -position
        self._slots = slots
        self._tree = tree
        self._capacity = capacity

    def _enter_tree_mode(self) -> None:
        self._rebuild_tree(list(self._list))
        self._list = []

    def _compact(self) -> None:
        alive: List[Optional[Message]] = [m for m in self._slots if m is not None]
        if len(alive) <= self._TREE_THRESHOLD // 2:
            self._list = alive  # type: ignore[assignment]
            self._tree = None
            self._slots = []
            self._capacity = 0
        else:
            self._rebuild_tree(alive)

    def push(self, message: Message) -> None:
        self._count += 1
        if self._tree is None:
            self._list.append(message)
            if self._count > self._TREE_THRESHOLD:
                self._enter_tree_mode()
            return
        index = len(self._slots)
        if index >= self._capacity:
            self._rebuild_tree(self._slots)
        self._slots.append(message)
        position = index + 1
        tree = self._tree
        capacity = self._capacity
        while position <= capacity:
            tree[position] += 1
            position += position & -position

    def pop(self, rng: random.Random, step: int) -> Message:
        if rng is not self._randbelow_rng:
            self._randbelow_rng = rng
            self._randbelow = getattr(rng, "_randbelow", rng.randrange)
        rank = self._randbelow(self._count)
        self._count -= 1
        if self._tree is None:
            return self._list.pop(rank)
        tree = self._tree
        position = 0
        remaining = rank + 1
        bit = 1 << (self._capacity.bit_length() - 1)
        while bit:
            candidate = position + bit
            if candidate <= self._capacity and tree[candidate] < remaining:
                position = candidate
                remaining -= tree[candidate]
            bit >>= 1
        message = self._slots[position]
        assert message is not None
        self._slots[position] = None
        position += 1
        while position <= self._capacity:
            tree[position] -= 1
            position += position & -position
        if len(self._slots) > 2 * self._count:
            self._compact()
        return message

    def snapshot(self) -> List[Message]:
        if self._tree is None:
            return list(self._list)
        return [m for m in self._slots if m is not None]


class LegacyRandomScheduler(RandomScheduler):
    """Uniform random delivery backed by the frozen flat-Fenwick queue."""

    def make_queue(self) -> DeliveryQueue:
        return LegacySendOrderRandomQueue()


# ----------------------------------------------------------------------
# Frozen scalar reconstruction path (basis-backed weights, own cache).
# ----------------------------------------------------------------------
@lru_cache(maxsize=4096)
def _legacy_lagrange_basis(prime: int, xs: Tuple[int, ...]) -> Tuple[Tuple[int, ...], ...]:
    k = len(xs)
    master = [1]
    for x in xs:
        nxt = [0] * (len(master) + 1)
        for index, coeff in enumerate(master):
            nxt[index] = (nxt[index] - x * coeff) % prime
            nxt[index + 1] = (nxt[index + 1] + coeff) % prime
        master = nxt
    numerators: List[List[int]] = []
    denominators: List[int] = []
    for x in xs:
        quotient = [0] * k
        quotient[k - 1] = master[k]
        for index in range(k - 1, 0, -1):
            quotient[index - 1] = (master[index] + x * quotient[index]) % prime
        numerators.append(quotient)
        denominators.append(kernels.horner(prime, quotient, x))
    inverses = kernels.batch_inverse(prime, denominators)
    return tuple(
        kernels.poly_scale(prime, numerator, inverse)
        for numerator, inverse in zip(numerators, inverses)
    )


@lru_cache(maxsize=4096)
def _legacy_weights_at_zero(prime: int, xs: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(basis[0] for basis in _legacy_lagrange_basis(prime, xs))


def _legacy_interpolate_at_zero(prime: int, xs: Tuple[int, ...], ys: List[int]) -> int:
    weights = _legacy_weights_at_zero(prime, xs)
    total = 0
    for weight, y in zip(weights, ys):
        total += weight * y
    return total % prime


def _legacy_validate_row_ints(prime: int, t: int, coefficients: Any) -> Optional[Tuple[int, ...]]:
    if not isinstance(coefficients, (tuple, list)) or not all(
        isinstance(c, int) for c in coefficients
    ):
        return None
    trimmed = kernels.poly_trim(tuple(c % prime for c in coefficients)) or (0,)
    if len(trimmed) - 1 > t:
        return None
    return trimmed


# ----------------------------------------------------------------------
# Frozen SVSS protocol pair (per-delivery scalar validation/evaluation).
# ----------------------------------------------------------------------
class _LegacySendPath:
    """The pre-batching broadcast loop: one ``Network.submit`` per receiver."""

    def broadcast(self, *payload: Any) -> None:  # type: ignore[override]
        process = self.process
        session = self.session
        n = process.params.n
        if process.outgoing_mutator is None:
            submit = process.network.submit
            pid = process.pid
            for receiver in range(n):
                submit(pid, receiver, session, payload)
        else:
            send = process.send
            for receiver in range(n):
                send(receiver, session, payload)


@dataclass
class LegacyShareState:
    dealer: int
    row_ints: Tuple[int, ...] = ()
    recovered: bool = False
    _field: Optional[Field] = field(default=None, repr=False)


class LegacySVSSShare(_LegacySendPath, Protocol):
    """Pre-batching SVSS-Share: scalar per-delivery validation and evals."""

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        self.row_ints: Optional[Tuple[int, ...]] = None
        self._row_evals: List[int] = []
        self.row_recovered = False
        self.secret_polynomial: Optional[SymmetricBivariatePolynomial] = None
        self.points: Dict[int, int] = {}
        self.consistent: Set[int] = set()
        self.ready_senders: Set[int] = set()
        self._points_sent = False
        self._ready_sent = False

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "LegacySVSSShare"]:
        def build(process: Process, session: SessionId) -> "LegacySVSSShare":
            return cls(process, session, dealer)

        return build

    def on_start(self, value: Optional[Any] = None, **_: Any) -> None:
        if self.pid != self.dealer:
            return
        if value is None:
            raise ValueError("the SVSS dealer must provide a value")
        self.secret_polynomial = SymmetricBivariatePolynomial.random(
            self.field, self.t, self.rng, secret=int(self.field(value))
        )
        for receiver in range(self.n):
            row = self.secret_polynomial.row(party_point(receiver))
            self.send(receiver, "ROW", tuple(row.to_ints()))

    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload:
            return
        kind = payload[0]
        if kind == "ROW" and len(payload) == 2:
            self._on_row(sender, payload[1])
        elif kind == "POINT" and len(payload) == 2:
            self._on_point(sender, payload[1])
        elif kind == "READY" and len(payload) == 1:
            self._on_ready(sender)

    def _on_row(self, sender: int, coefficients: Any) -> None:
        if sender != self.dealer:
            return
        row = _legacy_validate_row_ints(self.params.prime, self.t, coefficients)
        if row is None:
            self.shun(sender)
            return
        if self.row_ints is not None:
            if row != self.row_ints and not self.row_recovered:
                self.shun(sender)
            return
        self.row_ints = row
        self._after_row_known()

    def _after_row_known(self) -> None:
        assert self.row_ints is not None
        self._row_evals = kernels.eval_at_many(
            self.params.prime, self.row_ints, range(1, self.n + 1)
        )
        if not self._points_sent:
            self._points_sent = True
            for receiver in range(self.n):
                if receiver == self.pid:
                    continue
                self.send(receiver, "POINT", self._row_evals[receiver])
        self.consistent.add(self.pid)
        for sender, value in list(self.points.items()):
            self._check_point(sender, value)
        self._maybe_ready()
        self._maybe_complete()

    def _on_point(self, sender: int, value: Any) -> None:
        if not isinstance(value, int):
            self.shun(sender)
            return
        if sender in self.points:
            if self.points[sender] != value:
                self.shun(sender)
            return
        self.points[sender] = value
        if self.row_ints is not None:
            self._check_point(sender, value)
            self._maybe_ready()
        else:
            self._maybe_recover_row()

    def _check_point(self, sender: int, value: int) -> None:
        if self._row_evals[sender] == value:
            self.consistent.add(sender)

    def _on_ready(self, sender: int) -> None:
        self.ready_senders.add(sender)
        if self.row_ints is None:
            self._maybe_recover_row()
        self._maybe_complete()

    def _maybe_ready(self) -> None:
        if self._ready_sent or self.row_ints is None:
            return
        if len(self.consistent) >= self.n - self.t:
            self._ready_sent = True
            self.broadcast("READY")

    def _maybe_complete(self) -> None:
        if self.finished or self.row_ints is None:
            return
        if len(self.ready_senders) >= self.n - self.t:
            self.complete(
                LegacyShareState(
                    dealer=self.dealer,
                    row_ints=self.row_ints,
                    recovered=self.row_recovered,
                    _field=self.field,
                )
            )

    def _maybe_recover_row(self) -> None:
        if self.row_ints is not None:
            return
        threshold = (
            self.t + 1
            if self.process.is_shunning(self.dealer)
            else self.n - self.t
        )
        if len(self.ready_senders) < threshold:
            return
        usable = {
            sender: value
            for sender, value in self.points.items()
            if sender in self.ready_senders
        }
        if len(usable) < self.t + 1:
            return
        candidate = self._recover_from_points(usable)
        if candidate is None:
            return
        self.row_ints = candidate
        self.row_recovered = True
        self._after_row_known()

    def _recover_from_points(self, usable: Dict[int, int]) -> Optional[Tuple[int, ...]]:
        prime = self.params.prime
        t = self.t
        senders = sorted(usable)
        xs = tuple(party_point(s) for s in senders)
        ys_raw = [usable[s] for s in senders]
        ys = [y % prime for y in ys_raw]
        k = len(senders)

        def raw_agreement(cand: Tuple[int, ...]) -> int:
            return sum(
                1
                for x, y in zip(xs, ys_raw)
                if kernels.horner(prime, cand, x) == y
            )

        candidate = kernels.poly_trim(kernels.interpolate(prime, xs[: t + 1], ys[: t + 1]))
        if raw_agreement(candidate) == k:
            return candidate

        max_errors = (k - t - 1) // 2
        if max_errors >= 1:
            try:
                candidate = kernels.berlekamp_welch_raw(prime, xs, ys, t, max_errors)
            except DecodingError:
                candidate = None
            if candidate is not None and 2 * raw_agreement(candidate) > k + t:
                return candidate

        best_agreement = 0
        best: Optional[Tuple[int, ...]] = None
        for subset in itertools.combinations(range(k), t + 1):
            sub_xs = tuple(xs[i] for i in subset)
            cand = kernels.poly_trim(
                kernels.interpolate(prime, sub_xs, [ys[i] for i in subset])
            )
            if len(cand) - 1 > t:
                continue
            agreement = raw_agreement(cand)
            if agreement > best_agreement:
                best_agreement, best = agreement, cand
                if 2 * agreement > k + t:
                    break
        if best is None or best_agreement < t + 1:
            return None
        return best


class LegacySVSSRec(_LegacySendPath, Protocol):
    """Pre-batching SVSS-Rec: Horner cross-checks, basis-backed weights."""

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        self.share: Optional[LegacyShareState] = None
        self._own_evals: List[int] = []
        self.received_rows: Dict[int, Tuple[int, ...]] = {}
        self.validated: Dict[int, Tuple[int, ...]] = {}

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "LegacySVSSRec"]:
        def build(process: Process, session: SessionId) -> "LegacySVSSRec":
            return cls(process, session, dealer)

        return build

    def on_start(self, share: Optional[LegacyShareState] = None, **_: Any) -> None:
        if share is None:
            raise ValueError("SVSS-Rec requires the ShareState from SVSS-Share")
        self.share = share
        row_ints = tuple(share.row_ints)
        self._own_evals = kernels.eval_at_many(
            self.params.prime, row_ints, range(1, self.n + 1)
        )
        self.validated[self.pid] = row_ints
        self.broadcast("RECROW", row_ints)
        self._maybe_reconstruct()

    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload or payload[0] != "RECROW" or len(payload) != 2:
            return
        row = _legacy_validate_row_ints(self.params.prime, self.t, payload[1])
        if row is None:
            self.shun(sender)
            return
        if sender in self.received_rows:
            if self.received_rows[sender] != row:
                self.shun(sender)
            return
        self.received_rows[sender] = row
        self._validate(sender, row)
        self._maybe_reconstruct()

    def _validate(self, sender: int, row: Tuple[int, ...]) -> None:
        if self.share is None or sender == self.pid:
            return
        expected = self._own_evals[sender]
        if kernels.horner(self.params.prime, row, party_point(self.pid)) == expected:
            self.validated[sender] = row
        else:
            self.shun(sender)

    def _maybe_reconstruct(self) -> None:
        if self.finished or self.share is None:
            return
        if len(self.validated) < self.t + 1:
            return
        chosen = sorted(self.validated)[: self.t + 1]
        xs = tuple(party_point(pid) for pid in chosen)
        ys = [self.validated[pid][0] for pid in chosen]
        self.complete(_legacy_interpolate_at_zero(self.params.prime, xs, ys))


# ----------------------------------------------------------------------
# Frozen coin protocols wired to the frozen SVSS classes.
# ----------------------------------------------------------------------
class LegacyWeakCommonCoin(Protocol):
    """Pre-batching weak coin: n parallel SVSS sharings, first n-t attached."""

    def __init__(self, process: Process, session: SessionId) -> None:
        super().__init__(process, session)
        self.attached: Optional[List[int]] = None
        self.share_states: Dict[int, LegacyShareState] = {}
        self.reconstructed: Dict[int, int] = {}
        self._rec_spawned: Set[int] = set()

    @classmethod
    def factory(cls) -> Callable[[Process, SessionId], "LegacyWeakCommonCoin"]:
        def build(process: Process, session: SessionId) -> "LegacyWeakCommonCoin":
            return cls(process, session)

        return build

    def on_start(self, **_: Any) -> None:
        my_bit = self.rng.randrange(2)
        for dealer in range(self.n):
            kwargs = {"value": my_bit} if dealer == self.pid else {}
            self.spawn(("share", dealer), LegacySVSSShare.factory(dealer), **kwargs)

    def on_child_complete(self, child: Protocol) -> None:
        if isinstance(child, LegacySVSSShare):
            self._on_share_complete(child)
        elif isinstance(child, LegacySVSSRec):
            self._on_rec_complete(child)

    def _on_share_complete(self, child: LegacySVSSShare) -> None:
        dealer = child.dealer
        self.share_states[dealer] = child.output
        if self.attached is None and len(self.share_states) >= self.n - self.t:
            self.attached = sorted(self.share_states)[: self.n - self.t]
        self._spawn_rec(dealer)
        self._maybe_finish()

    def _spawn_rec(self, dealer: int) -> None:
        if dealer in self._rec_spawned:
            return
        self._rec_spawned.add(dealer)
        self.spawn(
            ("rec", dealer),
            LegacySVSSRec.factory(dealer),
            share=self.share_states[dealer],
        )

    def _on_rec_complete(self, child: LegacySVSSRec) -> None:
        self.reconstructed[child.dealer] = int(child.output)
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.finished or self.attached is None:
            return
        if not all(dealer in self.reconstructed for dealer in self.attached):
            return
        coin = 0
        for dealer in self.attached:
            coin ^= self.reconstructed[dealer] & 1
        self.complete(coin)


class _LegacyIteration:
    def __init__(self, index: int) -> None:
        self.index = index
        self.share_states: Dict[int, LegacyShareState] = {}
        self.subset: Optional[Any] = None
        self.rec_spawned: set = set()
        self.rec_values: Dict[int, int] = {}
        self.coin: Optional[int] = None


class LegacyCoinFlip(Protocol):
    """Pre-batching strong coin (Algorithm 1) over the frozen SVSS pair."""

    def __init__(
        self,
        process: Process,
        session: SessionId,
        rounds: int,
        coin_source: Optional[CoinSource] = None,
    ) -> None:
        super().__init__(process, session)
        self.coin_source = coin_source or OracleCoinSource()
        self.rounds = rounds
        self.iterations: Dict[int, _LegacyIteration] = {}
        self.current_iteration = 0
        self._ba_started = False

    @classmethod
    def factory(
        cls, rounds: int, coin_source: Optional[CoinSource] = None
    ) -> Callable[[Process, SessionId], "LegacyCoinFlip"]:
        def build(process: Process, session: SessionId) -> "LegacyCoinFlip":
            return cls(process, session, rounds, coin_source=coin_source)

        return build

    def on_start(self, **_: Any) -> None:
        self._begin_iteration(0)

    def on_message(self, sender: int, payload: tuple) -> None:
        return

    def _begin_iteration(self, index: int) -> None:
        self.current_iteration = index
        iteration = self.iterations.setdefault(index, _LegacyIteration(index))
        my_bit = self.rng.randrange(2)
        for dealer in range(self.n):
            kwargs = {"value": my_bit} if dealer == self.pid else {}
            self.spawn(("share", index, dealer), LegacySVSSShare.factory(dealer), **kwargs)
        self.spawn(
            ("cs", index),
            CommonSubset.factory(self.coin_source),
            k=self.params.quorum,
        )
        self._sync_predicate(iteration)

    def _sync_predicate(self, iteration: _LegacyIteration) -> None:
        subset_child = self.child(("cs", iteration.index))
        if subset_child is None:
            return
        for dealer in iteration.share_states:
            subset_child.set_predicate(dealer)

    def on_child_complete(self, child: Protocol) -> None:
        key = self._key_of(child)
        if key is None:
            return
        if key[0] == "share":
            self._on_share_complete(key[1], key[2], child)
        elif key[0] == "cs":
            self._on_subset_complete(key[1], child)
        elif key[0] == "rec":
            self._on_rec_complete(key[1], key[2], child)
        elif key[0] == "final_ba":
            self.complete(int(child.output))

    def _key_of(self, child: Protocol) -> Optional[tuple]:
        for key, instance in self.children.items():
            if instance is child:
                return key if isinstance(key, tuple) else (key,)
        return None

    def _on_share_complete(self, index: int, dealer: int, child: Protocol) -> None:
        iteration = self.iterations.setdefault(index, _LegacyIteration(index))
        iteration.share_states[dealer] = child.output
        subset_child = self.child(("cs", index))
        if subset_child is not None:
            subset_child.set_predicate(dealer)
        self._maybe_reconstruct(iteration)

    def _on_subset_complete(self, index: int, child: Protocol) -> None:
        iteration = self.iterations.setdefault(index, _LegacyIteration(index))
        iteration.subset = frozenset(child.output)
        self._maybe_reconstruct(iteration)

    def _maybe_reconstruct(self, iteration: _LegacyIteration) -> None:
        if iteration.subset is None:
            return
        for dealer in sorted(iteration.subset):
            if dealer in iteration.rec_spawned:
                continue
            share_state = iteration.share_states.get(dealer)
            if share_state is None:
                continue
            iteration.rec_spawned.add(dealer)
            self.spawn(
                ("rec", iteration.index, dealer),
                LegacySVSSRec.factory(dealer),
                share=share_state,
            )
        self._maybe_finish_iteration(iteration)

    def _on_rec_complete(self, index: int, dealer: int, child: Protocol) -> None:
        iteration = self.iterations.setdefault(index, _LegacyIteration(index))
        iteration.rec_values[dealer] = int(child.output)
        self._maybe_finish_iteration(iteration)

    def _maybe_finish_iteration(self, iteration: _LegacyIteration) -> None:
        if iteration.coin is not None or iteration.subset is None:
            return
        if any(dealer not in iteration.rec_values for dealer in iteration.subset):
            return
        coin = 0
        for dealer in iteration.subset:
            coin ^= iteration.rec_values[dealer] & 1
        iteration.coin = coin
        if iteration.index != self.current_iteration:
            return
        if iteration.index + 1 < self.rounds:
            self._begin_iteration(iteration.index + 1)
        else:
            self._start_final_agreement()

    def _start_final_agreement(self) -> None:
        if self._ba_started:
            return
        self._ba_started = True
        ones = sum(
            1 for iteration in self.iterations.values() if iteration.coin == 1
        )
        majority = 1 if 2 * ones > self.rounds else 0
        self.spawn(
            ("final_ba",),
            BinaryAgreement.factory(self.coin_source),
            value=majority,
        )


# ----------------------------------------------------------------------
# Frozen pre-batching delivery loop (the PR-4 ``run_until_complete``).
# ----------------------------------------------------------------------
def _legacy_run_until_complete(network, session, max_steps: int) -> int:
    """The pre-batching tracing-off delivery loop, frozen verbatim.

    Per delivery: an explicit queue-emptiness call, an attribute update of
    ``step_count`` and a materialised-message pop -- the loop shape the
    batched plane replaced with the unmaterialised fast path.
    """
    from repro.errors import SimulationError

    session = tuple(session)
    queue = network._queue
    queue_len = queue.__len__
    pop = queue.pop
    rng = network.scheduler_rng
    deliver_by_pid = [process.deliver for process in network.processes]
    delivered = 0
    network._watch_session = session
    network._watch_done = network._completions.get(session, 0) >= network._honest_n
    try:
        while not network._watch_done:
            if delivered >= max_steps:
                raise SimulationError(
                    f"run() exceeded {max_steps} deliveries without reaching "
                    f"its stop condition"
                )
            if not queue_len():
                raise SimulationError(
                    "network is quiescent but the stop condition is not met "
                    "(protocol deadlock)"
                )
            message = pop(rng, network.step_count)
            network.step_count += 1
            deliver_by_pid[message.receiver](message)
            delivered += 1
        return delivered
    finally:
        network._watch_session = None
        network._watch_done = False


# ----------------------------------------------------------------------
# One-call legacy runners (mirror repro.core.api signatures).
# ----------------------------------------------------------------------
def _legacy_simulation(
    n: int, seed: int, prime: Optional[int], max_steps: Optional[int] = None
) -> Simulation:
    if prime is None:
        params = ProtocolParams.for_parties(n)
    else:
        params = ProtocolParams.for_parties(n, prime=prime)
    sim = Simulation(
        params=params,
        scheduler=LegacyRandomScheduler(),
        seed=seed,
        tracing=False,
    )
    if max_steps is not None:
        sim.max_steps = max_steps
    return sim


def _legacy_run(sim: Simulation, session, factory) -> SimulationResult:
    """``Simulation.run`` driven through the frozen pre-batching loop."""
    import gc

    session = tuple(session)
    network = sim.build_network()
    for process in network.processes:
        if process.is_corrupted:
            continue
        instance = process.create_protocol(session, factory)
        if not instance.started:
            instance.start()
    pause = sim.pause_gc and gc.isenabled()
    if pause:
        gc.disable()
    try:
        _legacy_run_until_complete(network, session, max_steps=sim.max_steps)
    finally:
        if pause:
            gc.enable()
    return SimulationResult(
        session=session,
        outputs=network.honest_outputs(session),
        steps=network.step_count,
        network=network,
    )


def legacy_run_weak_coin(
    n: int, seed: int, prime: Optional[int] = None
) -> SimulationResult:
    """One weak-coin trial on the frozen pre-batching stack."""
    sim = _legacy_simulation(n, seed, prime)
    return _legacy_run(sim, ("weak_coin",), LegacyWeakCommonCoin.factory())


def legacy_run_coinflip(
    n: int,
    seed: int,
    rounds: int,
    prime: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> SimulationResult:
    """One strong-coin trial on the frozen pre-batching stack."""
    sim = _legacy_simulation(n, seed, prime, max_steps=max_steps)
    return _legacy_run(
        sim,
        ("coinflip",),
        LegacyCoinFlip.factory(rounds, coin_source=OracleCoinSource(seed)),
    )
