"""End-to-end trial workloads: full protocol executions, seed loop vs fast path.

Each workload runs a complete simulated trial (``repro.core.api`` runner)
twice per measurement point: once on the production event loop
(completion-counter stop condition, slotted messages, interned sessions,
fused run loop) and once through the frozen seed loop kept in
:mod:`benchmarks.perf.legacy_sim` (per-step O(n) completion scan, full-scan
delivery queue, frozen-dataclass messages).  Both sides run the *same*
protocol code over the *same* seed stream, and an untimed pre-check asserts
their honest outputs and delivered-message counts are identical per seed --
the speedup is pure event-loop overhead, not a behaviour change.

The headline ``coinflip_trial`` measures the Monte-Carlo campaign
configuration (``tracing=False``: outputs only, all trace hooks disabled)
against the seed loop, which always traced; ``coinflip_trial_traced`` and the
aba/fba/svss trials compare with tracing enabled on both sides.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List

from benchmarks.perf import legacy_sim
from benchmarks.perf.harness import BenchResult, compare
from repro.core import api
from repro.net.runtime import SimulationResult
from repro.protocols.aba import BinaryAgreement, OracleCoinSource
from repro.protocols.coinflip import CoinFlip
from repro.protocols.fba import FairByzantineAgreement

COINFLIP_ROUNDS = 2
SVSS_SECRET = 424_242


# ----------------------------------------------------------------------
# Legacy-loop runners: same factories and inputs as repro.core.api, driven
# through the frozen seed network.
# ----------------------------------------------------------------------
def legacy_run_coinflip(n: int, seed: int, rounds: int, tracing: bool = True) -> SimulationResult:
    with legacy_sim.seed_stack():
        sim = legacy_sim.legacy_simulation(n, seed, tracing=tracing)
        return sim.run(
            ("coinflip",),
            CoinFlip.factory(rounds_override=rounds, coin_source=OracleCoinSource(seed)),
        )


def legacy_run_aba(n: int, seed: int, inputs: Dict[int, int]) -> SimulationResult:
    # ABA touches no crypto; seed_stack still applies the seed dispatch layer.
    with legacy_sim.seed_stack():
        sim = legacy_sim.legacy_simulation(n, seed)
        return sim.run(
            ("aba",),
            BinaryAgreement.factory(OracleCoinSource(seed)),
            inputs={pid: {"value": value} for pid, value in inputs.items()},
        )


def legacy_run_fba(n: int, seed: int, inputs: Dict[int, int]) -> SimulationResult:
    with legacy_sim.seed_stack():
        sim = legacy_sim.legacy_simulation(n, seed)
        return sim.run(
            ("fba",),
            FairByzantineAgreement.factory(
                coin_source=OracleCoinSource(seed), coinflip_rounds_override=1
            ),
            inputs={pid: {"value": value} for pid, value in inputs.items()},
        )


def legacy_run_svss(n: int, seed: int, secret: int) -> SimulationResult:
    with legacy_sim.seed_stack():
        sim = legacy_sim.legacy_simulation(n, seed)
        return sim.run(
            ("svss_harness",),
            api.svss_harness_factory(0),
            inputs={0: {"value": secret}},
        )


def _check_equivalence(
    name: str,
    fast: Callable[[int], SimulationResult],
    legacy: Callable[[int], SimulationResult],
    seed: int,
) -> None:
    """Assert the fast and legacy loops produce identical trials for ``seed``."""
    fast_result = fast(seed)
    legacy_result = legacy(seed)
    if (
        fast_result.outputs != legacy_result.outputs
        or fast_result.steps != legacy_result.steps
    ):
        raise AssertionError(
            f"{name}: fast path diverged from the legacy loop at seed {seed}: "
            f"outputs {fast_result.outputs!r} vs {legacy_result.outputs!r}, "
            f"steps {fast_result.steps} vs {legacy_result.steps}"
        )


def run(quick: bool) -> List[BenchResult]:
    sizes = [4, 8] if quick else [4, 8, 16]
    scale = 1 if quick else 2
    repeats = 2
    results: List[BenchResult] = []

    def trial_workload(
        name: str,
        fast: Callable[[int], SimulationResult],
        legacy: Callable[[int], SimulationResult],
        number: int,
        **params,
    ) -> None:
        _check_equivalence(name, fast, legacy, seed=99)
        # Separate but identical seed streams: the harness makes the same
        # number of calls on each side (one warmup + repeats * number).
        fast_seeds = itertools.count(1000)
        legacy_seeds = itertools.count(1000)
        results.append(
            compare(
                name,
                lambda: fast(next(fast_seeds)),
                lambda: legacy(next(legacy_seeds)),
                number=number,
                repeats=repeats,
                **params,
            )
        )

    # -- Headline: the Monte-Carlo campaign trial (tracing off) --------
    trial_workload(
        "coinflip_trial",
        lambda seed: api.run_coinflip(
            n=4, seed=seed, rounds=COINFLIP_ROUNDS, tracing=False
        ),
        lambda seed: legacy_run_coinflip(4, seed, COINFLIP_ROUNDS),
        number=3 * scale,
        n=4,
        rounds=COINFLIP_ROUNDS,
        tracing="off (campaign config) vs seed loop (always traced)",
    )
    trial_workload(
        "coinflip_trial_traced",
        lambda seed: api.run_coinflip(n=4, seed=seed, rounds=COINFLIP_ROUNDS),
        lambda seed: legacy_run_coinflip(4, seed, COINFLIP_ROUNDS),
        number=3 * scale,
        n=4,
        rounds=COINFLIP_ROUNDS,
        tracing="on (both sides)",
    )

    # -- Full trials per protocol family across system sizes -----------
    for n in sizes:
        bits = {pid: pid % 2 for pid in range(n)}
        trial_workload(
            f"aba_trial_n{n}",
            lambda seed, n=n, bits=bits: api.run_aba(n, bits, seed=seed),
            lambda seed, n=n, bits=bits: legacy_run_aba(n, seed, bits),
            number=3 * scale,
            n=n,
        )
    for n in sizes:
        bits = {pid: pid % 2 for pid in range(n)}
        # FBA runs a full CoinFlip per agreement attempt: the most expensive
        # trial in the suite, so it gets the smallest call count.
        trial_workload(
            f"fba_trial_n{n}",
            lambda seed, n=n, bits=bits: api.run_fba(
                n, bits, seed=seed, coinflip_rounds=1
            ),
            lambda seed, n=n, bits=bits: legacy_run_fba(n, seed, bits),
            number=scale,
            n=n,
            coinflip_rounds=1,
        )
    for n in sizes:
        trial_workload(
            f"svss_trial_n{n}",
            lambda seed, n=n: api.run_svss(n, SVSS_SECRET, seed=seed),
            lambda seed, n=n: legacy_run_svss(n, seed, SVSS_SECRET),
            number=2 * scale,
            n=n,
            secret=SVSS_SECRET,
        )
    return results
