"""Timing and reporting utilities for the perf microbenchmarks.

Methodology: every workload is a zero-argument callable timed with
``time.perf_counter`` over ``number`` calls per sample; ``repeats`` samples
are taken and the *minimum* per-call time is reported (the standard
microbenchmark estimator -- the minimum is the sample least polluted by
scheduler noise).  One untimed warmup call precedes sampling so one-time
costs (memoised Lagrange bases, interned fields, queue growth) land in the
steady state that campaigns actually run in.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional


@dataclass
class BenchResult:
    """One workload's measurement."""

    name: str
    after_s: float
    before_s: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        if self.before_s is None or self.after_s <= 0:
            return None
        return self.before_s / self.after_s

    def to_dict(self) -> Dict[str, Any]:
        speedup = self.speedup
        return {
            "name": self.name,
            "params": self.params,
            "before_s": self.before_s,
            "after_s": self.after_s,
            "speedup": None if speedup is None else round(speedup, 2),
        }


def time_per_call(
    fn: Callable[[], Any], number: int, repeats: int = 3
) -> float:
    """Best-of-``repeats`` mean seconds per call of ``fn`` over ``number`` calls."""
    fn()  # warmup: caches, lazy allocations
    best = float("inf")
    for _ in range(repeats):
        # Start each sample from a clean heap so one workload's deferred
        # garbage (e.g. a paused-gc trial's cycles) never lands in another
        # workload's timed window.
        gc.collect()
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = (time.perf_counter() - start) / number
        if elapsed < best:
            best = elapsed
    return best


def compare(
    name: str,
    after: Callable[[], Any],
    before: Optional[Callable[[], Any]] = None,
    *,
    number: int,
    repeats: int = 3,
    **params: Any,
) -> BenchResult:
    """Time the fast path (and optionally the legacy path) of one workload."""
    after_s = time_per_call(after, number, repeats)
    before_s = (
        None if before is None else time_per_call(before, number, repeats)
    )
    result = BenchResult(name=name, after_s=after_s, before_s=before_s, params=params)
    speedup = result.speedup
    tail = "" if speedup is None else f"  before={before_s * 1e6:9.1f}us  {speedup:6.2f}x"
    print(f"  {name:<28} after={after_s * 1e6:9.1f}us{tail}")
    return result


def run_and_write(
    title: str,
    out_path: Path,
    results: List[BenchResult],
    quick: bool,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Serialise one benchmark family to its ``BENCH_*.json`` baseline file."""
    payload = {
        "meta": {
            "title": title,
            "mode": "quick" if quick else "full",
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "methodology": (
                "best-of-repeats mean perf_counter time per call after one "
                "untimed warmup; before = legacy (seed) implementation, "
                "after = current fast path; null before_s marks trend-only "
                "workloads with no legacy equivalent"
            ),
            **(extra_meta or {}),
        },
        "results": [result.to_dict() for result in results],
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
