"""Compare a fresh perf run against the checked-in baselines.

``python -m benchmarks.perf.check_regression --fresh-dir perf-results``

CI hardware differs from the machine that produced the checked-in
``BENCH_*.json`` files (and quick mode uses smaller sizes), so absolute
``after_s`` times are not comparable across runs.  The *speedup* of each
workload -- legacy implementation over fast path on the same interpreter, in
the same process -- is the portable signal.  A workload regresses when its
fresh speedup falls below ``baseline_speedup / tolerance``: the fast path
lost more than ``tolerance``x of its measured advantage.  Workloads without
a legacy side (``speedup: null``) and workloads missing from either file are
reported but never fail the check.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: The benchmark families with checked-in baselines at the repository root.
FAMILIES = (
    "BENCH_crypto.json",
    "BENCH_net.json",
    "BENCH_sim.json",
    "BENCH_scenarios.json",
    "BENCH_coin_scale.json",
    "BENCH_beacon.json",
)

#: A fresh speedup below baseline/2 fails the build.
DEFAULT_TOLERANCE = 2.0


def _speedups(path: Path) -> Dict[str, Tuple[float, Dict]]:
    payload = json.loads(path.read_text())
    return {
        result["name"]: (result["speedup"], result.get("params", {}))
        for result in payload["results"]
        if result.get("speedup") is not None
    }


def check_family(
    baseline_path: Path, fresh_path: Path, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Return (report_lines, failures) for one benchmark family."""
    lines: List[str] = []
    failures: List[str] = []
    baseline = _speedups(baseline_path)
    fresh = _speedups(fresh_path)
    for name, (base_speedup, base_params) in sorted(baseline.items()):
        fresh_speedup, fresh_params = fresh.get(name, (None, None))
        if fresh_speedup is None:
            lines.append(f"  {name:<28} baseline {base_speedup:6.2f}x  fresh --      (skipped)")
            continue
        if fresh_params != base_params:
            # Quick mode measures some workloads at smaller sizes (queue
            # depth, step counts); a speedup at a different operating point
            # is a different quantity, not a regression signal.
            lines.append(
                f"  {name:<28} baseline {base_speedup:6.2f}x  fresh {fresh_speedup:6.2f}x  "
                f"(params differ, skipped)"
            )
            continue
        floor = base_speedup / tolerance
        status = "ok" if fresh_speedup >= floor else "REGRESSION"
        lines.append(
            f"  {name:<28} baseline {base_speedup:6.2f}x  fresh {fresh_speedup:6.2f}x  "
            f"floor {floor:5.2f}x  {status}"
        )
        if fresh_speedup < floor:
            failures.append(
                f"{baseline_path.name}:{name}: speedup {fresh_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x / tolerance {tolerance:g})"
            )
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf.check_regression",
        description="Fail when a fresh perf run loses more than the tolerated "
        "factor of any checked-in workload speedup.",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("."),
        help="directory holding the checked-in BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        required=True,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed speedup shrink factor (default {DEFAULT_TOLERANCE:g}x)",
    )
    args = parser.parse_args(argv)

    all_failures: List[str] = []
    for family in FAMILIES:
        baseline_path = args.baseline_dir / family
        fresh_path = args.fresh_dir / family
        if not baseline_path.exists() or not fresh_path.exists():
            print(f"{family}: missing ({'baseline' if not baseline_path.exists() else 'fresh'}), skipped")
            continue
        print(f"{family}:")
        lines, failures = check_family(baseline_path, fresh_path, args.tolerance)
        print("\n".join(lines))
        all_failures.extend(failures)

    if all_failures:
        print("\nperf regressions detected:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno perf regressions (within tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
