"""Crypto-kernel workloads: share, reconstruct, robust decode, coinflip trial.

All sized at the paper's optimal-resilience point for ``n = 16`` parties
(``t = 5``, ``n = 3t + 1``), over the default 31-bit Mersenne prime field.
"""

from __future__ import annotations

import random
from typing import List

from benchmarks.perf import legacy
from benchmarks.perf.harness import BenchResult, compare
from repro.core import api
from repro.core.config import DEFAULT_PRIME
from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.crypto.field import Field
from repro.crypto.shamir import ShamirShare, reconstruct, reconstruct_robust, share_secret

N = 16
T = 5  # n = 3t + 1


def run(quick: bool) -> List[BenchResult]:
    field = Field(DEFAULT_PRIME)
    scale = 1 if quick else 10
    results: List[BenchResult] = []

    # -- Shamir share generation ---------------------------------------
    rng_after = random.Random(0)
    rng_before = random.Random(0)
    results.append(
        compare(
            "shamir_share",
            lambda: share_secret(field, 1234, N, T, rng_after),
            lambda: legacy.legacy_share_values(field, T, 1234, rng_before, N),
            number=200 * scale,
            n=N,
            t=T,
        )
    )

    # -- Plain reconstruction (t+1 shares, the CoinFlip hot path) ------
    _, shares = share_secret(field, 777, N, T, random.Random(1))
    subset = [shares[i] for i in range(1, T + 2)]
    points = [(s.index, s.value) for s in subset]
    results.append(
        compare(
            "shamir_reconstruct",
            lambda: reconstruct(field, subset, T),
            lambda: legacy.legacy_reconstruct(field, points),
            number=500 * scale,
            n=N,
            t=T,
            shares=T + 1,
        )
    )

    # -- Robust reconstruction via Berlekamp-Welch (t errors) ----------
    corrupted = list(shares.values())
    for index in range(T):  # corrupt t of the n shares
        share = corrupted[index]
        corrupted[index] = ShamirShare(share.index, share.value + 1)
    bw_points = [(field(s.index), s.value) for s in corrupted]
    results.append(
        compare(
            "robust_decode",
            lambda: reconstruct_robust(field, corrupted, T, T),
            lambda: legacy.legacy_berlekamp_welch(field, bw_points, T, T),
            number=5 * scale,
            n=N,
            t=T,
            errors=T,
        )
    )

    # -- Bivariate dealing (SVSS dealer: n row polynomials) ------------
    bivariate = SymmetricBivariatePolynomial.random(field, T, random.Random(2), secret=5)
    results.append(
        compare(
            "bivariate_rows",
            lambda: bivariate.rows(N),
            lambda: [
                legacy.legacy_bivariate_row(field, bivariate.coefficients, i)
                for i in range(1, N + 1)
            ],
            number=20 * scale,
            n=N,
            t=T,
        )
    )

    # -- End-to-end coinflip trial (trend line; no legacy equivalent) --
    seeds = iter(range(100000))
    results.append(
        compare(
            "coinflip_trial",
            lambda: api.run_coinflip(n=4, seed=next(seeds), rounds=2),
            None,
            number=3 * scale,
            repeats=2,
            n=4,
            rounds=2,
        )
    )
    return results
