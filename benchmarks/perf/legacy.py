"""Frozen copies of the seed's object-layer crypto algorithms.

These are the pre-kernel implementations (per-operation ``FieldElement``
allocation, O(k^3) Lagrange interpolation, FieldElement Gaussian
elimination), kept verbatim so ``python -m benchmarks.perf`` can measure the
"before" side of every crypto workload on the same interpreter and inputs.
They are *benchmark oracles only* -- production code paths live in
``repro.crypto`` and delegate to ``repro.crypto.kernels``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.field import Field, FieldElement
from repro.errors import DecodingError, InterpolationError


class LegacyPolynomial:
    """The seed's Polynomial: every coefficient and intermediate is a FieldElement."""

    def __init__(self, field: Field, coefficients) -> None:
        self.field = field
        coeffs = [field(c) for c in coefficients]
        while len(coeffs) > 1 and coeffs[-1].value == 0:
            coeffs.pop()
        if not coeffs:
            coeffs = [field.zero()]
        self.coefficients: List[FieldElement] = coeffs

    @classmethod
    def zero(cls, field: Field) -> "LegacyPolynomial":
        return cls(field, [0])

    @classmethod
    def random(
        cls, field: Field, degree: int, rng: random.Random, constant_term=None
    ) -> "LegacyPolynomial":
        coeffs = [field.random(rng) for _ in range(degree + 1)]
        if constant_term is not None:
            coeffs[0] = field(constant_term)
        return cls(field, coeffs)

    @classmethod
    def interpolate(cls, field: Field, points) -> "LegacyPolynomial":
        if not points:
            raise InterpolationError("cannot interpolate through zero points")
        xs = [field(x) for x, _ in points]
        ys = [field(y) for _, y in points]
        if len({x.value for x in xs}) != len(xs):
            raise InterpolationError("interpolation points must have distinct x values")
        result = cls.zero(field)
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            numerator = cls(field, [1])
            denominator = field.one()
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                numerator = numerator * cls(field, [-xj.value, 1])
                denominator = denominator * (xi - xj)
            result = result + numerator * (yi / denominator)
        return result

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    @property
    def constant_term(self) -> FieldElement:
        return self.coefficients[0]

    def __call__(self, x) -> FieldElement:
        x = self.field(x)
        acc = self.field.zero()
        for coefficient in reversed(self.coefficients):
            acc = acc * x + coefficient
        return acc

    def __add__(self, other: "LegacyPolynomial") -> "LegacyPolynomial":
        size = max(len(self.coefficients), len(other.coefficients))
        coeffs = []
        for index in range(size):
            a = self.coefficients[index] if index < len(self.coefficients) else self.field.zero()
            b = other.coefficients[index] if index < len(other.coefficients) else self.field.zero()
            coeffs.append(a + b)
        return type(self)(self.field, coeffs)

    def __mul__(self, other) -> "LegacyPolynomial":
        if isinstance(other, (FieldElement, int)):
            scalar = self.field(other)
            return type(self)(self.field, [c * scalar for c in self.coefficients])
        coeffs = [self.field.zero()] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            for j, b in enumerate(other.coefficients):
                coeffs[i + j] = coeffs[i + j] + a * b
        return type(self)(self.field, coeffs)

    def divmod(self, divisor: "LegacyPolynomial"):
        if all(c.value == 0 for c in divisor.coefficients):
            raise InterpolationError("polynomial division by zero")
        remainder = list(self.coefficients)
        quotient = [self.field.zero()] * max(1, len(remainder) - len(divisor.coefficients) + 1)
        divisor_lead = divisor.coefficients[-1]
        divisor_degree = divisor.degree
        for index in range(len(remainder) - 1, divisor_degree - 1, -1):
            coefficient = remainder[index] / divisor_lead
            position = index - divisor_degree
            quotient[position] = coefficient
            for offset, dcoeff in enumerate(divisor.coefficients):
                remainder[position + offset] = remainder[position + offset] - coefficient * dcoeff
        return type(self)(self.field, quotient), type(self)(self.field, remainder)


def legacy_share_values(field: Field, t: int, secret: int, rng: random.Random, n: int) -> Dict[int, FieldElement]:
    """The seed's share generation: one object-layer Horner per party point."""
    polynomial = LegacyPolynomial.random(field, t, rng, constant_term=secret)
    return {i: polynomial(i) for i in range(1, n + 1)}


def legacy_reconstruct(field: Field, points) -> FieldElement:
    """The seed's plain reconstruction: full O(k^3) Lagrange interpolation."""
    return LegacyPolynomial.interpolate(field, points).constant_term


def _legacy_solve(
    field: Field, matrix: List[List[FieldElement]], rhs: List[FieldElement]
) -> Optional[List[FieldElement]]:
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    augmented = [list(row) + [rhs[r]] for r, row in enumerate(matrix)]
    pivot_cols: List[int] = []
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if augmented[row][col].value != 0:
                pivot = row
                break
        if pivot is None:
            continue
        augmented[pivot_row], augmented[pivot] = augmented[pivot], augmented[pivot_row]
        inverse = augmented[pivot_row][col].inverse()
        augmented[pivot_row] = [entry * inverse for entry in augmented[pivot_row]]
        for row in range(rows):
            if row != pivot_row and augmented[row][col].value != 0:
                factor = augmented[row][col]
                augmented[row] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(augmented[row], augmented[pivot_row])
                ]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    for row in range(pivot_row, rows):
        if all(entry.value == 0 for entry in augmented[row][:-1]) and augmented[row][-1].value != 0:
            return None
    solution = [field.zero()] * cols
    for row_index, col in enumerate(pivot_cols):
        solution[col] = augmented[row_index][-1]
    return solution


def legacy_berlekamp_welch(
    field: Field,
    points: Sequence[Tuple[FieldElement, FieldElement]],
    degree: int,
    max_errors: int,
) -> LegacyPolynomial:
    """The seed's Berlekamp-Welch: FieldElement matrix build + elimination."""
    n = len(points)
    if max_errors < 0:
        raise DecodingError("max_errors must be non-negative")
    if n < degree + 1 + 2 * max_errors:
        raise DecodingError("too few points")
    xs = [field(x) for x, _ in points]
    if len({x.value for x in xs}) != len(xs):
        raise DecodingError("decoding points must have distinct x values")

    if max_errors == 0:
        polynomial = LegacyPolynomial.interpolate(field, list(points[: degree + 1]))
        for x, y in points:
            if polynomial(x) != field(y):
                raise DecodingError("points are not on a single polynomial")
        return polynomial

    num_e = max_errors
    num_q = degree + max_errors + 1
    matrix: List[List[FieldElement]] = []
    rhs: List[FieldElement] = []
    for x_raw, y_raw in points:
        x = field(x_raw)
        y = field(y_raw)
        row: List[FieldElement] = []
        x_power = field.one()
        for _ in range(num_e):
            row.append(y * x_power)
            x_power = x_power * x
        leading = y * x_power
        x_power = field.one()
        for _ in range(num_q):
            row.append(-x_power)
            x_power = x_power * x
        matrix.append(row)
        rhs.append(-leading)

    solution = _legacy_solve(field, matrix, rhs)
    if solution is None:
        raise DecodingError("Berlekamp-Welch system is inconsistent (too many errors)")
    e_coeffs = solution[:num_e] + [field.one()]
    q_coeffs = solution[num_e:]
    error_locator = LegacyPolynomial(field, e_coeffs)
    q_polynomial = LegacyPolynomial(field, q_coeffs)
    quotient, remainder = q_polynomial.divmod(error_locator)
    if any(c.value != 0 for c in remainder.coefficients):
        raise DecodingError("error locator does not divide Q; too many errors")
    if quotient.degree > degree:
        raise DecodingError("decoded polynomial exceeds the expected degree")
    disagreements = sum(1 for x, y in points if quotient(x) != field(y))
    if disagreements > max_errors:
        raise DecodingError("too many disagreements")
    return quotient


def legacy_bivariate_row(
    field: Field, coefficients: List[List[FieldElement]], index: int
) -> LegacyPolynomial:
    """The seed's bivariate row extraction: O(t^2) FieldElement accumulation."""
    degree = len(coefficients) - 1
    x = field(index)
    coeffs = [field.zero()] * (degree + 1)
    x_power = field.one()
    for i in range(degree + 1):
        for j in range(degree + 1):
            coeffs[j] = coeffs[j] + coefficients[i][j] * x_power
        x_power = x_power * x
    return LegacyPolynomial(field, coeffs)
