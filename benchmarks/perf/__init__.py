"""Microbenchmark harness for the crypto kernels and the network delivery loop.

Unlike the experiment benchmarks in ``benchmarks/bench_*.py`` (which reproduce
paper-level statistics), this package times the *substrate*: raw workloads on
the secret-sharing kernels and the network delivery queues.  It exists so
every future PR has a perf trajectory to compare against:

* ``python -m benchmarks.perf`` runs all workloads and writes
  ``BENCH_crypto.json`` and ``BENCH_net.json`` (checked in at the repo root as
  the current baselines);
* ``python -m benchmarks.perf --quick`` is the CI smoke mode -- smaller
  repeat counts, same workload shapes.

Each workload reports ``before_s`` (the legacy implementation: object-layer
crypto from the seed, or the full-scan delivery loop via
:func:`repro.net.scheduler.force_scan`) and ``after_s`` (the current fast
path), plus their ratio.  Workloads without a runnable legacy path (e.g. the
end-to-end coinflip trial, whose protocol stack only exists on the current
code) report ``after_s`` only and serve as trend lines.
"""

from benchmarks.perf.harness import BenchResult, run_and_write  # noqa: F401
