"""Network delivery-loop workloads: steady-state drains at ``n = 16``.

Each workload builds one network per implementation, preloads the in-flight
queue to a fixed depth (untimed), and then times the steady-state loop
"submit one, deliver one" -- so the measured cost is purely the per-step
scheduler work at that queue depth.  The same message stream runs through the
legacy full-scan loop (:func:`repro.net.scheduler.force_scan`) and the
indexed delivery queues.  Receivers host no protocol, so delivered messages
just land in the process inbox buffer.
"""

from __future__ import annotations

import random
from typing import Callable, List

from benchmarks.perf.harness import BenchResult, compare
from repro.core.config import ProtocolParams
from repro.net.network import Network
from repro.net.scheduler import (
    FIFOScheduler,
    RandomScheduler,
    Scheduler,
    TargetedScheduler,
    force_scan,
)

N = 16


def _steady_state_stepper(
    scheduler: Scheduler, steps: int, depth: int, tracing: bool = True
) -> Callable[[], int]:
    """A closure delivering ``steps`` messages at constant in-flight depth.

    The network persists across calls (the harness calls it once for warmup
    and once per repeat), so every timed call runs at the same queue depth.
    """
    params = ProtocolParams.for_parties(N)
    network = Network(params, scheduler=scheduler, seed=0, tracing=tracing)
    rng = random.Random(1)
    for index in range(depth):
        network.submit(rng.randrange(N), rng.randrange(N), ("bench",), ("M", index))

    def step_loop() -> int:
        submit = network.submit
        step = network.step
        randrange = rng.randrange
        for index in range(steps):
            submit(randrange(N), randrange(N), ("bench",), ("M", index))
            step()
        return network.step_count

    return step_loop


def run(quick: bool) -> List[BenchResult]:
    depth = 256 if quick else 1024
    steps = 2000 if quick else 10000
    repeats = 2 if quick else 3
    results: List[BenchResult] = []

    def workload(
        name: str,
        make: Callable[[], Scheduler],
        workload_depth: int = 0,
        workload_repeats: int = 0,
        **extra,
    ) -> None:
        use_depth = workload_depth or depth
        results.append(
            compare(
                name,
                _steady_state_stepper(make(), steps, use_depth),
                _steady_state_stepper(force_scan(make()), steps, use_depth),
                number=1,
                repeats=workload_repeats or repeats,
                n=N,
                pending_depth=use_depth,
                steps=steps,
                **extra,
            )
        )

    workload("fifo_delivery", FIFOScheduler)
    workload("random_delivery", RandomScheduler)
    workload(
        "targeted_delivery",
        lambda: TargetedScheduler(lambda message: message.receiver),
    )
    # Random delivery far past the adaptive queue's Fenwick crossover: this is
    # where the O(pending) memmove of the legacy pop dominates.
    workload(
        "random_delivery_flood",
        RandomScheduler,
        workload_depth=200000,
        workload_repeats=2,
    )

    # -- Tracing satellite: disabled-trace fast path vs counters on ----
    results.append(
        compare(
            "tracing_off_vs_on",
            _steady_state_stepper(FIFOScheduler(), steps, depth, tracing=False),
            _steady_state_stepper(FIFOScheduler(), steps, depth, tracing=True),
            number=1,
            repeats=repeats,
            n=N,
            pending_depth=depth,
            steps=steps,
        )
    )
    return results
