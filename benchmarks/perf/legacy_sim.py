"""Frozen copy of the seed's simulation event loop and crypto bindings.

The seed delivered every message through a per-step pipeline of
``run()`` -> poll an O(n) all-honest-finished scan -> ``step()`` ->
full-scan delivery queue, with a frozen-dataclass :class:`LegacyMessage`
allocated per send (property-based ``kind``/``root`` recomputed by the
tracing layer on every event), and SVSS computed on the seed's
object-layer crypto (per-operation ``FieldElement`` allocation, O(k^3)
Lagrange interpolation -- frozen in :mod:`benchmarks.perf.legacy`).
These are kept verbatim so ``python -m benchmarks.perf`` can measure the
"before" side of every end-to-end trial workload on the same interpreter,
protocols and seeds: a legacy trial is the seed's trial implementation,
a fast trial is the same protocol logic on the current fast-path stack.
The seed crypto consumes the identical rng stream and computes the same
field values, so both sides produce byte-identical outputs and delivery
orders per seed.

They are *benchmark oracles only* -- the production event loop lives in
``repro.net.network`` (completion counters, interned sessions, slotted
messages, fused loops) and the production crypto in ``repro.crypto``.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from benchmarks.perf.legacy import LegacyPolynomial
from repro.core.config import ProtocolParams
from repro.crypto.field import Field, FieldElement
from repro.errors import SimulationError
from repro.net.message import SessionId
from repro.net.network import DEFAULT_MAX_STEPS, Network
from repro.net.runtime import Simulation
from repro.net.scheduler import RandomScheduler, Scheduler, force_scan
from repro.protocols import svss as svss_module


@dataclass(frozen=True)
class LegacyMessage:
    """The seed's message: a frozen dataclass with property-based tags."""

    sender: int
    receiver: int
    session: SessionId
    payload: Tuple[Any, ...]
    seq: int = 0

    @property
    def kind(self) -> Any:
        if not self.payload:
            return None
        return self.payload[0]

    @property
    def root(self) -> Any:
        if not self.session:
            return None
        return self.session[0]


class LegacyNetwork(Network):
    """The seed's event loop, grafted onto the current protocol stack.

    * delivery queue pinned to the legacy full-scan path (``force_scan``);
    * ``submit`` validates via ``params.is_valid_party``, copies session and
      payload tuples, and allocates a frozen-dataclass message;
    * ``run`` polls the stop condition through ``step()`` per delivery;
    * ``run_until_complete`` polls the O(n) per-process completion scan
      between every two deliveries (the seed's stop condition).
    """

    def __init__(
        self,
        params: ProtocolParams,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        keep_events: bool = False,
        tracing: bool = True,
    ) -> None:
        super().__init__(
            params,
            scheduler=force_scan(scheduler or RandomScheduler()),
            seed=seed,
            keep_events=keep_events,
            tracing=tracing,
        )

    # -- the seed's send path -------------------------------------------
    def submit(self, sender, receiver, session, payload):  # type: ignore[override]
        if not self.params.is_valid_party(receiver):
            raise SimulationError(f"message addressed to unknown party {receiver}")
        message = LegacyMessage(
            sender=sender,
            receiver=receiver,
            session=tuple(session),
            payload=tuple(payload),
            seq=self._next_seq,
        )
        self._next_seq += 1
        self._queue.push(message)  # type: ignore[arg-type]
        self.trace.on_send(self.step_count, message)  # type: ignore[arg-type]

    # -- the seed's delivery loop ---------------------------------------
    def run(self, until=None, max_steps=DEFAULT_MAX_STEPS):  # type: ignore[override]
        delivered = 0
        while True:
            if until is not None and until(self):
                return delivered
            if delivered >= max_steps:
                raise SimulationError(
                    f"run() exceeded {max_steps} deliveries without reaching "
                    f"its stop condition"
                )
            if not self.step():
                if until is None:
                    return delivered
                raise SimulationError(
                    "network is quiescent but the stop condition is not met "
                    "(protocol deadlock)"
                )
            delivered += 1

    def run_until_complete(self, session, max_steps=DEFAULT_MAX_STEPS):  # type: ignore[override]
        session = tuple(session)
        return self.run(
            until=lambda net: net.scan_all_honest_finished(session),
            max_steps=max_steps,
        )


class SeedPolynomial(LegacyPolynomial):
    """The seed's object-layer polynomial with the current wire-format API.

    Adds the ``from_ints`` / ``to_ints`` / ``__eq__`` surface the SVSS
    protocol uses, on top of the frozen FieldElement-per-operation
    arithmetic -- so the protocol code runs unmodified against the seed
    crypto.  Values and rng consumption are identical to the kernel-backed
    :class:`repro.crypto.polynomial.Polynomial`.
    """

    @classmethod
    def from_ints(cls, field: Field, values: Sequence[int]) -> "SeedPolynomial":
        return cls(field, values)

    def to_ints(self) -> List[int]:
        return [c.value for c in self.coefficients]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LegacyPolynomial):
            return NotImplemented
        return self.field == other.field and [
            c.value for c in self.coefficients
        ] == [c.value for c in other.coefficients]

    def __hash__(self) -> int:
        return hash((self.field.prime, tuple(c.value for c in self.coefficients)))

    def eval_int(self, x: int) -> int:
        # The seed had no raw-int evaluation path: evaluate through the
        # FieldElement Horner and unwrap.
        return self(x).value


class SeedSymmetricBivariate:
    """The seed's symmetric bivariate polynomial (object-layer row extraction).

    Draws coefficients in the same upper-triangle order and from the same
    ``field.random`` stream as the production class, so a legacy dealer deals
    byte-identical rows.
    """

    def __init__(self, field: Field, coefficients: Sequence[Sequence[Any]]) -> None:
        self.field = field
        self.coefficients: List[List[FieldElement]] = [
            [field(c) for c in row] for row in coefficients
        ]

    @classmethod
    def random(
        cls,
        field: Field,
        degree: int,
        rng: random.Random,
        secret: Optional[int] = None,
    ) -> "SeedSymmetricBivariate":
        size = degree + 1
        matrix: List[List[FieldElement]] = [
            [field.zero() for _ in range(size)] for _ in range(size)
        ]
        for i in range(size):
            for j in range(i, size):
                value = field.random(rng)
                matrix[i][j] = value
                matrix[j][i] = value
        if secret is not None:
            matrix[0][0] = field(secret)
        return cls(field, matrix)

    def row(self, index: Any) -> SeedPolynomial:
        # Verbatim the seed's row extraction (legacy_bivariate_row), built
        # directly as a SeedPolynomial to avoid re-wrapping overhead that the
        # seed never paid.
        field = self.field
        degree = len(self.coefficients) - 1
        x = field(index)
        coeffs = [field.zero()] * (degree + 1)
        x_power = field.one()
        for i in range(degree + 1):
            for j in range(degree + 1):
                coeffs[j] = coeffs[j] + self.coefficients[i][j] * x_power
            x_power = x_power * x
        return SeedPolynomial(field, coeffs)


@contextmanager
def seed_crypto() -> Iterator[None]:
    """Run SVSS (and everything stacked on it) on the seed's crypto layer."""
    saved = (svss_module.Polynomial, svss_module.SymmetricBivariatePolynomial)
    svss_module.Polynomial = SeedPolynomial  # type: ignore[misc,assignment]
    svss_module.SymmetricBivariatePolynomial = SeedSymmetricBivariate  # type: ignore[misc,assignment]
    try:
        yield
    finally:
        svss_module.Polynomial, svss_module.SymmetricBivariatePolynomial = saved  # type: ignore[misc]


# ----------------------------------------------------------------------
# The seed's protocol/process dispatch layer, verbatim.  The production
# versions skip defensive tuple copies, flatten the send call chain and
# inline the shun probe; the seed paid all of that per message.
# ----------------------------------------------------------------------
def _seed_protocol_send(self, receiver, *payload):
    self.process.send(receiver, self.session, tuple(payload))


def _seed_protocol_broadcast(self, *payload):
    for receiver in range(self.n):
        self.send(receiver, *payload)


def _seed_process_send(self, receiver, session, payload):
    if self.outgoing_mutator is not None:
        mutated = self.outgoing_mutator(receiver, tuple(session), payload)
        if mutated is None:
            return
        receiver, session, payload = mutated
    self.network.submit(self.pid, receiver, tuple(session), tuple(payload))


def _seed_process_deliver(self, message):
    if self.behavior is not None:
        self.behavior.on_message(message)
        return
    session = message.session
    instance = self.protocols.get(session)
    if instance is None or not instance.started:
        self._pending.setdefault(session, []).append(
            (message.sender, message.payload)
        )
        return
    if self._is_shunned_for(message.sender, instance):
        self.network.trace.on_drop(self.network.step_count, message, "shunned")
        return
    instance.on_message(message.sender, message.payload)


def _seed_notify_completion(self, instance):
    self.network.record_completion(self.pid, instance.session)
    self.network.trace.on_complete(
        self.network.step_count, self.pid, instance.session, instance.output
    )


@contextmanager
def seed_runtime() -> Iterator[None]:
    """Run the protocol/process dispatch layer with the seed's per-message costs.

    (``record_completion`` is kept in the completion hook -- the counters did
    not exist at seed, but the legacy loop never reads them and the cost is a
    dict update per rare completion, far below measurement noise.)
    """
    from repro.net.process import Process
    from repro.net.protocol import Protocol

    saved = (
        Protocol.send,
        Protocol.broadcast,
        Process.send,
        Process.deliver,
        Process.notify_completion,
    )
    Protocol.send = _seed_protocol_send  # type: ignore[method-assign]
    Protocol.broadcast = _seed_protocol_broadcast  # type: ignore[method-assign]
    Process.send = _seed_process_send  # type: ignore[method-assign]
    Process.deliver = _seed_process_deliver  # type: ignore[method-assign]
    Process.notify_completion = _seed_notify_completion  # type: ignore[method-assign]
    try:
        yield
    finally:
        (
            Protocol.send,
            Protocol.broadcast,
            Process.send,
            Process.deliver,
            Process.notify_completion,
        ) = saved  # type: ignore[method-assign]


@contextmanager
def seed_stack() -> Iterator[None]:
    """The full frozen 'before': seed crypto + seed dispatch layer."""
    with seed_crypto(), seed_runtime():
        yield


def legacy_simulation(
    n: int,
    seed: int,
    max_steps: Optional[int] = None,
    tracing: bool = True,
) -> Simulation:
    """A :class:`Simulation` whose network is the frozen seed event loop."""
    params = ProtocolParams.for_parties(n)
    # pause_gc=False: the seed ran trials with the collector active.
    sim = Simulation(params=params, seed=seed, tracing=tracing, pause_gc=False)
    if max_steps is not None:
        sim.max_steps = max_steps
    sim.network = LegacyNetwork(params, seed=seed, tracing=tracing)
    return sim
