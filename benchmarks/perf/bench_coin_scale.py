"""Coin-at-scale workloads: whole coin trials at n=16/32/64, batched vs frozen.

Each trial workload runs the same protocol over the same seed stream twice:
once on the current stack (batched crypto plane, group-mode fan-out queue,
unmaterialised delivery loop) and once on the frozen pre-batching stack of
:mod:`benchmarks.perf.legacy_coin` (flat-Fenwick queue, per-receiver row
validation and Horner cross-checks, basis-backed reconstruction weights, the
PR-4 delivery loop).  An untimed pre-check asserts the two sides produce
identical honest outputs and delivery counts per seed, so the recorded
speedups are pure implementation wins, never behaviour changes.

Primes match the scenario scale presets: n=16 keeps the library default
``2^31 - 1`` (below the plane's vectorisation cutoff, so it exercises the
scalar-fallback mode plus the shared caches), n=32/64 use the million-scale
preset primes (single int64 matmul mode).  The 16-bit split mode (default
prime at n >= 24) is covered end-to-end by the frozen-stack equivalence
trial in ``tests/test_golden_trials.py`` and at unit level in
``tests/crypto/test_eval_plan.py``.

``svss_validation`` isolates the tentpole's core amortisation: validating a
full round of RECROW rows and cross-checking each at every receiver's point,
per-receiver scalar (validate + Horner per (row, receiver) pair -- the
pre-batching cost) vs the shared plane (one cached validation + one batched
evaluation sweep per distinct row, a dict probe and a list index for every
other receiver).

Quick mode (the CI perf-smoke configuration) stays at n <= 32.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, List

from benchmarks.perf import legacy_coin
from benchmarks.perf.harness import BenchResult, compare
from repro.core import api
from repro.crypto import kernels
from repro.net.runtime import SimulationResult

#: Scale-preset primes (None = library default 2^31 - 1).
PRIMES = {16: None, 32: 1_000_003, 64: 999_983}
STRONG_ROUNDS = 1


def _check_equivalence(
    name: str,
    fast: Callable[[int], SimulationResult],
    legacy: Callable[[int], SimulationResult],
    seed: int,
) -> None:
    """Assert the batched and frozen stacks produce identical trials."""
    fast_result = fast(seed)
    legacy_result = legacy(seed)
    if (
        fast_result.outputs != legacy_result.outputs
        or fast_result.steps != legacy_result.steps
    ):
        raise AssertionError(
            f"{name}: batched plane diverged from the frozen stack at seed {seed}: "
            f"outputs {fast_result.outputs!r} vs {legacy_result.outputs!r}, "
            f"steps {fast_result.steps} vs {legacy_result.steps}"
        )


def _svss_validation_workload(n: int, prime: int, rows_per_round: int):
    """Batched vs scalar validation of one RECROW round at every receiver."""
    t = (n - 1) // 3
    rng = random.Random(42)
    payloads = [
        tuple(rng.randrange(prime) for _ in range(t + 1))
        for _ in range(rows_per_round)
    ]

    def scalar() -> int:
        # Pre-batching shape: every receiver re-validates every row and
        # evaluates it at its own point with Horner.
        total = 0
        for pid in range(n):
            point = pid + 1
            for payload in payloads:
                row = legacy_coin._legacy_validate_row_ints(prime, t, payload)
                total ^= kernels.horner(prime, row, point)
        return total

    def batched() -> int:
        # One fresh plane per call (cold caches): the first receiver pays for
        # validation + the batched evaluation sweep, all others hit the
        # shared record -- the cross-dealer amortisation of a real trial.
        plane = kernels.CryptoPlane(prime, n, t)
        cache = plane.row_cache
        total = 0
        for pid in range(n):
            for payload in payloads:
                record = cache.get(payload)
                if record is None:
                    record = plane.validate_row_record(payload)
                total ^= record[1][pid]
        return total

    assert scalar() == batched(), "svss_validation: batched != scalar"
    return batched, scalar


def run(quick: bool) -> List[BenchResult]:
    sizes = [16, 32] if quick else [16, 32, 64]
    repeats = 2
    results: List[BenchResult] = []

    def trial_workload(
        name: str,
        fast: Callable[[int], SimulationResult],
        legacy: Callable[[int], SimulationResult],
        number: int,
        trial_repeats: int = repeats,
        **params,
    ) -> None:
        _check_equivalence(name, fast, legacy, seed=99)
        # Separate but identical seed streams: the harness makes the same
        # number of calls on each side (one warmup + repeats * number).
        fast_seeds = itertools.count(1000)
        legacy_seeds = itertools.count(1000)
        results.append(
            compare(
                name,
                lambda: fast(next(fast_seeds)),
                lambda: legacy(next(legacy_seeds)),
                number=number,
                repeats=trial_repeats,
                **params,
            )
        )

    for n in sizes:
        prime = PRIMES[n]
        # metering=False keeps the legacy-oracle comparison apples-to-apples:
        # the frozen stack predates the group meter, so the speedup rows
        # measure the batching work alone.  The metering overhead itself is
        # measured by the weak_coin_metered_n32 row below.
        trial_workload(
            f"weak_coin_trial_n{n}",
            lambda seed, n=n, prime=prime: api.run_weak_coin(
                n, seed=seed, prime=prime, tracing=False, metering=False
            ),
            lambda seed, n=n, prime=prime: legacy_coin.legacy_run_weak_coin(
                n, seed, prime=prime
            ),
            number=2 if n <= 32 else 1,
            trial_repeats=repeats if n <= 32 else 1,
            n=n,
            prime=prime or 2_147_483_647,
            tracing="off (campaign config, both sides)",
        )

    # Group-meter overhead: the campaign configuration (tracing off) with the
    # meter on -- the new default -- against the same run with metering
    # disabled.  "speedup" below 1.0 is the metering cost; the observability
    # plane promises it stays under 10% (speedup >= 0.90).
    n = 32
    prime = PRIMES[n]
    metered_seeds = itertools.count(2000)
    unmetered_seeds = itertools.count(2000)
    results.append(
        compare(
            "weak_coin_metered_n32",
            lambda: api.run_weak_coin(
                n, seed=next(metered_seeds), prime=prime, tracing=False
            ),
            lambda: api.run_weak_coin(
                n, seed=next(unmetered_seeds), prime=prime, tracing=False,
                metering=False,
            ),
            number=2,
            repeats=repeats,
            n=n,
            prime=prime,
            tracing="off; before = metering off, after = group meter on",
        )
    )
    for n in sizes:
        prime = PRIMES[n]
        # A strong coin at n=64 runs 64 parallel ABA instances inside the
        # common subset and legitimately needs more than the default 2M
        # delivery safety cap.
        max_steps = 20_000_000 if n == 64 else None
        trial_workload(
            f"strong_coin_trial_n{n}",
            lambda seed, n=n, prime=prime, max_steps=max_steps: api.run_coinflip(
                n,
                seed=seed,
                rounds=STRONG_ROUNDS,
                prime=prime,
                tracing=False,
                metering=False,
                max_steps=max_steps,
            ),
            lambda seed, n=n, prime=prime, max_steps=max_steps: legacy_coin.legacy_run_coinflip(
                n, seed, STRONG_ROUNDS, prime=prime, max_steps=max_steps
            ),
            number=1,
            trial_repeats=repeats if n <= 32 else 1,
            n=n,
            rounds=STRONG_ROUNDS,
            prime=prime or 2_147_483_647,
            tracing="off (campaign config, both sides)",
        )

    n = 32 if quick else 64
    prime = PRIMES[n] or 2_147_483_647
    batched, scalar = _svss_validation_workload(n, prime, rows_per_round=n)
    results.append(
        compare(
            "svss_validation",
            batched,
            scalar,
            number=4,
            repeats=3,
            n=n,
            prime=prime,
            rows=n,
            receivers=n,
        )
    )
    return results
