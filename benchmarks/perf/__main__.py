"""CLI entry point: ``python -m benchmarks.perf [--quick] [--out-dir DIR]``.

``--profile NAME`` runs exactly one benchmark family under :mod:`cProfile`
and prints the top cumulative hotspots instead of writing baselines -- the
supported way to diagnose where trial time goes without ad-hoc scripts.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
from pathlib import Path

from benchmarks.perf import (
    bench_beacon,
    bench_coin_scale,
    bench_crypto,
    bench_net,
    bench_scenarios,
    bench_sim,
)
from benchmarks.perf.harness import run_and_write
from repro.crypto import kernels

#: family name -> (runner module, output file, title, extra-metadata hook).
FAMILIES = {
    "crypto": (
        bench_crypto,
        "BENCH_crypto.json",
        "crypto kernels (share / reconstruct / decode / coinflip)",
        None,
    ),
    "net": (
        bench_net,
        "BENCH_net.json",
        "network delivery loop (indexed queues vs full scan)",
        None,
    ),
    "sim": (
        bench_sim,
        "BENCH_sim.json",
        "end-to-end trials (fast event loop vs frozen seed loop)",
        None,
    ),
    "scenarios": (
        bench_scenarios,
        "BENCH_scenarios.json",
        "adversarial scenarios at bench scale (incl. indexed flood delivery)",
        None,
    ),
    "coin_scale": (
        bench_coin_scale,
        "BENCH_coin_scale.json",
        "coin trials at n=16/32/64 (batched crypto plane vs frozen pre-batching stack)",
        lambda: {"lagrange_cache": kernels.lagrange_cache_info().to_dict()},
    ),
    "beacon": (
        bench_beacon,
        "BENCH_beacon.json",
        "beacon service (warm resident executors vs cold one-shot worlds)",
        None,
    ),
}

#: Number of cumulative-time entries printed by ``--profile``.
PROFILE_TOP = 20


def _profile_family(name: str, quick: bool) -> int:
    try:
        module, _, title, _ = FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        print(f"unknown bench family {name!r}; known: {known}")
        return 2
    print(f"profiling {name} ({title}) under cProfile ...")
    profiler = cProfile.Profile()
    profiler.enable()
    module.run(quick)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Time crypto-kernel, network-delivery, end-to-end trial "
        "and coin-at-scale workloads and write the BENCH_*.json baselines.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: same workloads, smaller sizes and repeat counts",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("."),
        help="directory for the BENCH_*.json files (default: current directory)",
    )
    parser.add_argument(
        "--profile",
        metavar="NAME",
        help="run one bench family under cProfile and print the top "
        f"{PROFILE_TOP} cumulative hotspots (families: "
        f"{', '.join(sorted(FAMILIES))}); writes no baselines",
    )
    args = parser.parse_args(argv)

    if args.profile:
        return _profile_family(args.profile, args.quick)

    args.out_dir.mkdir(parents=True, exist_ok=True)
    for name in ("crypto", "net", "sim", "scenarios", "coin_scale", "beacon"):
        module, filename, title, extra_meta = FAMILIES[name]
        print(f"{name} workloads ({'quick' if args.quick else 'full'} mode):")
        results = module.run(args.quick)
        run_and_write(
            title,
            args.out_dir / filename,
            results,
            args.quick,
            extra_meta=None if extra_meta is None else extra_meta(),
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
