"""CLI entry point: ``python -m benchmarks.perf [--quick] [--out-dir DIR]``."""

from __future__ import annotations

import argparse
from pathlib import Path

from benchmarks.perf import bench_crypto, bench_net, bench_scenarios, bench_sim
from benchmarks.perf.harness import run_and_write


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Time crypto-kernel, network-delivery and end-to-end "
        "trial workloads and write BENCH_crypto.json / BENCH_net.json / "
        "BENCH_sim.json baselines.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: same workloads, smaller sizes and repeat counts",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=Path("."),
        help="directory for the BENCH_*.json files (default: current directory)",
    )
    args = parser.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    print(f"crypto workloads ({'quick' if args.quick else 'full'} mode):")
    crypto_results = bench_crypto.run(args.quick)
    run_and_write(
        "crypto kernels (share / reconstruct / decode / coinflip)",
        args.out_dir / "BENCH_crypto.json",
        crypto_results,
        args.quick,
    )

    print(f"net workloads ({'quick' if args.quick else 'full'} mode):")
    net_results = bench_net.run(args.quick)
    run_and_write(
        "network delivery loop (indexed queues vs full scan)",
        args.out_dir / "BENCH_net.json",
        net_results,
        args.quick,
    )

    print(f"sim workloads ({'quick' if args.quick else 'full'} mode):")
    sim_results = bench_sim.run(args.quick)
    run_and_write(
        "end-to-end trials (fast event loop vs frozen seed loop)",
        args.out_dir / "BENCH_sim.json",
        sim_results,
        args.quick,
    )

    print(f"scenario workloads ({'quick' if args.quick else 'full'} mode):")
    scenario_results = bench_scenarios.run(args.quick)
    run_and_write(
        "adversarial scenarios at bench scale (incl. indexed flood delivery)",
        args.out_dir / "BENCH_scenarios.json",
        scenario_results,
        args.quick,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
