"""Adversarial-scenario workloads: named attacks at the n=32 bench scale.

Two kinds of measurement:

* **Trend workloads** (``before_s: null``) -- full trials of library
  scenarios (`dealer-ambush`, `adaptive-budget-burn`, `late-crash-quorum`,
  `partition-heal`) at the ``n32`` scale preset with tracing disabled, i.e.
  the exact per-trial cost a Monte-Carlo scenario campaign pays.  These have
  no legacy implementation to race; the checked-in numbers document the
  operating point (and the regression checker reports but never fails them).
* **The flood pair** -- the `flood-fenwick` scenario (session-starvation
  scheduler holding back all SVSS reconstruction traffic, so thousands of
  messages pile up in flight) run once on the indexed
  :class:`~repro.net.queues.TwoClassRandomQueue` fast path and once pinned to
  the legacy full-scan queue via :func:`~repro.net.scheduler.force_scan`.
  Delivery order is byte-identical (asserted before timing); the speedup is
  pure queue indexing, measured exactly where the scan path degenerates.
* **The reactive pairs** -- the director-driven `reactive-rush` scenario on
  the rank-indexed :class:`~repro.scenarios.schedulers._ReactiveQueue` versus
  the reference ``choose`` scan (same byte-identical guarantee, asserted
  before timing), plus ``reactive_director_overhead_n32``: the same reactive
  trial raced against the static-scheduler `restart-storm` trial at n=32.
  Its "speedup" is the static/reactive time ratio -- the price of closing
  the adversary loop -- and the regression checker's tolerance keeps the
  reactive path within 2x of the static row.

Every timed callable draws fresh seeds from its own counter so repeated
calls never replay a warm trial, and a determinism pre-check asserts that
rerunning a scenario on the same seed reproduces the identical trial.
"""

from __future__ import annotations

import itertools
from typing import List

from benchmarks.perf.harness import BenchResult, compare
from repro.experiments.registry import RUNNERS
from repro.net.runtime import SimulationResult
from repro.net.scheduler import force_scan
from repro.scenarios.engine import ScenarioRuntime, run_scenario
from repro.scenarios.library import get_scenario


def _fingerprint(result: SimulationResult):
    return result.steps, tuple(sorted(result.outputs.items()))


def _check_determinism(name: str, n: int) -> None:
    """Same scenario + seed must reproduce the identical trial."""
    first = run_scenario(name, n=n, seed=7, tracing=False)
    second = run_scenario(name, n=n, seed=7, tracing=False)
    if _fingerprint(first) != _fingerprint(second):
        raise AssertionError(f"{name}: scenario trial not deterministic at n={n}")


def _flood_trial(n: int, seed: int, scan: bool) -> SimulationResult:
    """One flood-fenwick trial, optionally pinned to the legacy scan queue."""
    spec = get_scenario("flood-fenwick")
    runtime = ScenarioRuntime(spec, n=n)
    scheduler = runtime.build_scheduler()
    if scan:
        scheduler = force_scan(scheduler)
    return RUNNERS.get(spec.protocol)(
        n=n, seed=seed, scheduler=scheduler, prime=runtime.prime, tracing=False
    )


def _reactive_trial(n: int, seed: int, scan: bool) -> SimulationResult:
    """One reactive-rush trial, optionally pinned to the reference scan.

    The scan wrapper hides the reactive scheduler's indexed queue but must
    still let the director apply its actions, so the reaction entry points
    are forwarded onto the wrapper.
    """
    spec = get_scenario("reactive-rush")
    runtime = ScenarioRuntime(spec, n=n)
    scheduler = runtime.build_scheduler()
    if scan:
        inner = scheduler
        scheduler = force_scan(inner)
        scheduler.supports_reactions = True
        scheduler.apply_action = inner.apply_action
    return RUNNERS.get(spec.protocol)(
        n=n,
        seed=seed,
        scheduler=scheduler,
        prime=runtime.prime,
        director=runtime.build_director(),
        tracing=False,
    )


def run(quick: bool) -> List[BenchResult]:
    n = 16 if quick else 32
    repeats = 2
    results: List[BenchResult] = []

    # -- trend workloads: library scenarios at bench scale ----------------
    for name, number in (
        ("dealer-ambush", 1),
        ("adaptive-budget-burn", 1),
        ("late-crash-quorum", 2),
        ("partition-heal", 2),
        ("restart-storm", 1),
        ("tamper-on-share", 1),
        ("reactive-rush", 1),
    ):
        _check_determinism(name, n)
        seeds = itertools.count(500)
        results.append(
            compare(
                f"scenario_{name.replace('-', '_')}",
                lambda seeds=seeds, name=name: run_scenario(
                    name, n=n, seed=next(seeds), tracing=False
                ),
                number=number,
                repeats=repeats,
                n=n,
                scenario=name,
            )
        )

    # -- the flood pairs: indexed two-class queue vs legacy full scan -----
    # n=8 runs in both modes (same params), so the CI quick run gates the
    # flood speedup against the checked-in baseline; the n=16 pair is the
    # full-mode headline where the scan path is deep in its O(m) regime.
    flood_sizes = [8] if quick else [8, 16]
    for flood_n in flood_sizes:
        fast = _flood_trial(flood_n, 3, scan=False)
        scan = _flood_trial(flood_n, 3, scan=True)
        if _fingerprint(fast) != _fingerprint(scan):
            raise AssertionError(
                "flood-fenwick: indexed queue diverged from the scan path "
                f"at n={flood_n}"
            )
        fast_seeds = itertools.count(900)
        scan_seeds = itertools.count(900)
        results.append(
            compare(
                f"flood_fenwick_delivery_n{flood_n}",
                lambda flood_n=flood_n, fast_seeds=fast_seeds: _flood_trial(
                    flood_n, next(fast_seeds), scan=False
                ),
                lambda flood_n=flood_n, scan_seeds=scan_seeds: _flood_trial(
                    flood_n, next(scan_seeds), scan=True
                ),
                number=1,
                repeats=repeats,
                n=flood_n,
                scenario="flood-fenwick",
            )
        )

    # -- the reactive pairs: rank-indexed queue vs reference choose scan --
    # Same quick/full split as the flood pairs: the reference scan is
    # O(pending * rules) per delivery once the rush rule installs, so it is
    # only affordable at the small sizes.
    reactive_sizes = [8] if quick else [8, 16]
    for reactive_n in reactive_sizes:
        fast = _reactive_trial(reactive_n, 3, scan=False)
        scan = _reactive_trial(reactive_n, 3, scan=True)
        if _fingerprint(fast) != _fingerprint(scan):
            raise AssertionError(
                "reactive-rush: indexed queue diverged from the reference "
                f"scan at n={reactive_n}"
            )
        fast_seeds = itertools.count(900)
        scan_seeds = itertools.count(900)
        results.append(
            compare(
                f"reactive_rush_delivery_n{reactive_n}",
                lambda reactive_n=reactive_n, fast_seeds=fast_seeds: _reactive_trial(
                    reactive_n, next(fast_seeds), scan=False
                ),
                lambda reactive_n=reactive_n, scan_seeds=scan_seeds: _reactive_trial(
                    reactive_n, next(scan_seeds), scan=True
                ),
                number=1,
                repeats=repeats,
                n=reactive_n,
                scenario="reactive-rush",
            )
        )

    # -- director overhead: reactive trial vs the static-scheduler row ----
    # Always at n=32 (both modes): the "speedup" is static over reactive
    # wall time for same-protocol, same-scale trials, so the regression
    # checker's tolerance pins the reactive director within 2x of the
    # static-scheduler trial.
    _check_determinism("reactive-rush", 32)
    static_seeds = itertools.count(700)
    reactive_seeds = itertools.count(700)
    results.append(
        compare(
            "reactive_director_overhead_n32",
            lambda reactive_seeds=reactive_seeds: run_scenario(
                "reactive-rush", n=32, seed=next(reactive_seeds), tracing=False
            ),
            lambda static_seeds=static_seeds: run_scenario(
                "restart-storm", n=32, seed=next(static_seeds), tracing=False
            ),
            number=1,
            repeats=repeats,
            n=32,
            scenario="reactive-rush",
        )
    )
    return results
