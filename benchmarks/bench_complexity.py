"""Experiment E8: message complexity versus system size.

The paper's protocols are polynomial-message constructions: A-Cast and SVSS
are O(n^2) messages, CommonSubset runs n BA instances, CoinFlip multiplies all
of that by its iteration count (n^4-scale at paper parameters).  This
experiment measures the simulator's message counts across system sizes and
compares them with the closed-form predictions of ``repro.analysis.complexity``,
and reports the paper-scale extrapolation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.complexity import (
    acast_messages,
    coinflip_expected_messages,
    coinflip_theoretical_messages,
    predictions_for,
    svss_rec_messages,
    svss_share_messages,
)
from repro.core import api

SIZES = [4, 7, 10]
ROUNDS = 1


def _measured(n: int) -> dict:
    acast = api.run_acast(n, "x", sender=0, seed=0).trace.messages_sent
    svss = api.run_svss(n, 5, dealer=0, seed=0).trace.messages_sent
    aba = api.run_aba(n, {pid: pid % 2 for pid in range(n)}, seed=0).trace.messages_sent
    coinflip = api.run_coinflip(n, seed=0, rounds=ROUNDS).trace.messages_sent
    return {"acast": acast, "svss": svss, "aba": aba, "coinflip": coinflip}


@pytest.mark.parametrize("n", SIZES)
def test_e8_message_counts_scale_polynomially(benchmark, n):
    measured = benchmark.pedantic(lambda: _measured(n), rounds=1, iterations=1)
    predictions = predictions_for(n, ROUNDS)
    print_table(
        f"E8: measured vs predicted message counts, n={n}",
        ["protocol", "measured", "predicted", "ratio"],
        [
            (
                "acast",
                measured["acast"],
                int(acast_messages(n)),
                f"{measured['acast'] / acast_messages(n):.2f}",
            ),
            (
                "svss (share+rec)",
                measured["svss"],
                int(svss_share_messages(n) + svss_rec_messages(n)),
                f"{measured['svss'] / (svss_share_messages(n) + svss_rec_messages(n)):.2f}",
            ),
            (
                "aba",
                measured["aba"],
                int(predictions["aba"]),
                f"{measured['aba'] / predictions['aba']:.2f}",
            ),
            (
                "coinflip (1 iter)",
                measured["coinflip"],
                int(predictions["coinflip"]),
                f"{measured['coinflip'] / predictions['coinflip']:.2f}",
            ),
        ],
    )
    # The shape claim: measured counts stay within a small constant of the
    # closed-form predictions (they share the same polynomial order).
    assert measured["acast"] <= 2 * acast_messages(n)
    assert measured["svss"] <= 3 * (svss_share_messages(n) + svss_rec_messages(n))
    assert measured["coinflip"] <= 4 * predictions["coinflip"]


def test_e8_growth_between_sizes(benchmark):
    counts = benchmark.pedantic(
        lambda: {n: api.run_coinflip(n, seed=0, rounds=1).trace.messages_sent for n in (4, 7)},
        rounds=1,
        iterations=1,
    )
    ratio = counts[7] / counts[4]
    predicted_ratio = coinflip_expected_messages(7, 1) / coinflip_expected_messages(4, 1)
    print_table(
        "E8b: CoinFlip message growth n=4 -> n=7",
        ["measured ratio", "predicted ratio"],
        [(f"{ratio:.2f}", f"{predicted_ratio:.2f}")],
    )
    assert ratio > 2  # super-linear growth, as predicted
    assert ratio < 4 * predicted_ratio


def test_e8_paper_scale_extrapolation(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (n, eps, int(coinflip_theoretical_messages(n, eps)))
            for n, eps in [(4, 0.25), (7, 0.25), (7, 0.1)]
        ],
        rounds=1,
        iterations=1,
    )
    print_table(
        "E8c: extrapolated message count at the paper's full iteration count",
        ["n", "eps", "messages (predicted)"],
        rows,
    )
    assert rows[0][2] < rows[1][2] < rows[2][2]
