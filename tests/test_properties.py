"""Hypothesis property tests over the protocol stack.

These generate random system sizes, inputs, fault patterns and schedules and
assert the paper's invariants: agreement is never violated, unanimous validity
always holds, outputs always come from the allowed domain, and honest-dealer
SVSS always reconstructs the dealt secret.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary import CrashBehavior
from repro.core import api

SLOW = dict(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**SLOW)
@given(
    seed=st.integers(0, 10_000),
    sender=st.integers(0, 3),
    value=st.one_of(st.integers(), st.text(max_size=8), st.tuples(st.integers(), st.integers())),
)
def test_acast_validity_property(seed, sender, value):
    """Whatever the sender broadcasts is exactly what every honest party delivers."""
    result = api.run_acast(4, value, sender=sender, seed=seed)
    assert result.agreed_value == value
    assert len(result.outputs) == 4


@settings(**SLOW)
@given(seed=st.integers(0, 10_000), secret=st.integers(0, 2_147_483_646), dealer=st.integers(0, 3))
def test_svss_honest_dealer_property(seed, secret, dealer):
    """SVSS with an honest dealer always reconstructs the dealt secret everywhere."""
    result = api.run_svss(4, secret, dealer=dealer, seed=seed)
    assert result.agreed_value == secret


@settings(**SLOW)
@given(
    seed=st.integers(0, 10_000),
    inputs=st.lists(st.integers(0, 1), min_size=4, max_size=4),
)
def test_aba_agreement_and_validity_property(seed, inputs):
    """ABA outputs a single bit; if inputs are unanimous it is that bit."""
    mapping = dict(enumerate(inputs))
    result = api.run_aba(4, mapping, seed=seed)
    assert not result.disagreement
    assert result.agreed_value in (0, 1)
    if len(set(inputs)) == 1:
        assert result.agreed_value == inputs[0]


@settings(**SLOW)
@given(seed=st.integers(0, 10_000), crash=st.one_of(st.none(), st.integers(0, 3)))
def test_coinflip_agreement_property(seed, crash):
    """The strong coin never lets honest parties disagree, with or without a crash."""
    corruptions = {crash: CrashBehavior.factory()} if crash is not None else None
    result = api.run_coinflip(4, seed=seed, rounds=1, corruptions=corruptions)
    assert not result.disagreement
    assert result.agreed_value in (0, 1)


@settings(**SLOW)
@given(
    seed=st.integers(0, 10_000),
    values=st.lists(st.sampled_from(["a", "b", "c", "unanimous"]), min_size=4, max_size=4),
)
def test_fba_agreement_and_validity_property(seed, values):
    """FBA always agrees, outputs someone's input, and honours unanimity."""
    inputs = dict(enumerate(values))
    result = api.run_fba(4, inputs, seed=seed, coinflip_rounds=1)
    assert not result.disagreement
    assert result.agreed_value in set(values)
    if len(set(values)) == 1:
        assert result.agreed_value == values[0]


@settings(**SLOW)
@given(seed=st.integers(0, 10_000), ready_extra=st.integers(0, 1))
def test_common_subset_property(seed, ready_extra):
    """CommonSubset outputs an agreed set of size >= n - t drawn from ready parties."""
    ready = [0, 1, 2] + ([3] if ready_extra else [])
    result = api.run_common_subset(4, ready, seed=seed)
    assert not result.disagreement
    subset = result.agreed_value
    assert len(subset) >= 3
    assert set(subset) <= set(ready)
