"""Tests for the Simulation driver and SimulationResult."""

from __future__ import annotations

import pytest

from repro.adversary import CrashBehavior
from repro.core.config import ProtocolParams
from repro.errors import ConfigurationError
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation
from repro.protocols.acast import ACast


class Immediate(Protocol):
    """Completes instantly with its start argument."""

    def on_start(self, value=None, **_):
        self.broadcast("NOP")
        self.complete(value)


def immediate_factory(process, session):
    return Immediate(process, session)


class TestSimulation:
    def test_runs_root_at_every_honest_party(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        result = sim.run(("imm",), immediate_factory, common_input={"value": 9})
        assert result.outputs == {0: 9, 1: 9, 2: 9, 3: 9}

    def test_per_party_inputs_override_common(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        result = sim.run(
            ("imm",),
            immediate_factory,
            common_input={"value": 0},
            inputs={2: {"value": 5}},
        )
        assert result.outputs[2] == 5
        assert result.outputs[0] == 0

    def test_corrupted_party_excluded_from_outputs(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        sim.corrupt(3, CrashBehavior.factory())
        result = sim.run(("imm",), immediate_factory, common_input={"value": 1})
        assert set(result.outputs) == {0, 1, 2}

    def test_cannot_corrupt_more_than_t(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        sim.corrupt(3, CrashBehavior.factory())
        with pytest.raises(ConfigurationError):
            sim.corrupt(2, CrashBehavior.factory())

    def test_cannot_corrupt_unknown_party(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        with pytest.raises(ConfigurationError):
            sim.corrupt(17, CrashBehavior.factory())

    def test_agreed_value_raises_on_disagreement(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        result = sim.run(
            ("imm",),
            immediate_factory,
            inputs={pid: {"value": pid} for pid in range(4)},
        )
        assert result.disagreement
        with pytest.raises(ValueError):
            _ = result.agreed_value

    def test_agreed_value_on_agreement(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        result = sim.run(("imm",), immediate_factory, common_input={"value": "x"})
        assert not result.disagreement
        assert result.agreed_value == "x"
        assert result.values == ["x"] * 4

    def test_build_network_is_idempotent(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        assert sim.build_network() is sim.build_network()

    def test_acast_through_simulation(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=3)
        result = sim.run(
            ("acast",), ACast.factory(0), inputs={0: {"value": "payload"}}
        )
        assert result.agreed_value == "payload"

    def test_trace_accessible_from_result(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        result = sim.run(("imm",), immediate_factory, common_input={"value": 1})
        assert result.trace.messages_sent >= 16
