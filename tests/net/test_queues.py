"""Equivalence tests: indexed delivery queues == legacy scan-and-pop loop.

The contract of the delivery-queue restructure is that every built-in
scheduler's indexed strategy reproduces the legacy full-scan delivery order
*byte-identically* for the same seed.  These tests run real protocol
executions under both paths and diff the complete delivery trace, plus unit-
and fuzz-level checks of each queue against its reference model.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolParams
from repro.net.message import Message
from repro.net.network import Network
from repro.net.queues import (
    FifoQueue,
    KeyedQueue,
    ScanQueue,
    SendOrderRandomQueue,
    TwoClassRandomQueue,
)
from repro.net.runtime import Simulation
from repro.net.scheduler import (
    DelayScheduler,
    FIFOScheduler,
    PartitionScheduler,
    RandomScheduler,
    TargetedScheduler,
    force_scan,
)
from repro.protocols.acast import ACast
from repro.protocols.weak_coin import WeakCommonCoin


def _msg(seq, sender=0, receiver=1):
    return Message(sender, receiver, ("q",), ("K", seq), seq=seq)


def _delivery_trace(scheduler, seed, n=7):
    """Full delivery order (seq numbers) plus outputs of one weak-coin run."""
    sim = Simulation(
        params=ProtocolParams.for_parties(n),
        scheduler=scheduler,
        seed=seed,
        keep_events=True,
    )
    result = sim.run(("weak_coin",), WeakCommonCoin.factory())
    order = [
        event.detail.seq
        for event in result.network.trace.events
        if event.kind == "deliver"
    ]
    return order, result.outputs


SCHEDULER_FACTORIES = {
    "fifo": FIFOScheduler,
    "random": RandomScheduler,
    "targeted": lambda: TargetedScheduler(lambda m: m.receiver),
    "targeted_dynamic": lambda: TargetedScheduler(lambda m: m.receiver, dynamic=True),
    "delay": lambda: DelayScheduler(lambda m: m.sender == 0),
    # max_delay_steps exercises the TwoClassRandomQueue expiry branch: pops
    # switch from the preferred tree to the full tree mid-run.
    "delay_expiring": lambda: DelayScheduler(lambda m: m.sender == 0, max_delay_steps=30),
    "delay_flood": lambda: DelayScheduler(
        lambda m: m.session[-2] == "rec" if len(m.session) >= 2 else False,
        max_delay_steps=200,
    ),
    "partition": lambda: PartitionScheduler([0, 1, 2], [3, 4, 5], duration=40),
}


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("name", sorted(SCHEDULER_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 13])
    def test_delivery_order_is_byte_identical(self, name, seed):
        factory = SCHEDULER_FACTORIES[name]
        fast_order, fast_outputs = _delivery_trace(factory(), seed)
        scan_order, scan_outputs = _delivery_trace(force_scan(factory()), seed)
        assert fast_order == scan_order
        assert fast_outputs == scan_outputs

    @pytest.mark.parametrize("seed", [0, 5])
    def test_acast_equivalence(self, seed):
        def run(scheduler):
            sim = Simulation(
                params=ProtocolParams.for_parties(4),
                scheduler=scheduler,
                seed=seed,
                keep_events=True,
            )
            result = sim.run(
                ("acast",), ACast.factory(0), inputs={0: {"value": "payload"}}
            )
            return (
                [
                    event.detail.seq
                    for event in result.network.trace.events
                    if event.kind == "deliver"
                ],
                result.outputs,
            )

        assert run(RandomScheduler()) == run(force_scan(RandomScheduler()))

    def test_subclass_with_overridden_choose_keeps_scan_path(self):
        """A subclass's choose() must stay authoritative: indexed strategies
        are only safe for the exact built-in policies."""

        class AlwaysOldest(RandomScheduler):
            def choose(self, pending, rng, step):
                return 0

        assert isinstance(AlwaysOldest().make_queue(), ScanQueue)
        assert isinstance(type("F", (FIFOScheduler,), {})().make_queue(), ScanQueue)
        assert isinstance(
            type("T", (TargetedScheduler,), {})(lambda m: 0).make_queue(), ScanQueue
        )
        network = Network(
            ProtocolParams.for_parties(2), scheduler=AlwaysOldest(), seed=0
        )
        for index in range(4):
            network.submit(0, 1, ("s",), ("K", index))
        delivered = []
        while network.step():
            delivered.append(network.trace.messages_delivered)
        assert network.step_count == 4  # delivered via the subclass's policy

    def test_queue_strategies_selected(self):
        assert isinstance(FIFOScheduler().make_queue(), FifoQueue)
        assert isinstance(RandomScheduler().make_queue(), SendOrderRandomQueue)
        assert isinstance(
            TargetedScheduler(lambda m: 0).make_queue(), KeyedQueue
        )
        assert isinstance(
            TargetedScheduler(lambda m: 0, dynamic=True).make_queue(), ScanQueue
        )
        assert isinstance(
            DelayScheduler(lambda m: False).make_queue(), TwoClassRandomQueue
        )
        assert isinstance(
            PartitionScheduler([0], [1], 10).make_queue(), TwoClassRandomQueue
        )
        # A non-random base policy falls back to the reference scan path.
        assert isinstance(
            DelayScheduler(lambda m: False, base=FIFOScheduler()).make_queue(),
            ScanQueue,
        )


class TestFifoQueue:
    def test_pops_in_send_order(self):
        queue = FifoQueue()
        messages = [_msg(seq) for seq in range(10)]
        for message in messages:
            queue.push(message)
        rng = random.Random(0)
        assert [queue.pop(rng, 0).seq for _ in range(10)] == list(range(10))
        assert len(queue) == 0


class TestKeyedQueue:
    def test_matches_scan_minimum(self):
        scheduler = TargetedScheduler(lambda m: m.receiver)
        queue = KeyedQueue(lambda m: m.receiver)
        pending = []
        rng = random.Random(0)
        order_rng = random.Random(7)
        for seq in range(50):
            message = _msg(seq, receiver=order_rng.randrange(5))
            queue.push(message)
            pending.append(message)
        while pending:
            choice = scheduler.choose(pending, rng, 0)
            expected = pending.pop(choice)
            assert queue.pop(rng, 0) is expected
        assert len(queue) == 0


class TestSendOrderRandomQueue:
    def test_fuzz_matches_list_model(self, monkeypatch):
        """Random pushes/pops against the legacy list model: every pop must
        deliver exactly the message ``pending.pop(randrange(len(pending)))``
        would have, across word boundaries, partially dead words and
        list<->tree mode crossings (tiny threshold forces many)."""
        monkeypatch.setattr(SendOrderRandomQueue, "_LIST_THRESHOLD", 32)
        queue = SendOrderRandomQueue()
        model = []
        control = random.Random(1)
        seq = 0
        for _ in range(20000):
            if model and control.random() < 0.5:
                draw = control.randrange(1 << 30)
                fast = queue.pop(random.Random(draw), 0)
                expected = model.pop(random.Random(draw).randrange(len(model)))
                assert fast is expected
            else:
                message = _msg(seq)
                seq += 1
                queue.push(message)
                model.append(message)
            assert len(queue) == len(model)
        assert queue.snapshot() == model

    def test_fuzz_group_pushes_match_eager_pushes(self, monkeypatch):
        """Fan-out group entries deliver byte-identical messages (fields and
        order) to eagerly materialised per-receiver pushes, across mode
        crossings on the grouped side."""
        from repro.net.queues import FanoutEntry

        monkeypatch.setattr(SendOrderRandomQueue, "_LIST_THRESHOLD", 48)
        grouped = SendOrderRandomQueue()
        eager = SendOrderRandomQueue()
        control = random.Random(7)
        n = 8
        seq = 0
        live = 0
        for round_index in range(4000):
            if live and control.random() < 0.55:
                draw = control.randrange(1 << 30)
                fast = grouped.pop(random.Random(draw), 0)
                reference = eager.pop(random.Random(draw), 0)
                assert (
                    fast.sender,
                    fast.receiver,
                    fast.session,
                    fast.payload,
                    fast.seq,
                    fast.kind,
                    fast.root,
                ) == (
                    reference.sender,
                    reference.receiver,
                    reference.session,
                    reference.payload,
                    reference.seq,
                    reference.kind,
                    reference.root,
                )
                live -= 1
                continue
            sender = control.randrange(n)
            session = ("s", round_index % 3)
            if control.random() < 0.5:
                # Broadcast: one shared payload for every receiver.
                payload = ("B", round_index)
                grouped.push_group(
                    FanoutEntry(sender, session, "B", payload, None, seq, None, "s"),
                    (1 << n) - 1,
                    n,
                )
                receivers = range(n)
                skip = None
                values = None
            else:
                # Fan-out with per-receiver values, skipping the sender.
                values = [control.randrange(1000) for _ in range(n)]
                payload = None
                skip = sender
                grouped.push_group(
                    FanoutEntry(sender, session, "P", None, values, seq, skip, "s"),
                    ((1 << n) - 1) ^ (1 << skip),
                    n - 1,
                )
                receivers = [r for r in range(n) if r != skip]
            for receiver in receivers:
                message = _msg(seq, receiver=receiver)
                message.sender = sender
                message.session = session
                message.payload = payload if values is None else ("P", values[receiver])
                message.kind = payload[0] if values is None else "P"
                message.root = "s"
                eager.push(message)
                seq += 1
                live += 1
            assert len(grouped) == len(eager)

    @pytest.mark.parametrize("n", [7, 16])
    def test_group_mode_trial_matches_eager_trial(self, n):
        """A tracing-off run (group mode: lazy fan-out entries) reproduces a
        traced run (eager per-message submits) delivery-for-delivery."""
        from repro.core import api

        eager = api.run_weak_coin(n, seed=11)
        lazy = api.run_weak_coin(n, seed=11, tracing=False)
        assert eager.outputs == lazy.outputs
        assert eager.steps == lazy.steps

    def test_snapshot_preserves_send_order(self):
        queue = SendOrderRandomQueue()
        for seq in range(100):
            queue.push(_msg(seq))
        rng = random.Random(3)
        for _ in range(60):
            queue.pop(rng, 0)
        snapshot = queue.snapshot()
        assert [m.seq for m in snapshot] == sorted(m.seq for m in snapshot)


class TestNetworkPendingView:
    def test_pending_is_send_order_snapshot(self):
        network = Network(ProtocolParams.for_parties(4), seed=0)
        for index in range(5):
            network.submit(0, 1, ("s",), ("K", index))
        assert [m.seq for m in network.pending] == [0, 1, 2, 3, 4]
        network.step()
        assert len(network.pending) == 4


class TestTracingFastPath:
    def test_disabled_trace_records_nothing(self):
        network = Network(ProtocolParams.for_parties(4), seed=0, tracing=False)
        for index in range(10):
            network.submit(0, 1, ("s",), ("K", index))
        while network.step():
            pass
        trace = network.trace
        assert not trace.enabled
        assert trace.messages_sent == 0
        assert trace.messages_delivered == 0
        assert trace.events == []
        assert network.step_count == 10  # delivery itself still happened

    def test_disabled_trace_preserves_protocol_outputs(self):
        def run(tracing):
            sim = Simulation(
                params=ProtocolParams.for_parties(7),
                seed=3,
                tracing=tracing,
            )
            return sim.run(("weak_coin",), WeakCommonCoin.factory()).outputs

        assert run(True) == run(False)

    def test_enabled_is_default_and_counts(self):
        network = Network(ProtocolParams.for_parties(4), seed=0)
        network.submit(0, 1, ("s",), ("K",))
        assert network.trace.enabled
        assert network.trace.messages_sent == 1
