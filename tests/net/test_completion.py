"""Completion-counter equivalence: the O(1) stop condition vs the legacy scan.

The network's counter-backed ``all_honest_finished`` / ``run_until_complete``
must agree with the seed's per-process scan (kept as
``scan_all_honest_finished``) at *every point* of *every* execution, and the
fast fused delivery loop must reproduce the legacy polling loop's traces,
outputs and delivery order byte-identically per seed -- the campaign runner's
parallel == sequential guarantee depends on it.
"""

from __future__ import annotations

import gc

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary.behaviors import (
    CrashBehavior,
    HonestButMutatingBehavior,
    SilentAfterBehavior,
)
from repro.core import api
from repro.core.config import ProtocolParams
from repro.net.network import Network
from repro.net.runtime import Simulation
from repro.net.scheduler import FIFOScheduler, RandomScheduler, force_scan
from repro.protocols.aba import BinaryAgreement, OracleCoinSource
from repro.protocols.acast import ACast
from repro.protocols.coinflip import CoinFlip

SLOW = dict(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _root_factories(seed):
    """(name, session, factory, inputs) for every protocol family under test."""
    return [
        ("acast", ("acast",), ACast.factory(0), {0: {"value": "payload"}}),
        (
            "aba",
            ("aba",),
            BinaryAgreement.factory(OracleCoinSource(seed)),
            {pid: {"value": pid % 2} for pid in range(4)},
        ),
        (
            "coinflip",
            ("coinflip",),
            CoinFlip.factory(rounds_override=1, coin_source=OracleCoinSource(seed)),
            None,
        ),
        (
            "svss",
            ("svss_harness",),
            api.svss_harness_factory(0),
            {0: {"value": 123456}},
        ),
    ]


def _behavior_menu():
    return [
        ("honest", None),
        ("crash", CrashBehavior.factory()),
        ("silent_after", SilentAfterBehavior.factory(25)),
        (
            "mutating",
            HonestButMutatingBehavior.factory(
                lambda receiver, session, payload: (receiver, session, payload)
            ),
        ),
    ]


def _run_pair(session, factory, inputs, seed, corruption=None, scheduler_cls=None):
    """Run the same execution on the fast loop and the legacy polling loop.

    Legacy = ``force_scan`` delivery + per-delivery ``scan_all_honest_finished``
    polling through the generic ``run(until=...)`` path: exactly the seed's
    event-loop semantics on the current substrate.  Full event streams are
    retained for byte-level comparison.
    """
    results = []
    for legacy in (False, True):
        base = scheduler_cls() if scheduler_cls else RandomScheduler()
        sim = Simulation(
            ProtocolParams.for_parties(4),
            scheduler=force_scan(base) if legacy else base,
            seed=seed,
            keep_events=True,
        )
        if corruption is not None:
            sim.corrupt(3, corruption)
        until = None
        if legacy:
            session_t = tuple(session)
            until = lambda net: net.scan_all_honest_finished(session_t)  # noqa: E731
        results.append(sim.run(session, factory, inputs=inputs, until=until))
    return results


def _events(result):
    """Normalise the trace event stream to comparable plain tuples."""
    normalised = []
    for event in result.network.trace.events:
        detail = event.detail
        if hasattr(detail, "seq"):  # a message (fast or legacy class)
            detail = (detail.sender, detail.receiver, detail.session, detail.payload, detail.seq)
        normalised.append((event.step, event.kind, event.party, repr(detail)))
    return normalised


class TestFastLoopEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_traces_outputs_and_order_identical_per_seed(self, seed):
        for name, session, factory, inputs in _root_factories(seed):
            fast, legacy = _run_pair(session, factory, inputs, seed)
            assert fast.outputs == legacy.outputs, name
            assert fast.steps == legacy.steps, name
            assert _events(fast) == _events(legacy), name
            assert fast.trace.summary() == legacy.trace.summary(), name

    @pytest.mark.parametrize("behavior_name,corruption", _behavior_menu())
    def test_equivalence_under_adversaries(self, behavior_name, corruption):
        for name, session, factory, inputs in _root_factories(3):
            fast, legacy = _run_pair(session, factory, inputs, 3, corruption=corruption)
            assert fast.outputs == legacy.outputs, (name, behavior_name)
            assert fast.steps == legacy.steps, (name, behavior_name)
            assert _events(fast) == _events(legacy), (name, behavior_name)

    def test_equivalence_under_fifo_scheduler(self):
        for name, session, factory, inputs in _root_factories(5):
            fast, legacy = _run_pair(
                session, factory, inputs, 5, scheduler_cls=FIFOScheduler
            )
            assert fast.outputs == legacy.outputs, name
            assert _events(fast) == _events(legacy), name

    @settings(**SLOW)
    @given(
        seed=st.integers(0, 10_000),
        crash=st.one_of(st.none(), st.integers(0, 3)),
        which=st.integers(0, 3),
    )
    def test_equivalence_property(self, seed, crash, which):
        name, session, factory, inputs = _root_factories(seed)[which]
        corruption = CrashBehavior.factory() if crash is not None else None
        fast, legacy = _run_pair(session, factory, inputs, seed, corruption=corruption)
        assert fast.outputs == legacy.outputs, name
        assert fast.steps == legacy.steps, name
        assert _events(fast) == _events(legacy), name


class TestCounterAgreesWithScanEverywhere:
    @pytest.mark.parametrize("seed", [0, 2, 9])
    def test_counter_equals_scan_before_every_delivery(self, seed):
        for name, session, factory, inputs in _root_factories(seed):
            session_t = tuple(session)
            checked = {"count": 0}

            def invariant(net):
                scan = net.scan_all_honest_finished(session_t)
                assert net.all_honest_finished(session_t) == scan, name
                checked["count"] += 1
                return scan

            sim = Simulation(ProtocolParams.for_parties(4), seed=seed)
            sim.run(session, factory, inputs=inputs, until=invariant)
            assert checked["count"] > 1

    def test_counter_equals_scan_with_corruptions(self):
        session_t = ("aba",)

        def invariant(net):
            scan = net.scan_all_honest_finished(session_t)
            assert net.all_honest_finished(session_t) == scan
            return scan

        sim = Simulation(ProtocolParams.for_parties(4), seed=4)
        sim.corrupt(2, SilentAfterBehavior.factory(10))
        sim.run(
            session_t,
            BinaryAgreement.factory(OracleCoinSource(4)),
            inputs={pid: {"value": 1} for pid in range(4)},
            until=invariant,
        )


class TestCompletionBookkeeping:
    def _echo_network(self):
        from tests.net.test_network_process import echo_factory

        network = Network(ProtocolParams.for_parties(4), seed=0)
        return network, echo_factory

    def test_completion_before_any_delivery_stops_immediately(self):
        # Protocols completing inside on_start (zero deliveries needed) must
        # stop run_until_complete before the first delivery, like the legacy
        # stop condition checked before every step.
        from repro.net.protocol import Protocol

        class Instant(Protocol):
            def on_start(self, **_):
                self.broadcast("NOP")
                self.complete(1)

        network = Network(ProtocolParams.for_parties(4), seed=0)
        for process in network.processes:
            process.create_protocol(("i",), lambda p, s: Instant(p, s)).start()
        delivered = network.run_until_complete(("i",))
        assert delivered == 0
        assert network.pending  # the NOP broadcasts are still in flight

    def test_corrupted_completions_do_not_count(self):
        network, echo_factory = self._echo_network()
        network.processes[3].corrupt(CrashBehavior.factory()(network.processes[3]))
        for process in network.processes[:3]:
            process.create_protocol(("echo",), echo_factory()).start(
                ping_target=(process.pid + 1) % 3
            )
        network.run_to_quiescence()
        assert network.all_honest_finished(("echo",))
        assert network.scan_all_honest_finished(("echo",))

    def test_corruption_after_completion_retracts_count(self):
        network, echo_factory = self._echo_network()
        for process in network.processes:
            process.create_protocol(("echo",), echo_factory()).start(
                ping_target=(process.pid + 1) % 4
            )
        network.run_to_quiescence()
        assert network.all_honest_finished(("echo",))
        # Corrupting a finished party retracts its completion; with 3 honest
        # parties left, all of them already finished, so both stay True and
        # keep agreeing.
        network.processes[0].corrupt(CrashBehavior.factory()(network.processes[0]))
        assert network.all_honest_finished(("echo",)) == network.scan_all_honest_finished(
            ("echo",)
        )
        # An unfinished session observed by both: a fresh session nobody ran.
        assert not network.all_honest_finished(("nope",))
        assert not network.scan_all_honest_finished(("nope",))

    def test_mid_run_corruption_of_last_straggler_stops_the_run(self):
        # Adaptive corruption: parties 0-2 complete, the only straggler is
        # corrupted *during* the run.  The lowered honest count makes the
        # stop condition hold without a new completion; run_until_complete
        # must notice, exactly like the legacy per-delivery scan.
        from repro.net.protocol import Protocol

        network, echo_factory = self._echo_network()

        class Corrupter(Protocol):
            """Completes instantly, then corrupts party 3 on a later message."""

            def on_start(self, **_):
                self.send(self.pid, "TICK")
                self.complete("done")

            def on_message(self, sender, payload):
                target = self.process.network.processes[3]
                if not target.is_corrupted:
                    target.corrupt(CrashBehavior.factory()(target))

        for process in network.processes[:3]:
            process.create_protocol(("p",), lambda p, s: Corrupter(p, s)).start()
        # Party 3 never even starts the session; once corrupted mid-run the
        # remaining honest parties (all finished) satisfy the stop condition.
        delivered = network.run_until_complete(("p",))
        assert network.all_honest_finished(("p",))
        assert network.scan_all_honest_finished(("p",))
        assert delivered >= 1

    def test_deadlock_still_detected(self):
        from repro.errors import SimulationError

        network, echo_factory = self._echo_network()
        network.processes[0].create_protocol(("echo",), echo_factory()).start()
        with pytest.raises(SimulationError):
            network.run_until_complete(("echo",))

    def test_max_steps_still_enforced(self):
        from repro.errors import SimulationError
        from repro.net.protocol import Protocol

        class Chatter(Protocol):
            def on_start(self, **_):
                self.send(self.pid, "LOOP")

            def on_message(self, sender, payload):
                self.send(self.pid, "LOOP")

        network = Network(ProtocolParams.for_parties(4), seed=0)
        network.processes[0].create_protocol(("chat",), lambda p, s: Chatter(p, s)).start()
        with pytest.raises(SimulationError):
            network.run_until_complete(("chat",), max_steps=50)


class TestSessionInterning:
    def test_sessions_are_shared_network_wide(self):
        result = api.run_svss(4, 777, seed=1)
        network = result.network
        a = network.processes[0].protocol(("svss_harness", "share"))
        b = network.processes[1].protocol(("svss_harness", "share"))
        assert a is not None and b is not None
        assert a.session is b.session  # one interned tuple object

    def test_intern_session_returns_canonical_tuple(self):
        network = Network(ProtocolParams.for_parties(4), seed=0)
        first = network.intern_session(("s", 1))
        second = network.intern_session(("s", 1))
        assert first is second
        assert network.intern_session(["s", 1]) is first


class TestGcPause:
    def test_gc_state_restored_after_run(self):
        assert gc.isenabled()
        api.run_acast(4, "x", seed=0)
        assert gc.isenabled()

    def test_gc_left_alone_when_disabled_by_caller(self):
        gc.disable()
        try:
            api.run_acast(4, "x", seed=0)
            assert not gc.isenabled()
        finally:
            gc.enable()


class TestResultDistinctnessCache:
    def test_agreed_value_and_disagreement_cached(self):
        result = api.run_acast(4, "v", seed=0)
        assert result.agreed_value == "v"
        cached = result._distinct_outputs
        assert result._distinct_outputs is cached  # computed once
        assert result.disagreement is False
