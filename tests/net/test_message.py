"""Tests for the message model and session helpers."""

from __future__ import annotations

from repro.net.message import Message, session_child, session_is_descendant


class TestMessage:
    def test_kind_is_first_payload_element(self):
        message = Message(0, 1, ("acast",), ("ECHO", 42), seq=3)
        assert message.kind == "ECHO"

    def test_kind_of_empty_payload(self):
        assert Message(0, 1, ("acast",), ()).kind is None

    def test_root_is_first_session_component(self):
        assert Message(0, 1, ("fba", "cs", "ba", 2), ("AUX",)).root == "fba"

    def test_root_of_empty_session(self):
        assert Message(0, 1, (), ("X",)).root is None

    def test_slotted_no_instance_dict(self):
        # Messages are the most-allocated object in a run: the class must
        # stay __slots__-only (no per-instance __dict__) and reject
        # attributes outside the declared layout.
        import pytest

        message = Message(0, 1, ("acast",), ("ECHO",))
        assert not hasattr(message, "__dict__")
        with pytest.raises(AttributeError):
            message.extra = 1  # type: ignore[attr-defined]

    def test_kind_and_root_are_precomputed_attributes(self):
        # kind/root are plain attributes (read per send by tracing), not
        # properties recomputed on every access.
        assert "kind" in Message.__slots__
        assert "root" in Message.__slots__

    def test_value_equality_and_hash(self):
        a = Message(0, 1, ("acast",), ("ECHO", 42), seq=3)
        b = Message(0, 1, ("acast",), ("ECHO", 42), seq=3)
        c = Message(0, 1, ("acast",), ("ECHO", 42), seq=4)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not-a-message"


class TestSessionHelpers:
    def test_session_child_appends(self):
        assert session_child(("fba",), "cs") == ("fba", "cs")
        assert session_child(("fba",), "ba", 3) == ("fba", "ba", 3)

    def test_session_child_of_empty(self):
        assert session_child((), "root") == ("root",)

    def test_descendant_includes_self(self):
        assert session_is_descendant(("a", "b"), ("a", "b"))

    def test_descendant_strict(self):
        assert session_is_descendant(("a", "b", "c"), ("a",))
        assert not session_is_descendant(("a",), ("a", "b"))
        assert not session_is_descendant(("x", "b"), ("a",))
