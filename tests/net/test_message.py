"""Tests for the message model and session helpers."""

from __future__ import annotations

from repro.net.message import Message, session_child, session_is_descendant


class TestMessage:
    def test_kind_is_first_payload_element(self):
        message = Message(0, 1, ("acast",), ("ECHO", 42), seq=3)
        assert message.kind == "ECHO"

    def test_kind_of_empty_payload(self):
        assert Message(0, 1, ("acast",), ()).kind is None

    def test_root_is_first_session_component(self):
        assert Message(0, 1, ("fba", "cs", "ba", 2), ("AUX",)).root == "fba"

    def test_root_of_empty_session(self):
        assert Message(0, 1, (), ("X",)).root is None

    def test_frozen(self):
        import pytest

        message = Message(0, 1, ("acast",), ("ECHO",))
        with pytest.raises(Exception):
            message.sender = 5  # type: ignore[misc]


class TestSessionHelpers:
    def test_session_child_appends(self):
        assert session_child(("fba",), "cs") == ("fba", "cs")
        assert session_child(("fba",), "ba", 3) == ("fba", "ba", 3)

    def test_session_child_of_empty(self):
        assert session_child((), "root") == ("root",)

    def test_descendant_includes_self(self):
        assert session_is_descendant(("a", "b"), ("a", "b"))

    def test_descendant_strict(self):
        assert session_is_descendant(("a", "b", "c"), ("a",))
        assert not session_is_descendant(("a",), ("a", "b"))
        assert not session_is_descendant(("x", "b"), ("a",))
