"""Tests for the message schedulers (the formalised asynchronous adversary)."""

from __future__ import annotations

import random

import pytest

from repro.errors import SchedulingError
from repro.net.message import Message
from repro.net.scheduler import (
    DelayScheduler,
    FIFOScheduler,
    PartitionScheduler,
    RandomScheduler,
    TargetedScheduler,
    delay_from_parties,
    delay_to_parties,
)


def _msg(sender, receiver, seq, kind="X"):
    return Message(sender, receiver, ("p",), (kind,), seq=seq)


PENDING = [_msg(0, 1, 5), _msg(1, 2, 3), _msg(2, 3, 9), _msg(3, 0, 1)]
RNG = random.Random(0)


class TestFIFO:
    def test_picks_lowest_seq(self):
        scheduler = FIFOScheduler()
        assert scheduler.choose(PENDING, RNG, 0) == 3  # seq=1

    def test_full_drain_is_in_order(self):
        scheduler = FIFOScheduler()
        pending = list(PENDING)
        order = []
        while pending:
            index = scheduler.choose(pending, RNG, 0)
            order.append(pending.pop(index).seq)
        assert order == sorted(order)


class TestRandom:
    def test_always_in_range(self):
        scheduler = RandomScheduler()
        rng = random.Random(1)
        for _ in range(200):
            assert 0 <= scheduler.choose(PENDING, rng, 0) < len(PENDING)

    def test_covers_all_choices(self):
        scheduler = RandomScheduler()
        rng = random.Random(2)
        seen = {scheduler.choose(PENDING, rng, 0) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestValidation:
    def test_validate_rejects_out_of_range(self):
        scheduler = FIFOScheduler()
        with pytest.raises(SchedulingError):
            scheduler.validate(7, PENDING)
        with pytest.raises(SchedulingError):
            scheduler.validate(-1, PENDING)

    def test_validate_accepts_in_range(self):
        assert FIFOScheduler().validate(2, PENDING) == 2


class TestDelay:
    def test_starves_matching_messages(self):
        scheduler = DelayScheduler(lambda m: m.sender == 0, base=FIFOScheduler())
        choice = scheduler.choose(PENDING, RNG, 0)
        assert PENDING[choice].sender != 0

    def test_delivers_when_only_matching_remain(self):
        scheduler = DelayScheduler(lambda m: True, base=FIFOScheduler())
        assert scheduler.choose(PENDING, RNG, 0) == 3

    def test_expiry_releases_messages(self):
        scheduler = DelayScheduler(
            lambda m: m.sender == 3, base=FIFOScheduler(), max_delay_steps=10
        )
        before = scheduler.choose(PENDING, RNG, step=0)
        after = scheduler.choose(PENDING, RNG, step=10)
        assert PENDING[before].sender != 3
        assert PENDING[after].seq == 1  # FIFO order once the delay expires

    def test_delay_from_parties_helper(self):
        scheduler = delay_from_parties([0, 1], base=FIFOScheduler())
        assert PENDING[scheduler.choose(PENDING, RNG, 0)].sender not in (0, 1)

    def test_delay_to_parties_helper(self):
        scheduler = delay_to_parties([0, 3], base=FIFOScheduler())
        assert PENDING[scheduler.choose(PENDING, RNG, 0)].receiver not in (0, 3)


class TestPartition:
    def test_blocks_cross_partition_traffic(self):
        scheduler = PartitionScheduler([0, 1], [2, 3], duration=100, base=FIFOScheduler())
        chosen = PENDING[scheduler.choose(PENDING, RNG, step=0)]
        inside_a = chosen.sender in (0, 1) and chosen.receiver in (0, 1)
        inside_b = chosen.sender in (2, 3) and chosen.receiver in (2, 3)
        assert inside_a or inside_b

    def test_heals_after_duration(self):
        scheduler = PartitionScheduler([0, 1], [2, 3], duration=5, base=FIFOScheduler())
        assert PENDING[scheduler.choose(PENDING, RNG, step=5)].seq == 1

    def test_cross_only_traffic_still_delivered(self):
        cross_only = [_msg(0, 2, 1), _msg(3, 1, 2)]
        scheduler = PartitionScheduler([0, 1], [2, 3], duration=100, base=FIFOScheduler())
        assert scheduler.choose(cross_only, RNG, 0) in (0, 1)


class TestTargeted:
    def test_priority_ordering(self):
        scheduler = TargetedScheduler(lambda m: m.receiver)
        assert PENDING[scheduler.choose(PENDING, RNG, 0)].receiver == 0

    def test_tie_break_by_seq(self):
        pending = [_msg(0, 1, 9), _msg(2, 1, 2)]
        scheduler = TargetedScheduler(lambda m: 0.0)
        assert scheduler.choose(pending, RNG, 0) == 1
