"""Tests for the network, process and protocol runtime plumbing."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolParams
from repro.errors import ProtocolError, SimulationError
from repro.net.network import Network
from repro.net.protocol import Protocol
from repro.net.scheduler import FIFOScheduler

PARAMS = ProtocolParams.for_parties(4)


class Echo(Protocol):
    """Test protocol: replies PONG to every PING, completes after `goal` pongs."""

    def __init__(self, process, session, goal=1):
        super().__init__(process, session)
        self.goal = goal
        self.pongs = 0
        self.log = []

    def on_start(self, ping_target=None, **_):
        if ping_target is not None:
            self.send(ping_target, "PING")

    def on_message(self, sender, payload):
        self.log.append((sender, payload))
        if payload and payload[0] == "PING":
            self.send(sender, "PONG")
        elif payload and payload[0] == "PONG":
            self.pongs += 1
            if self.pongs >= self.goal and not self.finished:
                self.complete(self.pongs)


def echo_factory(goal=1):
    def build(process, session):
        return Echo(process, session, goal=goal)

    return build


class Parent(Protocol):
    """Test protocol spawning an Echo child and completing with its output."""

    def on_start(self, **_):
        self.spawn("child", echo_factory(), ping_target=(self.pid + 1) % self.n)

    def on_child_complete(self, child):
        self.complete(("child-done", child.output))


class TestNetworkBasics:
    def _network(self, **kwargs):
        return Network(PARAMS, scheduler=FIFOScheduler(), seed=0, **kwargs)

    def test_step_with_no_messages(self):
        assert self._network().step() is False

    def test_submit_to_unknown_party_rejected(self):
        network = self._network()
        with pytest.raises(SimulationError):
            network.submit(0, 9, ("echo",), ("PING",))

    def test_ping_pong_roundtrip(self):
        network = self._network()
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        b = network.processes[1].create_protocol(("echo",), echo_factory())
        a.start(ping_target=1)
        b.start()
        network.run_to_quiescence()
        assert a.finished and a.output == 1
        assert not b.finished

    def test_run_until_condition(self):
        network = self._network()
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        network.processes[1].create_protocol(("echo",), echo_factory()).start()
        a.start(ping_target=1)
        delivered = network.run(until=lambda net: a.finished)
        assert a.finished
        assert delivered >= 2

    def test_run_detects_deadlock(self):
        network = self._network()
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        a.start()  # never pings, never completes
        with pytest.raises(SimulationError):
            network.run(until=lambda net: a.finished)

    def test_run_respects_max_steps(self):
        network = self._network()

        class Chatter(Protocol):
            def on_start(self, **_):
                self.send(self.pid, "LOOP")

            def on_message(self, sender, payload):
                self.send(self.pid, "LOOP")

        network.processes[0].create_protocol(("chat",), lambda p, s: Chatter(p, s)).start()
        with pytest.raises(SimulationError):
            network.run(until=lambda net: False, max_steps=50)

    def test_trace_counts_messages(self):
        network = self._network()
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        network.processes[1].create_protocol(("echo",), echo_factory()).start()
        a.start(ping_target=1)
        network.run_to_quiescence()
        assert network.trace.messages_sent == 2
        assert network.trace.messages_delivered == 2
        assert network.trace.sent_by_kind["PING"] == 1
        assert network.trace.sent_by_kind["PONG"] == 1

    def test_determinism_same_seed(self):
        def run(seed):
            network = Network(PARAMS, seed=seed)
            for process in network.processes:
                process.create_protocol(("echo",), echo_factory(goal=3)).start(
                    ping_target=(process.pid + 1) % 4
                )
            network.run_to_quiescence()
            return [p.protocol(("echo",)).pongs for p in network.processes]

        assert run(7) == run(7)

    def test_honest_outputs_and_all_finished(self):
        network = self._network()
        for process in network.processes:
            process.create_protocol(("echo",), echo_factory()).start(
                ping_target=(process.pid + 1) % 4
            )
        network.run_to_quiescence()
        assert network.all_honest_finished(("echo",))
        assert set(network.honest_outputs(("echo",))) == {0, 1, 2, 3}


class TestBuffering:
    def test_messages_before_creation_are_buffered_and_replayed(self):
        network = Network(PARAMS, scheduler=FIFOScheduler(), seed=0)
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        a.start(ping_target=1)
        network.run_to_quiescence()  # PING delivered, buffered at party 1
        b = network.processes[1].create_protocol(("echo",), echo_factory())
        assert not b.log
        b.start()
        assert b.log  # replayed after start
        network.run_to_quiescence()
        assert a.finished

    def test_messages_before_start_are_buffered(self):
        network = Network(PARAMS, scheduler=FIFOScheduler(), seed=0)
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        b = network.processes[1].create_protocol(("echo",), echo_factory())
        a.start(ping_target=1)
        network.run_to_quiescence()
        assert not b.log
        b.start()
        network.run_to_quiescence()
        assert a.finished


class TestProtocolLifecycle:
    def test_double_start_rejected(self):
        network = Network(PARAMS, seed=0)
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        a.start()
        with pytest.raises(ProtocolError):
            a.start()

    def test_complete_is_idempotent(self):
        network = Network(PARAMS, seed=0)
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        a.start()
        a.complete("first")
        a.complete("second")
        assert a.output == "first"

    def test_completion_recorded_in_trace(self):
        network = Network(PARAMS, seed=0)
        a = network.processes[0].create_protocol(("echo",), echo_factory())
        a.start()
        a.complete(42)
        assert network.trace.completed_value(0, ("echo",)) == 42

    def test_spawn_notifies_parent(self):
        network = Network(PARAMS, scheduler=FIFOScheduler(), seed=0)
        for process in network.processes:
            process.create_protocol(("parent",), lambda p, s: Parent(p, s)).start()
        network.run_to_quiescence()
        for process in network.processes:
            parent = process.protocol(("parent",))
            assert parent.finished
            assert parent.output[0] == "child-done"

    def test_create_protocol_is_idempotent(self):
        network = Network(PARAMS, seed=0)
        first = network.processes[0].create_protocol(("echo",), echo_factory())
        second = network.processes[0].create_protocol(("echo",), echo_factory())
        assert first is second

    def test_broadcast_includes_self(self):
        network = Network(PARAMS, scheduler=FIFOScheduler(), seed=0)

        class Shout(Protocol):
            def on_start(self, **_):
                self.broadcast("HELLO")

        network.processes[0].create_protocol(("shout",), lambda p, s: Shout(p, s)).start()
        assert network.trace.messages_sent == 4
        receivers = {m.receiver for m in network.pending}
        assert receivers == {0, 1, 2, 3}


class TestShunning:
    def test_shun_drops_only_future_sessions(self):
        network = Network(PARAMS, scheduler=FIFOScheduler(), seed=0)
        p0 = network.processes[0]
        old = p0.create_protocol(("old",), echo_factory(goal=99)).start()
        p0.shun(1, ("old",))
        new = p0.create_protocol(("new",), echo_factory(goal=99)).start()
        # Message from party 1 to the pre-existing session is accepted.
        network.submit(1, 0, ("old",), ("PING",))
        # Message from party 1 to the newly created session is dropped.
        network.submit(1, 0, ("new",), ("PING",))
        network.run_to_quiescence()
        assert old.log
        assert not new.log
        assert network.trace.messages_dropped == 1

    def test_shun_is_recorded_once(self):
        network = Network(PARAMS, seed=0)
        p0 = network.processes[0]
        p0.shun(2, ("s",))
        p0.shun(2, ("s",))
        assert network.trace.total_shun_events() == 1
        assert p0.is_shunning(2)

    def test_self_shun_ignored(self):
        network = Network(PARAMS, seed=0)
        network.processes[0].shun(0, ("s",))
        assert not network.processes[0].is_shunning(0)
        assert network.trace.total_shun_events() == 0


class TestTrace:
    def test_summary_keys(self):
        network = Network(PARAMS, seed=0)
        summary = network.trace.summary()
        assert {"messages_sent", "messages_delivered", "completions", "shun_events"} <= set(
            summary
        )

    def test_events_kept_only_when_requested(self):
        quiet = Network(PARAMS, seed=0)
        quiet.submit(0, 1, ("s",), ("X",))
        assert quiet.trace.events == []
        verbose = Network(PARAMS, seed=0, keep_events=True)
        verbose.submit(0, 1, ("s",), ("X",))
        assert len(verbose.trace.events) == 1
