"""Tests for ScenarioSpec serialization, validation and the named library."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.spec import BehaviorSpec, SchedulerSpec
from repro.scenarios.library import SCENARIOS, get_scenario, register_scenario, scenario_names
from repro.scenarios.presets import PRESETS, get_preset
from repro.scenarios.spec import (
    AdaptiveRule,
    CorruptionPlan,
    FaultEvent,
    ScenarioSpec,
    StaticCorruption,
)


def _full_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="kitchen-sink",
        description="every field populated",
        protocol="weak_coin",
        params={"inputs": "alternating"},
        scale="n16",
        corruption=CorruptionPlan(
            budget=2,
            static=[
                StaticCorruption(select={"last": 1}, behavior=BehaviorSpec("crash")),
            ],
            adaptive=[
                AdaptiveRule(
                    on="session_open",
                    pattern=["...", "share", {"pid": True}],
                    behavior=BehaviorSpec("hard_crash"),
                    max_firings=1,
                ),
                AdaptiveRule(
                    on="step",
                    at_step=40,
                    target={"first": 1},
                    behavior=BehaviorSpec("split_equivocator", {"offset": 2}),
                ),
            ],
        ),
        timeline=[
            FaultEvent(transition="silence", select={"half": "high"}, at_step=10),
            FaultEvent(
                transition="recover",
                select={"half": "high"},
                on={"event": "complete", "pattern": ["...", "share", {"pid": True}]},
            ),
        ],
        scheduler=SchedulerSpec("rushing", {"coalition": {"last_faulty": True}}),
    )


class TestScenarioSpec:
    def test_round_trip_is_lossless(self):
        spec = _full_spec()
        spec.validate()
        same = ScenarioSpec.from_json(spec.to_json())
        assert same.to_dict() == spec.to_dict()
        assert same == spec

    def test_from_dict_coerces_nested_mappings(self):
        spec = ScenarioSpec.from_dict(_full_spec().to_dict())
        assert isinstance(spec.corruption, CorruptionPlan)
        assert isinstance(spec.corruption.static[0].behavior, BehaviorSpec)
        assert isinstance(spec.timeline[0], FaultEvent)
        assert isinstance(spec.scheduler, SchedulerSpec)

    def test_unknown_scale_rejected(self):
        spec = _full_spec()
        spec.scale = "n1024"
        with pytest.raises(ExperimentError):
            spec.validate()

    def test_adaptive_rule_validation(self):
        # Phase rules need a pattern.
        with pytest.raises(ExperimentError):
            AdaptiveRule(on="session_open", behavior=BehaviorSpec("crash")).validate()
        # "captured" target needs a pid capture in the pattern.
        with pytest.raises(ExperimentError):
            AdaptiveRule(
                on="complete", pattern=["...", "share"], behavior=BehaviorSpec("crash")
            ).validate()
        # Step rules need at_step and a concrete selector target.
        with pytest.raises(ExperimentError):
            AdaptiveRule(on="step", behavior=BehaviorSpec("crash")).validate()
        with pytest.raises(ExperimentError):
            AdaptiveRule(
                on="step", at_step=5, target="captured", behavior=BehaviorSpec("crash")
            ).validate()
        with pytest.raises(ExperimentError):
            AdaptiveRule(
                on="sunrise", pattern=["*"], behavior=BehaviorSpec("crash")
            ).validate()

    def test_fault_event_validation(self):
        with pytest.raises(ExperimentError):
            FaultEvent(transition="explode", select=0, at_step=1).validate()
        # Exactly one trigger.
        with pytest.raises(ExperimentError):
            FaultEvent(transition="crash", select=0).validate()
        with pytest.raises(ExperimentError):
            FaultEvent(
                transition="crash",
                select=0,
                at_step=1,
                on={"event": "complete", "pattern": ["*"]},
            ).validate()


class TestPresets:
    def test_presets_cover_the_advertised_scales(self):
        assert sorted(PRESETS) == ["n16", "n32", "n4", "n64"]
        for preset in PRESETS.values():
            assert preset.prime > preset.n
            assert preset.t == (preset.n - 1) // 3

    def test_unknown_preset(self):
        with pytest.raises(ExperimentError):
            get_preset("n9000")


class TestLibrary:
    def test_library_has_at_least_eight_scenarios(self):
        assert len(scenario_names()) >= 8

    def test_every_entry_validates_and_round_trips(self):
        for name in scenario_names():
            spec = get_scenario(name)
            spec.validate()
            assert ScenarioSpec.from_json(spec.to_json()).to_dict() == spec.to_dict()
            assert spec.description, f"{name} needs a description"

    def test_get_scenario_returns_a_private_copy(self):
        spec = get_scenario("dealer-ambush")
        spec.protocol = "coinflip"
        assert SCENARIOS["dealer-ambush"].protocol == "weak_coin"

    def test_unknown_name(self):
        with pytest.raises(ExperimentError):
            get_scenario("no-such-attack")

    def test_register_rejects_duplicates_and_invalid_specs(self):
        with pytest.raises(ExperimentError):
            register_scenario(get_scenario("dealer-ambush"))
        bad = ScenarioSpec(name="", protocol="weak_coin")
        with pytest.raises(ExperimentError):
            register_scenario(bad)

    def test_register_replace(self):
        original = SCENARIOS["dealer-ambush"]
        try:
            replacement = get_scenario("dealer-ambush")
            replacement.description = "patched"
            register_scenario(replacement, replace=True)
            assert SCENARIOS["dealer-ambush"].description == "patched"
        finally:
            SCENARIOS["dealer-ambush"] = original
