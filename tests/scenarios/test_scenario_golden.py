"""Byte-identical regression fingerprints for adversarial scenario trials.

Extends ``tests/golden_trials.json`` with restart, tamper and
reactive-scheduler scenarios at n=16 and n=32.  Each entry is
``[steps, sorted honest outputs, messages sent, shun events]``, read off
:meth:`~repro.net.runtime.SimulationResult.message_stats` so the same
fingerprint is checkable with tracing on *and* off -- locking in both the
scenario semantics and the traced==untraced determinism guarantee.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios import run_scenario

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "golden_trials.json").read_text()
)

SCENARIOS = ("restart-storm", "tamper-on-share", "reactive-rush")


def _fingerprint(result):
    stats = result.message_stats
    return [
        result.steps,
        [[pid, value] for pid, value in sorted(result.outputs.items())],
        stats["messages_sent"],
        stats["shun_events"],
    ]


@pytest.mark.parametrize("name", SCENARIOS)
def test_scenario_golden_n16(name):
    key = f"scenario_{name}_n16_s0"
    assert _fingerprint(run_scenario(name, n=16, seed=0, tracing=False)) == GOLDEN[key]
    assert _fingerprint(run_scenario(name, n=16, seed=0, tracing=True)) == GOLDEN[key]


@pytest.mark.parametrize("name", SCENARIOS)
def test_scenario_golden_n32_untraced(name):
    key = f"scenario_{name}_n32_s0"
    assert _fingerprint(run_scenario(name, n=32, seed=0, tracing=False)) == GOLDEN[key]


def test_scenario_golden_n32_traced():
    # One traced n=32 trial locks the heavyweight mode too without tripling
    # the suite's runtime.
    key = "scenario_restart-storm_n32_s0"
    assert _fingerprint(run_scenario("restart-storm", n=32, seed=0, tracing=True)) == GOLDEN[key]
