"""Tests for the closed adversary loop: reactive scheduling, restart/tamper
transitions, and the safety-invariant harness."""

from __future__ import annotations

import random

import pytest

from repro.errors import ExperimentError
from repro.experiments.spec import BehaviorSpec, ExperimentSpec, SchedulerSpec
from repro.net.message import Message
from repro.net.queues import ScanQueue
from repro.scenarios import run_scenario
from repro.scenarios.invariants import (
    InvariantViolation,
    assert_invariants,
    check_result,
    check_scenario_result,
    default_step_bound,
)
from repro.scenarios.library import get_scenario
from repro.scenarios.schedulers import ReactiveScheduler
from repro.scenarios.spec import (
    AdaptiveRule,
    CorruptionPlan,
    FaultEvent,
    ScenarioSpec,
    validate_scheduler_actions,
    validate_tamper,
)


def _fingerprint(result):
    return (
        result.steps,
        tuple(sorted(result.outputs.items())),
        result.message_stats["messages_sent"],
    )


# ----------------------------------------------------------------------
# Reactive scheduler: the indexed queue must be byte-identical to the
# reference scan in ReactiveScheduler.choose.
# ----------------------------------------------------------------------
class TestReactiveQueueEquivalence:
    @staticmethod
    def _message(sender, kind, seq):
        return Message(sender, (sender + 1) % 8, ("weak_coin",), (kind, seq), seq)

    def _drive(self, queue_factory, seed):
        """Push/pop/apply-actions through a queue; return the delivery order."""
        scheduler = ReactiveScheduler()
        queue = queue_factory(scheduler)
        ops = random.Random(1234)
        rng = random.Random(seed)
        delivered = []
        seq = 0
        step = 0
        for tick in range(400):
            for _ in range(ops.randrange(4)):
                kind = ("POINT", "READY", "RECROW")[ops.randrange(3)]
                queue.push(self._message(ops.randrange(8), kind, seq))
                seq += 1
            if tick == 60:
                scheduler.apply_action(
                    {"op": "boost", "predicate": {"senders": [1, 2]}}, 8, step
                )
            if tick == 120:
                scheduler.apply_action(
                    {"op": "delay", "predicate": {"kinds": ["READY"]}, "expires": 80},
                    8,
                    step,
                )
            if tick == 200:
                # Duplicate predicate: refreshes the expiry, not a new rule.
                scheduler.apply_action(
                    {"op": "delay", "predicate": {"kinds": ["READY"]}, "expires": 40},
                    8,
                    step,
                )
            if tick == 300:
                scheduler.apply_action({"op": "clear"}, 8, step)
            while len(queue) and ops.randrange(3):
                delivered.append(queue.pop(rng, step))
                step += 1
        while len(queue):
            delivered.append(queue.pop(rng, step))
            step += 1
        return [(m.sender, m.kind, m.seq) for m in delivered]

    def test_indexed_queue_matches_reference_scan(self):
        for seed in range(5):
            indexed = self._drive(lambda s: s.make_queue(), seed)
            scanned = self._drive(ScanQueue, seed)
            assert indexed == scanned

    def test_scenario_trial_matches_reference_scan(self, monkeypatch):
        baseline = {
            name: _fingerprint(run_scenario(name, n=8, seed=3, tracing=False))
            for name in ("reactive-rush", "reactive-starvation")
        }
        monkeypatch.setattr(
            ReactiveScheduler, "make_queue", lambda self: ScanQueue(self)
        )
        for name, expected in baseline.items():
            assert _fingerprint(run_scenario(name, n=8, seed=3, tracing=False)) == expected

    def test_traced_equals_untraced(self):
        for seed in (0, 5):
            a = _fingerprint(run_scenario("reactive-rush", n=8, seed=seed, tracing=True))
            b = _fingerprint(run_scenario("reactive-rush", n=8, seed=seed, tracing=False))
            assert a == b

    def test_expired_rules_revert_to_uniform(self):
        scheduler = ReactiveScheduler()
        scheduler.apply_action(
            {"op": "boost", "predicate": {"senders": [0]}, "expires": 10}, 4, 0
        )
        assert scheduler.rank(self._message(0, "POINT", 0)) == 0
        scheduler.expire(10)
        assert not scheduler._boosts
        assert scheduler.rank(self._message(0, "POINT", 0)) == 1
        assert scheduler._next_expiry is None

    def test_duplicate_rule_refreshes_without_version_bump(self):
        scheduler = ReactiveScheduler()
        action = {"op": "boost", "predicate": {"senders": [3]}, "expires": 50}
        assert scheduler.apply_action(action, 8, 0) is not None
        version = scheduler.rules_version
        assert scheduler.apply_action(action, 8, 20) is None
        assert scheduler.rules_version == version
        assert scheduler._next_expiry == 70


# ----------------------------------------------------------------------
# Spec round-trips and validation for the new transitions.
# ----------------------------------------------------------------------
class TestRobustnessSpec:
    def _spec(self):
        return ScenarioSpec(
            name="robustness-sink",
            description="restart + tamper + reactive actions",
            protocol="weak_coin",
            params={"inputs": "alternating"},
            corruption=CorruptionPlan(
                budget=2,
                adaptive=[
                    AdaptiveRule(
                        on="complete",
                        pattern=["...", "share", {"pid": True}],
                        scheduler_actions=[
                            {"op": "delay", "predicate": {"senders": "event"}, "expires": 100}
                        ],
                    )
                ],
            ),
            timeline=[
                FaultEvent(transition="crash", select={"last": 1}, at_step=20),
                FaultEvent(transition="restart", select={"last": 1}, at_step=200),
                FaultEvent(
                    transition="tamper",
                    select={"first": 1},
                    at_step=30,
                    tamper={"kinds": ["POINT"], "offset": 5, "drop_fraction": 0.25},
                ),
                FaultEvent(
                    transition="reprioritize",
                    select=[],
                    on={"event": "complete", "pattern": ["...", "share", {"pid": True}], "count": 3},
                    scheduler_actions=[{"op": "boost", "predicate": {"kinds": ["READY"]}}],
                ),
            ],
            scheduler=SchedulerSpec("reactive"),
        )

    def test_round_trip_is_lossless(self):
        spec = self._spec()
        spec.validate()
        same = ScenarioSpec.from_json(spec.to_json())
        assert same.to_dict() == spec.to_dict()
        assert same == spec

    def test_reprioritize_requires_scheduler_actions(self):
        event = FaultEvent(transition="reprioritize", select=[], at_step=5)
        with pytest.raises(ExperimentError, match="needs scheduler_actions"):
            event.validate()

    def test_tamper_requires_tamper_spec(self):
        event = FaultEvent(transition="tamper", select={"first": 1}, at_step=5)
        with pytest.raises(ExperimentError, match="needs a tamper spec"):
            event.validate()

    def test_tamper_spec_only_on_tamper_transitions(self):
        event = FaultEvent(
            transition="crash", select={"first": 1}, at_step=5, tamper={"offset": 1}
        )
        with pytest.raises(ExperimentError, match="only valid"):
            event.validate()

    def test_scheduler_actions_require_a_scheduler(self):
        spec = self._spec()
        spec.scheduler = None
        with pytest.raises(ExperimentError, match='use the "reactive" scheduler'):
            spec.validate()

    def test_validate_tamper_rejects_bad_specs(self):
        with pytest.raises(ExperimentError, match="at least one mutation"):
            validate_tamper({"kinds": ["POINT"]})
        with pytest.raises(ExperimentError, match="unknown tamper keys"):
            validate_tamper({"offset": 1, "bogus": True})
        with pytest.raises(ExperimentError, match="drop_fraction"):
            validate_tamper({"drop_fraction": 1.5})
        with pytest.raises(ExperimentError, match="offset must be non-zero"):
            validate_tamper({"offset": 0})
        with pytest.raises(ExperimentError, match="rewrite_kind"):
            validate_tamper({"rewrite_kind": ""})

    def test_validate_scheduler_actions_rejects_bad_ops(self):
        with pytest.raises(ExperimentError, match="non-empty list"):
            validate_scheduler_actions([], has_event_pid=True)
        with pytest.raises(ExperimentError, match="op must be one of"):
            validate_scheduler_actions([{"op": "shuffle"}], has_event_pid=True)


# ----------------------------------------------------------------------
# Restart / recover / tamper engine semantics.
# ----------------------------------------------------------------------
class TestRestartSemantics:
    def _actions(self, result, action):
        director = result.network.director
        return [entry for entry in director.actions if entry[1] == action]

    def test_restart_keeps_party_corrupted_for_accounting(self):
        spec = ScenarioSpec(
            name="one-restart",
            protocol="weak_coin",
            timeline=[
                FaultEvent(transition="crash", select={"last": 1}, at_step=15),
                FaultEvent(transition="restart", select={"last": 1}, at_step=60),
            ],
        )
        result = run_scenario(spec, n=4, seed=0, tracing=True)
        restarts = self._actions(result, "restart")
        assert restarts
        pid = restarts[0][2]
        process = result.network.processes[pid]
        assert process.ever_corrupted
        assert not process.is_corrupted  # running honest code again
        assert "no budget refund" in restarts[0][3]

    def test_restart_storm_honest_parties_terminate(self):
        result = run_scenario("restart-storm", n=8, seed=0, tracing=True)
        assert self._actions(result, "restart")
        honest = [p.pid for p in result.network.processes if not p.ever_corrupted]
        assert honest and all(pid in result.outputs for pid in honest)

    def test_restarted_party_recorrupts_for_free(self):
        # crash-recover-crash re-crashes the same party after its restart;
        # with budget t the second corruption must not be budget-blocked.
        result = run_scenario("crash-recover-crash", n=8, seed=0, tracing=True)
        corrupts = self._actions(result, "corrupt")
        restarts = self._actions(result, "restart")
        assert restarts
        assert not self._actions(result, "budget-exhausted")
        pid = restarts[0][2]
        assert sum(1 for entry in corrupts if entry[2] == pid) == 2

    def test_recover_skipped_is_audited(self):
        spec = ScenarioSpec(
            name="recover-noop",
            protocol="weak_coin",
            timeline=[FaultEvent(transition="recover", select={"first": 1}, at_step=5)],
        )
        result = run_scenario(spec, n=4, seed=0, tracing=True)
        assert self._actions(result, "recover-skipped")

    def test_silence_skipped_is_audited(self):
        spec = ScenarioSpec(
            name="double-silence",
            protocol="weak_coin",
            timeline=[
                FaultEvent(transition="silence", select={"first": 1}, at_step=5),
                FaultEvent(transition="silence", select={"first": 1}, at_step=10),
            ],
        )
        result = run_scenario(spec, n=4, seed=0, tracing=True)
        assert self._actions(result, "silence")
        assert self._actions(result, "silence-skipped")

    def test_restart_skipped_on_honest_party(self):
        spec = ScenarioSpec(
            name="restart-noop",
            protocol="weak_coin",
            timeline=[FaultEvent(transition="restart", select={"first": 1}, at_step=5)],
        )
        result = run_scenario(spec, n=4, seed=0, tracing=True)
        assert self._actions(result, "restart-skipped")

    def test_tamper_audits_and_spends_budget(self):
        result = run_scenario("tamper-on-share", n=8, seed=0, tracing=True)
        corrupts = self._actions(result, "corrupt")
        assert any("tamper" in entry[3] for entry in corrupts)
        tampered = {entry[2] for entry in corrupts}
        for pid in tampered:
            assert result.network.processes[pid].ever_corrupted

    def test_sinks_without_tracing_rejected(self):
        with pytest.raises(ExperimentError, match="sinks require tracing=True"):
            run_scenario("restart-storm", n=4, seed=0, tracing=False, sinks=[object()])


# ----------------------------------------------------------------------
# Invariant harness.
# ----------------------------------------------------------------------
class _StubProcess:
    def __init__(self, pid, ever_corrupted=False):
        self.pid = pid
        self.ever_corrupted = ever_corrupted


class _StubNetwork:
    def __init__(self, n, corrupted=()):
        self.processes = [_StubProcess(pid, pid in corrupted) for pid in range(n)]
        self.params = type("P", (), {"n": n})()


class _StubResult:
    def __init__(self, n, outputs, steps=100, corrupted=()):
        self.network = _StubNetwork(n, corrupted)
        self.outputs = dict(outputs)
        self.steps = steps


class TestInvariantChecks:
    @staticmethod
    def _kinds(violations):
        return {violation.invariant for violation in violations}

    def test_clean_result_has_no_violations(self):
        result = _StubResult(4, {pid: 1 for pid in range(4)})
        assert check_result(result, "weak_coin", n=4) == []

    def test_budget_violation(self):
        result = _StubResult(4, {0: 1}, corrupted={1, 2, 3})
        assert "budget" in self._kinds(check_result(result, "weak_coin", n=4))

    def test_termination_requires_never_corrupted_outputs(self):
        result = _StubResult(4, {0: 1, 1: 1, 2: 1}, corrupted={1})
        violations = check_result(result, "weak_coin", n=4)
        assert "termination" in self._kinds(violations)
        assert "3" in violations[0].detail or "[3]" in violations[0].detail

    def test_step_bound(self):
        result = _StubResult(4, {pid: 1 for pid in range(4)}, steps=10_000_000)
        violations = check_result(result, "weak_coin", n=4)
        assert "step_bound" in self._kinds(violations)
        assert default_step_bound(4) == 120 * 16

    def test_agreement_is_protocol_aware(self):
        disagreeing = _StubResult(4, {0: 1, 1: 0, 2: 1, 3: 1})
        # A weak coin may disagree; SVSS may not.
        assert "agreement" not in self._kinds(check_result(disagreeing, "weak_coin", n=4))
        assert "agreement" in self._kinds(check_result(disagreeing, "svss", n=4))

    def test_binary_domain(self):
        result = _StubResult(4, {pid: 7 for pid in range(4)})
        assert "validity" in self._kinds(check_result(result, "weak_coin", n=4))

    def test_svss_honest_dealer_secret(self):
        result = _StubResult(4, {pid: 42 for pid in range(4)})
        ok = check_result(result, "svss", n=4, params={"secret": 42, "dealer": 0})
        assert "validity" not in self._kinds(ok)
        bad = check_result(result, "svss", n=4, params={"secret": 41, "dealer": 0})
        assert "validity" in self._kinds(bad)
        # Corrupted dealer: no secret guarantee.
        corrupted = _StubResult(4, {pid: 42 for pid in range(1, 4)}, corrupted={0})
        free = check_result(corrupted, "svss", n=4, params={"secret": 41, "dealer": 0})
        assert "validity" not in self._kinds(free)

    def test_unanimity_validity(self):
        inputs = {pid: 1 for pid in range(4)}
        result = _StubResult(4, {pid: 0 for pid in range(4)})
        violations = check_result(result, "aba", n=4, params={"inputs": inputs})
        assert "validity" in self._kinds(violations)

    def test_assert_invariants_raises_with_context(self):
        result = _StubResult(4, {0: 1}, corrupted={1, 2, 3})
        with pytest.raises(ExperimentError, match="invariant violation in my-cell"):
            assert_invariants(result, "weak_coin", context="my-cell", n=4)

    def test_check_scenario_result_on_real_trial(self):
        spec = get_scenario("tamper-drop-fraction")
        result = run_scenario(spec, n=8, seed=0, tracing=False)
        assert check_scenario_result(spec, result) == []

    def test_violation_str(self):
        violation = InvariantViolation("budget", "too many")
        assert str(violation) == "budget: too many"


# ----------------------------------------------------------------------
# Campaign wiring: invariants default on for scenario cells.
# ----------------------------------------------------------------------
class TestCampaignInvariantWiring:
    def _cell(self, **kwargs):
        base = dict(name="cell", protocol="weak_coin", n=4, seeds=[0])
        base.update(kwargs)
        return ExperimentSpec(**base)

    def test_default_follows_scenario_presence(self):
        from repro.experiments.runner import CellExecutor

        assert CellExecutor(self._cell()).check_invariants is False
        assert CellExecutor(self._cell(scenario="restart-storm")).check_invariants is True
        assert (
            CellExecutor(self._cell(scenario="restart-storm", invariants=False)).check_invariants
            is False
        )
        assert CellExecutor(self._cell(invariants=True)).check_invariants is True

    def test_invariants_field_round_trips(self):
        cell = self._cell(invariants=True)
        again = ExperimentSpec.from_dict(cell.to_dict())
        assert again.invariants is True
        # None (the default) serializes away, keeping existing spec hashes.
        assert "invariants" not in self._cell().to_dict()
        assert self._cell().spec_hash() == ExperimentSpec.from_dict(
            self._cell().to_dict()
        ).spec_hash()

    def test_executor_checks_invariants_on_trials(self):
        from repro.experiments.runner import CellExecutor

        executor = CellExecutor(
            self._cell(
                protocol="aba",
                params={"inputs": "alternating"},
                scenario="late-crash-quorum",
                invariants=True,
            )
        )
        result = executor.run(seed=0)
        assert result.outputs
