"""Tests for the scenario predicate language (selectors, patterns, filters)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.net.message import Message
from repro.scenarios.predicates import (
    compile_message_predicate,
    match_session,
    resolve_parties,
    validate_party_selector,
    validate_session_pattern,
)


class TestPartySelectors:
    def test_explicit_forms(self):
        assert resolve_parties(3, 8) == [3]
        assert resolve_parties([5, 1, 1], 8) == [1, 5]
        assert resolve_parties({"pids": [0, 7]}, 8) == [0, 7]

    def test_first_last(self):
        assert resolve_parties({"first": 3}, 8) == [0, 1, 2]
        assert resolve_parties({"last": 2}, 8) == [6, 7]
        # Clamped at n rather than failing.
        assert resolve_parties({"first": 99}, 4) == [0, 1, 2, 3]

    def test_halves(self):
        assert resolve_parties({"half": "low"}, 7) == [0, 1, 2]
        assert resolve_parties({"half": "high"}, 7) == [3, 4, 5, 6]

    def test_stride(self):
        assert resolve_parties({"every": 2}, 6) == [0, 2, 4]
        assert resolve_parties({"every": 3, "offset": 1}, 7) == [1, 4]

    def test_last_faulty_scales_with_n(self):
        assert resolve_parties({"last_faulty": True}, 4) == [3]
        assert resolve_parties({"last_faulty": True}, 16) == [11, 12, 13, 14, 15]

    def test_out_of_range_and_unknown_forms_raise(self):
        with pytest.raises(ExperimentError):
            resolve_parties(9, 4)
        with pytest.raises(ExperimentError):
            resolve_parties({"wat": 1}, 4)
        with pytest.raises(ExperimentError):
            resolve_parties(True, 4)  # bools are not pids
        with pytest.raises(ExperimentError):
            resolve_parties({"half": "middle"}, 4)

    def test_shape_validation_without_n(self):
        validate_party_selector({"last_faulty": True})
        with pytest.raises(ExperimentError):
            validate_party_selector("everyone")


class TestSessionPatterns:
    def test_exact_match_and_wildcards(self):
        assert match_session(["weak_coin"], ("weak_coin",)) == {}
        assert match_session(["weak_coin", "*", 3], ("weak_coin", "share", 3)) == {}
        assert match_session(["weak_coin", "rec"], ("weak_coin", "share")) is None
        assert match_session(["a"], ("a", "b")) is None  # length must match

    def test_pid_capture(self):
        captures = match_session(
            ["weak_coin", "share", {"pid": True}], ("weak_coin", "share", 2)
        )
        assert captures == {"pid": 2}
        # A non-int in the captured slot is not a pid.
        assert match_session(["x", {"pid": True}], ("x", "share")) is None
        assert match_session(["x", {"pid": True}], ("x", True)) is None

    def test_ellipsis_matches_any_prefix(self):
        pattern = ["...", "rec", {"pid": True}]
        assert match_session(pattern, ("weak_coin", "rec", 5)) == {"pid": 5}
        assert match_session(pattern, ("coinflip", "deep", "rec", 1)) == {"pid": 1}
        assert match_session(pattern, ("rec",)) is None  # too short

    def test_pattern_validation(self):
        validate_session_pattern(["...", "share", {"pid": True}])
        with pytest.raises(ExperimentError):
            validate_session_pattern([])
        with pytest.raises(ExperimentError):
            validate_session_pattern(["a", "...", "b"])  # ellipsis must lead
        with pytest.raises(ExperimentError):
            validate_session_pattern([{"unknown": 1}])


class TestMessagePredicates:
    def _msg(self, sender=0, receiver=1, session=("weak_coin", "share", 2), kind="ROW"):
        return Message(sender, receiver, session, (kind, 7), seq=0)

    def test_conjunctive_filters(self):
        predicate = compile_message_predicate(
            {"senders": {"first": 2}, "kinds": ["ROW"]}, n=4
        )
        assert predicate(self._msg(sender=1))
        assert not predicate(self._msg(sender=3))
        assert not predicate(self._msg(sender=1, kind="ECHO"))

    def test_session_and_root_filters(self):
        predicate = compile_message_predicate(
            {"roots": ["weak_coin"], "session": ["...", "share", {"pid": True}]}, n=4
        )
        assert predicate(self._msg())
        assert not predicate(self._msg(session=("weak_coin", "rec", 2)))

    def test_empty_spec_matches_everything(self):
        assert compile_message_predicate({}, n=4)(self._msg())

    def test_unknown_keys_raise(self):
        with pytest.raises(ExperimentError):
            compile_message_predicate({"sender": 0}, n=4)
