"""Tests for the scenario engine: directors, budgets, timelines, determinism."""

from __future__ import annotations

import pytest

from repro.core.config import max_faults
from repro.errors import ExperimentError
from repro.experiments.spec import BehaviorSpec, SchedulerSpec
from repro.net.scheduler import DelayScheduler, PartitionScheduler, TargetedScheduler
from repro.scenarios.engine import ScenarioRuntime, expand_inputs, run_scenario
from repro.scenarios.library import get_scenario, scenario_names
from repro.scenarios.spec import (
    AdaptiveRule,
    CorruptionPlan,
    FaultEvent,
    ScenarioSpec,
    StaticCorruption,
)


def _fingerprint(result):
    return (result.steps, tuple(sorted(result.outputs.items())), result.trace.messages_sent)


class TestScenarioRuntime:
    def test_scale_preset_supplies_n_and_prime(self):
        runtime = ScenarioRuntime(ScenarioSpec(name="x", scale="n32"))
        assert runtime.n == 32
        assert runtime.prime == 1_000_003
        assert runtime.t == max_faults(32)

    def test_explicit_n_beats_preset(self):
        runtime = ScenarioRuntime(ScenarioSpec(name="x", scale="n32"), n=7)
        assert runtime.n == 7
        # The n32 prime is still valid for n=7 and stays attached.
        assert runtime.prime == 1_000_003

    def test_default_n_is_smoke_scale(self):
        assert ScenarioRuntime(ScenarioSpec(name="x")).n == 4

    def test_static_overbudget_rejected_at_resolution(self):
        spec = ScenarioSpec(
            name="x",
            corruption=CorruptionPlan(static=[
                StaticCorruption(select={"first": 2}, behavior=BehaviorSpec("crash")),
            ]),
        )
        with pytest.raises(ExperimentError):
            ScenarioRuntime(spec, n=4)  # t = 1 at n = 4

    def test_budget_above_t_is_clamped(self):
        spec = ScenarioSpec(name="x", corruption=CorruptionPlan(budget=99))
        director = ScenarioRuntime(spec, n=7).build_director()
        assert director.budget == max_faults(7)

    def test_scheduler_selectors_resolved_against_n(self):
        spec = ScenarioSpec(
            name="x",
            scheduler=SchedulerSpec("partition_heal", {
                "group_a": {"half": "low"},
                "group_b": {"half": "high"},
                "duration": 10,
            }),
        )
        scheduler = ScenarioRuntime(spec, n=6).build_scheduler()
        assert isinstance(scheduler, PartitionScheduler)
        assert scheduler.group_a == {0, 1, 2}
        assert scheduler.group_b == {3, 4, 5}

    def test_expand_inputs(self):
        assert expand_inputs("alternating", 4) == {0: 0, 1: 1, 2: 0, 3: 1}
        assert expand_inputs("half", 4) == {0: 0, 1: 0, 2: 1, 3: 1}
        assert expand_inputs({0: 1}, 4) == {0: 1}
        with pytest.raises(ExperimentError):
            expand_inputs("fibonacci", 4)


class TestAdaptiveCorruption:
    @pytest.mark.parametrize("n", [4, 7, 16])
    def test_budget_never_exceeded(self, n):
        spec = get_scenario("adaptive-budget-burn")
        runtime = ScenarioRuntime(spec, n=n)
        director = runtime.build_director()
        from repro.experiments.registry import RUNNERS

        runner = RUNNERS.get(spec.protocol)
        result = runner(n=n, seed=11, director=director)
        t = max_faults(n)
        # The greedy rule wanted to corrupt every dealer; the clamp held at t.
        assert len(director.corrupted) == t
        corrupt_actions = [a for a in director.actions if a[1] == "corrupt"]
        assert len(corrupt_actions) == t
        assert any(action == "budget-exhausted" for _, action, _, _ in director.actions)
        # The run still terminated, with outputs from every still-honest party.
        assert len(result.outputs) == n - t

    def test_explicit_budget_tighter_than_t(self):
        spec = ScenarioSpec(
            name="tight",
            protocol="weak_coin",
            corruption=CorruptionPlan(budget=1, adaptive=[
                AdaptiveRule(
                    on="session_open",
                    pattern=["...", "share", {"pid": True}],
                    behavior=BehaviorSpec("hard_crash"),
                ),
            ]),
        )
        runtime = ScenarioRuntime(spec, n=16)
        director = runtime.build_director()
        from repro.experiments.registry import RUNNERS

        RUNNERS.get("weak_coin")(n=16, seed=3, director=director)
        assert len(director.corrupted) == 1

    def test_dealer_ambush_corrupts_the_embedded_dealer(self):
        spec = get_scenario("dealer-ambush")
        runtime = ScenarioRuntime(spec, n=7)
        director = runtime.build_director()
        from repro.experiments.registry import RUNNERS

        RUNNERS.get("weak_coin")(n=7, seed=5, director=director)
        corrupt_actions = [a for a in director.actions if a[1] == "corrupt"]
        assert corrupt_actions, "the ambush never fired"
        for step, _, pid, detail in corrupt_actions:
            assert "rule[0]:session_open" in detail
            assert 0 <= pid < 7

    def test_max_firings_caps_a_rule(self):
        spec = ScenarioSpec(
            name="once",
            protocol="weak_coin",
            corruption=CorruptionPlan(adaptive=[
                AdaptiveRule(
                    on="session_open",
                    pattern=["...", "share", {"pid": True}],
                    behavior=BehaviorSpec("hard_crash"),
                    max_firings=1,
                ),
            ]),
        )
        runtime = ScenarioRuntime(spec, n=16)
        director = runtime.build_director()
        from repro.experiments.registry import RUNNERS

        RUNNERS.get("weak_coin")(n=16, seed=3, director=director)
        assert len(director.corrupted) == 1


class TestFaultTimeline:
    def test_step_triggered_crash_spends_budget(self):
        spec = ScenarioSpec(
            name="late-crash",
            protocol="weak_coin",
            timeline=[
                FaultEvent(transition="crash", select={"last_faulty": True}, at_step=30),
            ],
        )
        runtime = ScenarioRuntime(spec, n=7)
        director = runtime.build_director()
        from repro.experiments.registry import RUNNERS

        result = RUNNERS.get("weak_coin")(n=7, seed=9, director=director)
        assert director.corrupted == {5, 6}
        # Corruption happened mid-run, not at setup.
        crash_steps = [step for step, action, _, _ in director.actions if action == "corrupt"]
        assert crash_steps and all(step >= 30 for step in crash_steps)
        assert len(result.outputs) == 5

    def test_silence_and_recover_round_trip(self):
        spec = ScenarioSpec(
            name="mute",
            protocol="weak_coin",
            timeline=[
                FaultEvent(transition="silence", select=1, at_step=20),
                FaultEvent(transition="recover", select=1, at_step=60),
            ],
        )
        runtime = ScenarioRuntime(spec, n=4)
        director = runtime.build_director()
        from repro.experiments.registry import RUNNERS

        result = RUNNERS.get("weak_coin")(n=4, seed=2, director=director)
        actions = [action for _, action, pid, _ in director.actions if pid == 1]
        assert actions == ["silence", "recover"]
        # Silence is not a corruption: no budget spent, all four still honest.
        assert director.corrupted == set()
        assert len(result.outputs) == 4

    def test_phase_triggered_equivocation(self):
        spec = get_scenario("equivocate-on-share")
        runtime = ScenarioRuntime(spec, n=4)
        director = runtime.build_director()
        from repro.experiments.registry import RUNNERS

        RUNNERS.get("weak_coin")(n=4, seed=1, director=director)
        assert director.corrupted == {3}
        assert any("timeline:equivocate" in detail for _, _, _, detail in director.actions)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_same_seed_same_trial(self, name):
        first = run_scenario(name, n=4, seed=7)
        second = run_scenario(name, n=4, seed=7)
        assert _fingerprint(first) == _fingerprint(second)

    def test_different_seeds_differ_somewhere(self):
        fingerprints = {
            _fingerprint(run_scenario("dealer-ambush", n=7, seed=seed))
            for seed in range(4)
        }
        assert len(fingerprints) > 1


class TestRunScenario:
    def test_accepts_spec_and_name(self):
        by_name = run_scenario("silence-heal", n=4, seed=3)
        by_spec = run_scenario(get_scenario("silence-heal"), n=4, seed=3)
        assert _fingerprint(by_name) == _fingerprint(by_spec)

    def test_param_overrides_merge_over_scenario_params(self):
        result = run_scenario(
            "starved-dealer-withholds", n=4, seed=0, params={"secret": 777}
        )
        assert 777 in result.outputs.values()

    def test_protocol_override(self):
        result = run_scenario(
            "silence-heal", n=4, seed=0, protocol="coinflip", params={"rounds": 1}
        )
        assert len(result.outputs) == 4
