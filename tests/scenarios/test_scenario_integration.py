"""Scenario integration: campaigns, the CLI, chunk batching and n=32 scale."""

from __future__ import annotations

import json

import pytest

from repro.core.config import max_faults
from repro.errors import ExperimentError
from repro.experiments.cli import main as cli_main
from repro.experiments.runner import CellExecutor, run_campaign, run_trial
from repro.experiments.spec import BehaviorSpec, CampaignSpec, ExperimentSpec
from repro.scenarios.engine import run_scenario
from repro.scenarios.library import scenario_names


def _cell(**overrides) -> ExperimentSpec:
    base = dict(
        name="cell",
        protocol="weak_coin",
        n=4,
        seeds=[0, 1, 2],
        scenario="dealer-ambush",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestCampaignIntegration:
    def test_cell_round_trips_with_scenario(self):
        cell = _cell()
        same = ExperimentSpec.from_dict(cell.to_dict())
        assert same.scenario == "dealer-ambush"
        assert same.to_dict() == cell.to_dict()
        # The scenario participates in the resume hash.
        assert cell.spec_hash() != _cell(scenario="silence-heal").spec_hash()

    def test_grid_propagates_scenario(self):
        campaign = CampaignSpec.grid(
            "sweep", protocol="weak_coin", n=[4, 7], seeds=range(2),
            scenario="silence-heal",
        )
        assert all(cell.scenario == "silence-heal" for cell in campaign.cells)

    def test_parallel_equals_sequential_with_scenarios(self):
        campaign = CampaignSpec.grid(
            "scn", protocol="weak_coin", n=[4, 7], seeds=range(6),
            scenario="dealer-ambush",
        )
        sequential = run_campaign(campaign)
        parallel = run_campaign(campaign, workers=2)
        assert {name: agg.to_dict() for name, agg in sequential.items()} == {
            name: agg.to_dict() for name, agg in parallel.items()
        }

    def test_executor_matches_one_shot_run_trial(self):
        cell = _cell(seeds=[0, 1, 2, 3])
        executor = CellExecutor(cell)
        for seed in cell.seeds:
            batched = executor.run(seed)
            one_shot = run_trial(cell, seed)
            assert batched.outputs == one_shot.outputs
            assert batched.steps == one_shot.steps
            assert batched.trace.messages_sent == one_shot.trace.messages_sent

    def test_executor_shares_one_session_table_across_trials(self):
        executor = CellExecutor(_cell())
        executor.run(0)
        interned = len(executor.session_table)
        assert interned > 0
        executor.run(1)
        # Identical topology: the second trial allocated no new session tuples.
        assert len(executor.session_table) == interned

    def test_cell_params_override_scenario_params(self):
        cell = _cell(
            protocol="svss",
            scenario="starved-dealer-withholds",
            params={"secret": 31337},
        )
        result = CellExecutor(cell).run(0)
        assert 31337 in result.outputs.values()

    def test_cell_adversary_composes_with_scenario_statics(self):
        # starved-dealer-withholds corrupts pid 0; the cell adds a crash at 1.
        cell = _cell(
            protocol="svss",
            n=7,
            scenario="starved-dealer-withholds",
            adversary={1: BehaviorSpec("crash")},
        )
        result = CellExecutor(cell).run(0)
        assert set(result.outputs) == {2, 3, 4, 5, 6}

    def test_unknown_scenario_fails_fast(self):
        campaign = CampaignSpec(name="bad", cells=[_cell(scenario="no-such")])
        with pytest.raises(ExperimentError):
            run_campaign(campaign)

    def test_scenario_over_budget_for_cell_n_fails_fast(self):
        # coin-split-brain statically corrupts t parties -- fine at any n --
        # but a custom scenario wanting 2 static corruptions breaks at n=4.
        from repro.scenarios.library import SCENARIOS, register_scenario
        from repro.scenarios.spec import CorruptionPlan, ScenarioSpec, StaticCorruption

        register_scenario(ScenarioSpec(
            name="_test-two-crashes",
            protocol="weak_coin",
            corruption=CorruptionPlan(static=[
                StaticCorruption(select={"first": 2}, behavior=BehaviorSpec("crash")),
            ]),
        ))
        try:
            with pytest.raises(ExperimentError):
                CellExecutor(_cell(scenario="_test-two-crashes"))
        finally:
            del SCENARIOS["_test-two-crashes"]


class TestScenariosCLI:
    def test_list_and_validate(self, capsys):
        assert cli_main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out
        assert "JSON-round-trippable" in out

    def test_show_emits_loadable_json(self, capsys):
        assert cli_main(["scenarios", "--show", "partition-heal"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "partition-heal"

    def test_run_one(self, capsys):
        assert cli_main(["scenarios", "--run", "silence-heal", "--n", "4"]) == 0
        assert "silence-heal" in capsys.readouterr().out

    def test_unknown_scenario_is_a_cli_error(self, capsys):
        assert cli_main(["scenarios", "--run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_campaign_validate_checks_scenario_names(self, tmp_path, capsys):
        campaign = CampaignSpec(name="c", cells=[_cell(scenario="nope")])
        path = tmp_path / "campaign.json"
        campaign.save(path)
        assert cli_main(["validate", str(path)]) == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestScale:
    def test_n32_scenario_trial_completes(self):
        # The tier-1 scale smoke: one full adversarial trial at the bench
        # preset.  The scale preset supplies n=32 and the matched prime.
        result = run_scenario("late-crash-quorum", n=32, seed=0, tracing=False)
        t = max_faults(32)
        assert len(result.outputs) == 32 - t
        assert not result.disagreement

    def test_n32_adaptive_budget_holds(self):
        from repro.experiments.registry import RUNNERS
        from repro.scenarios.engine import ScenarioRuntime
        from repro.scenarios.library import get_scenario

        runtime = ScenarioRuntime(get_scenario("adaptive-budget-burn"), n=32)
        director = runtime.build_director()
        RUNNERS.get("weak_coin")(
            n=32, seed=0, prime=runtime.prime, tracing=False, director=director
        )
        assert len(director.corrupted) == max_faults(32)

    def test_scale_preset_prime_reaches_the_field(self):
        cell = ExperimentSpec(
            name="n32", protocol="weak_coin", n=32, seeds=[0], scenario="flood-fenwick"
        )
        executor = CellExecutor(cell)
        assert executor.kwargs["prime"] == 1_000_003
