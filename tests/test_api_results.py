"""Tests for the one-call API and the result aggregation helpers."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.results import TrialAggregate, aggregate


class TestRunners:
    def test_run_many_aggregates(self):
        stats = api.run_many(api.run_coinflip, range(4), n=4, rounds=1)
        assert stats.trials == 4
        assert stats.disagreement_rate == 0.0
        assert stats.frequency(0) + stats.frequency(1) == pytest.approx(1.0)

    def test_run_many_with_acast(self):
        stats = api.run_many(api.run_acast, range(3), n=4, value="v", sender=0)
        assert stats.trials == 3
        assert stats.frequency("v") == 1.0

    def test_default_coinflip_rounds_applied(self):
        result = api.run_coinflip(4, seed=0)
        instance = result.network.processes[0].protocol(("coinflip",))
        assert instance.rounds == api.DEFAULT_COINFLIP_ROUNDS

    def test_max_steps_override(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            api.run_coinflip(4, seed=0, rounds=2, max_steps=10)


class TestThroughput:
    def test_trials_record_elapsed_and_throughput(self):
        results = [api.run_acast(4, "x", sender=0, seed=seed) for seed in range(3)]
        assert all(result.elapsed_s > 0 for result in results)
        stats = aggregate(results)
        assert stats.total_elapsed_s == pytest.approx(
            sum(result.elapsed_s for result in results)
        )
        assert stats.deliveries_per_s == pytest.approx(
            stats.total_steps / stats.total_elapsed_s
        )
        assert stats.summary()["deliveries_per_s"] == round(stats.deliveries_per_s)

    def test_timing_stays_out_of_deterministic_dict(self):
        stats = aggregate(api.run_acast(4, "x", sender=0, seed=s) for s in range(2))
        payload = stats.to_dict()
        assert "total_elapsed_s" not in payload
        reloaded = TrialAggregate.from_dict(payload)
        assert reloaded.deliveries_per_s is None
        assert reloaded.summary()["deliveries_per_s"] is None

    def test_merge_sums_elapsed(self):
        a = aggregate([api.run_acast(4, "x", sender=0, seed=0)])
        b = aggregate([api.run_acast(4, "x", sender=0, seed=1)])
        merged = a.merge(b)
        assert merged.total_elapsed_s == pytest.approx(
            a.total_elapsed_s + b.total_elapsed_s
        )

    def test_store_round_trips_elapsed(self, tmp_path):
        from repro.experiments.store import ResultStore

        stats = aggregate([api.run_acast(4, "x", sender=0, seed=0)])
        store = ResultStore.open(tmp_path / "out.json")
        store.put("cell", "hash", stats)
        store.save()
        reloaded = ResultStore.open(tmp_path / "out.json").get("cell")
        assert reloaded.total_elapsed_s == pytest.approx(
            stats.total_elapsed_s, abs=1e-3
        )
        assert reloaded.deliveries_per_s is not None


class TestAggregate:
    def test_mean_metrics(self):
        results = [api.run_acast(4, "x", sender=0, seed=seed) for seed in range(3)]
        stats = aggregate(results)
        assert stats.trials == 3
        assert stats.mean_messages > 0
        assert stats.mean_steps > 0
        assert stats.mean_shun_events == 0.0

    def test_hit_rate(self):
        results = [api.run_coinflip(4, seed=seed, rounds=1) for seed in range(6)]
        stats = aggregate(results)
        total = stats.hit_rate(lambda v: v == 0) + stats.hit_rate(lambda v: v == 1)
        assert total == pytest.approx(1.0)

    def test_summary_keys(self):
        stats = TrialAggregate()
        stats.add(api.run_acast(4, "x", sender=0, seed=0))
        summary = stats.summary()
        assert {"trials", "disagreement_rate", "mean_messages"} <= set(summary)

    def test_disagreement_counted(self):
        stats = aggregate([api.run_weak_coin(4, seed=seed) for seed in range(6)])
        assert 0.0 <= stats.disagreement_rate <= 1.0
        assert stats.trials == 6


class TestMerge:
    def _parts(self):
        results = [api.run_coinflip(4, seed=seed, rounds=1) for seed in range(6)]
        return (
            aggregate(results[:2]),
            aggregate(results[2:5]),
            aggregate(results[5:]),
            aggregate(results),
        )

    def test_merge_equals_single_pass(self):
        a, b, c, whole = self._parts()
        merged = a.merge(b).merge(c)
        assert merged.to_dict() == whole.to_dict()

    def test_merge_is_associative(self):
        a, b, c, _ = self._parts()
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    def test_merge_preserves_output_order(self):
        a, b, _, whole = self._parts()
        assert a.merge(b).outputs == whole.outputs[:5]

    def test_empty_is_identity(self):
        _, b, _, _ = self._parts()
        empty = TrialAggregate.empty()
        assert empty.merge(b).to_dict() == b.to_dict()
        assert b.merge(empty).to_dict() == b.to_dict()

    def test_merge_of_empties_is_empty(self):
        merged = TrialAggregate.empty().merge(TrialAggregate.empty())
        assert merged.trials == 0
        assert merged.disagreement_rate == 0.0
        assert merged.mean_messages == 0.0
        assert merged.frequency(0) == 0.0

    def test_merge_does_not_mutate_operands(self):
        a, b, _, _ = self._parts()
        before_a, before_b = a.to_dict(), b.to_dict()
        a.merge(b)
        assert a.to_dict() == before_a
        assert b.to_dict() == before_b


class TestSerialization:
    def test_round_trip_through_json(self):
        import json

        stats = api.run_many(api.run_coinflip, range(4), n=4, rounds=1)
        restored = TrialAggregate.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert restored.to_dict() == stats.to_dict()
        assert restored.trials == stats.trials
        assert restored.frequency(0) == stats.frequency(0)
        assert restored.mean_messages == stats.mean_messages

    def test_empty_round_trip(self):
        restored = TrialAggregate.from_dict(TrialAggregate.empty().to_dict())
        assert restored.trials == 0
        assert restored.to_dict() == TrialAggregate.empty().to_dict()

    def test_restored_aggregate_can_keep_accumulating(self):
        stats = TrialAggregate.from_dict(
            api.run_many(api.run_acast, range(2), n=4, value="v").to_dict()
        )
        stats.add(api.run_acast(4, "v", seed=9))
        assert stats.trials == 3
        assert stats.frequency("v") == 1.0

    def test_non_json_outputs_fall_back_to_repr(self):
        stats = TrialAggregate()
        stats.add(api.run_common_subset(4, ready_parties=[0, 1, 2], seed=0))
        data = stats.to_dict()
        assert isinstance(data["outputs"][0], (list, str))


class TestParallelRunMany:
    def test_workers_match_sequential_statistics(self):
        # 10 seeds > DEFAULT_CHUNK_TRIALS, so the pool path genuinely runs.
        sequential = api.run_many(api.run_coinflip, range(10), n=4, rounds=1)
        parallel = api.run_many(api.run_coinflip, range(10), n=4, rounds=1, workers=2)
        assert parallel.to_dict() == sequential.to_dict()
        assert parallel.outputs == sequential.outputs

    def test_workers_preserve_output_types(self):
        # Pickled (not JSON-ified) chunk transport: non-primitive outputs such
        # as CommonSubset's frozensets survive the pool unchanged.
        stats = api.run_many(
            api.run_common_subset,
            range(3),
            n=4,
            ready_parties=[0, 1, 2],
            workers=2,
            chunk_trials=1,
        )
        assert all(isinstance(output, frozenset) for output in stats.outputs)
        assert stats.hit_rate(lambda s: s == frozenset({0, 1, 2})) == 1.0

    def test_workers_one_is_sequential_path(self):
        stats = api.run_many(api.run_acast, range(2), workers=1, n=4, value="v")
        assert stats.trials == 2

    def test_empty_aggregate(self):
        stats = TrialAggregate()
        assert stats.frequency("anything") == 0.0
        assert stats.disagreement_rate == 0.0
        assert stats.mean_messages == 0.0
