"""Tests for the one-call API and the result aggregation helpers."""

from __future__ import annotations

import pytest

from repro.core import api
from repro.core.results import TrialAggregate, aggregate


class TestRunners:
    def test_run_many_aggregates(self):
        stats = api.run_many(api.run_coinflip, range(4), n=4, rounds=1)
        assert stats.trials == 4
        assert stats.disagreement_rate == 0.0
        assert stats.frequency(0) + stats.frequency(1) == pytest.approx(1.0)

    def test_run_many_with_acast(self):
        stats = api.run_many(api.run_acast, range(3), n=4, value="v", sender=0)
        assert stats.trials == 3
        assert stats.frequency("v") == 1.0

    def test_default_coinflip_rounds_applied(self):
        result = api.run_coinflip(4, seed=0)
        instance = result.network.processes[0].protocol(("coinflip",))
        assert instance.rounds == api.DEFAULT_COINFLIP_ROUNDS

    def test_max_steps_override(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            api.run_coinflip(4, seed=0, rounds=2, max_steps=10)


class TestAggregate:
    def test_mean_metrics(self):
        results = [api.run_acast(4, "x", sender=0, seed=seed) for seed in range(3)]
        stats = aggregate(results)
        assert stats.trials == 3
        assert stats.mean_messages > 0
        assert stats.mean_steps > 0
        assert stats.mean_shun_events == 0.0

    def test_hit_rate(self):
        results = [api.run_coinflip(4, seed=seed, rounds=1) for seed in range(6)]
        stats = aggregate(results)
        total = stats.hit_rate(lambda v: v == 0) + stats.hit_rate(lambda v: v == 1)
        assert total == pytest.approx(1.0)

    def test_summary_keys(self):
        stats = TrialAggregate()
        stats.add(api.run_acast(4, "x", sender=0, seed=0))
        summary = stats.summary()
        assert {"trials", "disagreement_rate", "mean_messages"} <= set(summary)

    def test_disagreement_counted(self):
        stats = aggregate([api.run_weak_coin(4, seed=seed) for seed in range(6)])
        assert 0.0 <= stats.disagreement_rate <= 1.0
        assert stats.trials == 6

    def test_empty_aggregate(self):
        stats = TrialAggregate()
        assert stats.frequency("anything") == 0.0
        assert stats.disagreement_rate == 0.0
        assert stats.mean_messages == 0.0
