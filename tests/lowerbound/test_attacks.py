"""Tests for the Claim-1 and Claim-2 attacks of Section 2."""

from __future__ import annotations

import random

import pytest

from repro.lowerbound.attack import DealerSplitAttack, ReconstructionAttack
from repro.lowerbound.experiment import (
    CORRECTNESS_FAILURE_THRESHOLD,
    evaluate_candidate,
    format_report,
    run_experiment,
)
from repro.lowerbound.toy_avss import echo_checked_avss, masked_xor_avss


class TestDealerSplitAttack:
    def test_guesses_always_samplable_for_masked_xor(self):
        attack = DealerSplitAttack(masked_xor_avss())
        assert attack.sample_guesses(random.Random(0)) is not None

    def test_split_achieved_when_guesses_correct(self):
        """Claim 1: conditioned on guessing the honest randomness, the dealer
        splits the views with certainty."""
        attack = DealerSplitAttack(masked_xor_avss())
        rng = random.Random(1)
        successes = 0
        for _ in range(50):
            outcome = attack.execute(rng)
            if outcome.guessed_randomness:
                successes += 1
                assert outcome.split_achieved
        assert successes > 0

    def test_statistics_fields(self):
        attack = DealerSplitAttack(masked_xor_avss())
        stats = attack.success_statistics(trials=30, seed=2)
        assert stats["applicable_rate"] == 1.0
        assert 0.0 <= stats["split_rate_given_guess"] <= 1.0
        assert stats["split_rate_given_guess"] == 1.0

    def test_not_applicable_against_echo_checked(self):
        """The cross-checking candidate reveals the secret through m_AB, so the
        dealer cannot find a consistent pair of views to split."""
        attack = DealerSplitAttack(echo_checked_avss())
        stats = attack.success_statistics(trials=20, seed=3)
        assert stats["applicable_rate"] == 0.0


class TestReconstructionAttack:
    def test_wrong_output_rate_exceeds_one_third(self):
        """Claim 2 consequence: the masked-xor candidate cannot be (2/3+eps)-correct."""
        attack = ReconstructionAttack(masked_xor_avss())
        stats = attack.success_statistics(trials=400, seed=4)
        assert stats["a_wrong_output_rate"] > CORRECTNESS_FAILURE_THRESHOLD

    def test_attack_rate_is_about_one_half_for_masked_xor(self):
        attack = ReconstructionAttack(masked_xor_avss())
        stats = attack.success_statistics(trials=600, seed=5)
        assert stats["a_wrong_output_rate"] == pytest.approx(0.5, abs=0.07)

    def test_echo_checked_resists_the_attack(self):
        attack = ReconstructionAttack(echo_checked_avss())
        stats = attack.success_statistics(trials=200, seed=6)
        assert stats["a_wrong_output_rate"] == 0.0

    def test_honest_fallback_when_simulation_impossible(self):
        attack = ReconstructionAttack(echo_checked_avss())
        outcome = attack.execute(random.Random(7))
        assert outcome.a_output == 0


class TestExperiment:
    def test_rows_for_all_candidates(self):
        rows = run_experiment(trials=100, seed=8)
        assert set(rows) == {"masked-xor", "echo-checked"}

    def test_masked_xor_row_consistent_with_theorem(self):
        row = evaluate_candidate(masked_xor_avss(), trials=200, seed=9)
        assert row.secrecy_holds
        assert row.termination_rate == pytest.approx(1.0)
        assert row.correctness_violated
        assert row.consistent_with_theorem

    def test_echo_checked_row_flags_secrecy(self):
        row = evaluate_candidate(echo_checked_avss(), trials=50, seed=10)
        assert not row.secrecy_holds
        assert row.consistent_with_theorem

    def test_report_formatting(self):
        rows = run_experiment(trials=50, seed=11)
        text = format_report(list(rows.values()))
        assert "masked-xor" in text
        assert "Theorem check" in text
