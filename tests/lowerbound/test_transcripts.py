"""Tests for the lower-bound transcript enumeration engine."""

from __future__ import annotations

import random

import pytest

from repro.lowerbound.toy_avss import all_candidates, echo_checked_avss, masked_xor_avss
from repro.lowerbound.transcripts import (
    ReconstructionRunner,
    ScriptedShareRunner,
    ShareEnumerator,
)


class TestEnumeration:
    def test_run_count_matches_randomness_space(self):
        enumerator = ShareEnumerator(masked_xor_avss(), active=("D", "A", "B"))
        # Only the dealer is randomised (mask in {0,1}).
        assert len(enumerator.transcripts(0)) == 2
        assert len(enumerator.transcripts(1)) == 2

    def test_probabilities_sum_to_one(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        assert sum(t.probability for t in enumerator.transcripts(0)) == pytest.approx(1.0)

    def test_all_parties_complete_in_honest_runs(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        for transcript in enumerator.transcripts(0):
            assert {"A", "B", "D"} <= set(transcript.completed)

    def test_messages_between_is_symmetric_in_arguments(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        transcript = enumerator.transcripts(0)[0]
        assert transcript.messages_between("A", "D") == transcript.messages_between("D", "A")

    def test_view_contains_randomness_and_inbox(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        transcript = enumerator.transcripts(1)[0]
        randomness, inbox = transcript.view("A")
        assert randomness is None
        assert any(sender == "D" for _round, sender, _message in inbox)


class TestDistributions:
    def test_distribution_normalised(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        distribution = enumerator.distribution(0, lambda t: t.view("A"))
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_conditional_distribution(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        distribution = enumerator.distribution(
            0,
            lambda t: t.randomness_of("D"),
            condition=lambda t: t.randomness_of("D") == 1,
        )
        assert distribution == {1: 1.0}

    def test_empty_condition_returns_empty(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        assert (
            enumerator.distribution(0, lambda t: 0, condition=lambda t: False) == {}
        )

    def test_sample_from_empty_condition_raises(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        with pytest.raises(ValueError):
            enumerator.sample(random.Random(0), 0, lambda t: 0, condition=lambda t: False)

    def test_sample_respects_support(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        rng = random.Random(1)
        for _ in range(20):
            value = enumerator.sample(rng, 0, lambda t: t.randomness_of("D"))
            assert value in (0, 1)


class TestProperties:
    def test_masked_xor_satisfies_secrecy(self):
        enumerator = ShareEnumerator(masked_xor_avss())
        assert enumerator.secrecy_holds("A")
        assert enumerator.secrecy_holds("B")

    def test_echo_checked_violates_secrecy(self):
        enumerator = ShareEnumerator(echo_checked_avss())
        assert not enumerator.secrecy_holds("A")
        assert not enumerator.secrecy_holds("B")

    def test_termination_rate_is_one_for_both_candidates(self):
        for candidate in all_candidates():
            enumerator = ShareEnumerator(candidate)
            assert enumerator.termination_rate(0) == pytest.approx(1.0)
            assert enumerator.termination_rate(1) == pytest.approx(1.0)

    def test_lemma_2_4_joint_distribution_equality(self):
        """Lemma 2.4 reproduced: for a secrecy-preserving candidate the joint
        distribution of (m_AD, m_AB, r_A) is identical for both secrets."""
        enumerator = ShareEnumerator(masked_xor_avss())
        feature = lambda t: (  # noqa: E731
            t.messages_between("A", "D"),
            t.messages_between("A", "B"),
            t.randomness_of("A"),
        )
        d0 = enumerator.distribution(0, feature)
        d1 = enumerator.distribution(1, feature)
        assert set(d0) == set(d1)
        for key in d0:
            assert d0[key] == pytest.approx(d1[key])


class TestRunners:
    def test_scripted_runner_reproduces_honest_run(self):
        candidate = masked_xor_avss()
        enumerator = ShareEnumerator(candidate)
        reference = enumerator.transcripts(0)[0]
        script = {
            (round_index, "D", receiver): message
            for (round_index, sender, receiver), message in reference.messages
            if sender == "D"
        }
        runner = ScriptedShareRunner(candidate)
        replay = runner.run(
            secret=None,
            randomness={"A": None, "B": None},
            scripted_party="D",
            script=script,
        )
        assert replay.view("A") == reference.view("A")
        assert replay.view("B") == reference.view("B")

    def test_reconstruction_of_honest_sharing(self):
        candidate = masked_xor_avss()
        enumerator = ShareEnumerator(candidate, active=("D", "A", "B", "C"))
        for secret in (0, 1):
            for transcript in enumerator.transcripts(secret):
                runner = ReconstructionRunner(candidate, active=("A", "B", "C"))
                outputs = runner.run(
                    {party: transcript.messages_to(party) for party in ("A", "B", "C")}
                )
                assert outputs["A"] == secret
                assert outputs["B"] == secret
                assert outputs["C"] == secret
