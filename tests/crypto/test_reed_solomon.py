"""Tests for Berlekamp-Welch decoding."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import Field
from repro.crypto.polynomial import Polynomial
from repro.crypto.reed_solomon import berlekamp_welch, correctable
from repro.errors import DecodingError

FIELD = Field(101)


def _points_with_errors(poly, xs, errors, rng):
    points = []
    error_positions = set(rng.sample(range(len(xs)), errors))
    for position, x in enumerate(xs):
        y = poly(x)
        if position in error_positions:
            y = y + rng.randrange(1, 100)
        points.append((FIELD(x), y))
    return points


class TestCorrectable:
    @pytest.mark.parametrize(
        "n,degree,expected", [(4, 1, 1), (7, 2, 2), (10, 3, 3), (5, 1, 1), (3, 1, 0)]
    )
    def test_values(self, n, degree, expected):
        assert correctable(n, degree) == expected


class TestDecoding:
    def test_no_errors(self):
        poly = Polynomial(FIELD, [5, 7, 11])
        points = [(FIELD(x), poly(x)) for x in range(1, 8)]
        assert berlekamp_welch(FIELD, points, degree=2, max_errors=2) == poly

    def test_single_error(self):
        rng = random.Random(0)
        poly = Polynomial(FIELD, [9, 3])
        points = _points_with_errors(poly, [1, 2, 3, 4], 1, rng)
        assert berlekamp_welch(FIELD, points, degree=1, max_errors=1) == poly

    def test_max_errors_at_optimal_resilience(self):
        """n = 3t+1 points correct exactly t errors for a degree-t polynomial."""
        rng = random.Random(1)
        for t in (1, 2, 3):
            n = 3 * t + 1
            poly = Polynomial.random(FIELD, t, rng)
            points = _points_with_errors(poly, list(range(1, n + 1)), t, rng)
            assert berlekamp_welch(FIELD, points, degree=t, max_errors=t) == poly

    def test_too_few_points_rejected(self):
        poly = Polynomial(FIELD, [1, 2])
        points = [(FIELD(x), poly(x)) for x in range(1, 4)]
        with pytest.raises(DecodingError):
            berlekamp_welch(FIELD, points, degree=1, max_errors=1)

    def test_duplicate_x_rejected(self):
        points = [(FIELD(1), FIELD(1)), (FIELD(1), FIELD(2)), (FIELD(2), FIELD(3)), (FIELD(3), FIELD(4))]
        with pytest.raises(DecodingError):
            berlekamp_welch(FIELD, points, degree=1, max_errors=1)

    def test_negative_max_errors_rejected(self):
        with pytest.raises(DecodingError):
            berlekamp_welch(FIELD, [(FIELD(1), FIELD(1))], degree=0, max_errors=-1)

    def test_zero_errors_with_inconsistent_points_rejected(self):
        points = [(FIELD(1), FIELD(1)), (FIELD(2), FIELD(2)), (FIELD(3), FIELD(100))]
        with pytest.raises(DecodingError):
            berlekamp_welch(FIELD, points, degree=1, max_errors=0)

    def test_too_many_errors_detected(self):
        """With more corruption than the decoder tolerates, it must not return silently wrong."""
        rng = random.Random(2)
        poly = Polynomial(FIELD, [4, 4])
        # 4 points, 2 errors, decoder allowed 1: must raise (cannot decode).
        points = _points_with_errors(poly, [1, 2, 3, 4], 2, rng)
        try:
            decoded = berlekamp_welch(FIELD, points, degree=1, max_errors=1)
        except DecodingError:
            return
        # If decoding "succeeded", it must at least explain 3 of the 4 points;
        # it is allowed to differ from the original polynomial.
        agreement = sum(1 for x, y in points if decoded(x) == y)
        assert agreement >= 3


@settings(max_examples=40, deadline=None)
@given(
    degree=st.integers(1, 3),
    seed=st.integers(0, 100_000),
)
def test_decoding_property(degree, seed):
    """For n = 3t+1 evaluation points with up to t corruptions, decoding recovers the polynomial."""
    rng = random.Random(seed)
    n = 3 * degree + 1
    poly = Polynomial.random(FIELD, degree, rng)
    errors = rng.randint(0, degree)
    points = _points_with_errors(poly, list(range(1, n + 1)), errors, rng)
    assert berlekamp_welch(FIELD, points, degree=degree, max_errors=degree) == poly
