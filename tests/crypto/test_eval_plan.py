"""Batched evaluation plane == scalar kernels, byte for byte.

The batched crypto plane (``EvalPlan`` / ``CryptoPlane``) promises exact
agreement with the scalar kernels it amortises: same validation verdicts,
same evaluations, same reconstruction weights, for every prime and every
degenerate input.  The scalar kernels are the oracle -- these tests pin the
equivalence on random inputs across all three plan modes (int64 matmul,
16-bit split, scalar fallback).
"""

from __future__ import annotations

import random

import pytest

from repro.crypto import kernels
from repro.protocols.svss import _validate_row_ints

#: One prime per plan mode: million-scale (single matmul), the library
#: default 2^31 - 1 (hi/lo split), and a tiny field (scalar at small n).
MATMUL_PRIME = 1_000_003
SPLIT_PRIME = 2_147_483_647
SMALL_PRIME = 97


def plans():
    return [
        kernels.get_eval_plan(MATMUL_PRIME, 64),
        kernels.get_eval_plan(SPLIT_PRIME, 32),
        kernels.get_eval_plan(SMALL_PRIME, 7),
    ]


class TestPlanModes:
    def test_mode_selection(self):
        if kernels._np is None:
            pytest.skip("numpy unavailable; every plan is scalar")
        assert kernels.get_eval_plan(MATMUL_PRIME, 64).mode == "matmul"
        assert kernels.get_eval_plan(SPLIT_PRIME, 32).mode == "split"
        # Below the vectorisation cutoff the scalar kernels win.
        assert kernels.get_eval_plan(SMALL_PRIME, 7).mode == "scalar"

    def test_plan_is_shared_per_prime_n(self):
        assert kernels.get_eval_plan(MATMUL_PRIME, 64) is kernels.get_eval_plan(
            MATMUL_PRIME, 64
        )


class TestEvalAllPoints:
    @pytest.mark.parametrize("plan", plans(), ids=lambda p: f"n{p.n}")
    def test_matches_eval_at_many(self, plan):
        rng = random.Random(1)
        t = (plan.n - 1) // 3
        for _ in range(25):
            length = rng.randrange(1, t + 2)
            coeffs = tuple(rng.randrange(plan.prime) for _ in range(length))
            assert plan.eval_all_points(coeffs) == kernels.eval_at_many(
                plan.prime, coeffs, range(1, plan.n + 1)
            )

    @pytest.mark.parametrize("plan", plans(), ids=lambda p: f"n{p.n}")
    def test_extreme_coefficients(self, plan):
        # Max-value coefficients stress the int64 overflow analysis.
        coeffs = tuple([plan.prime - 1] * ((plan.n - 1) // 3 + 1))
        assert plan.eval_all_points(coeffs) == kernels.eval_at_many(
            plan.prime, coeffs, range(1, plan.n + 1)
        )
        assert plan.eval_all_points((0,)) == [0] * plan.n


class TestEvalGridAndShares:
    @pytest.mark.parametrize("plan", plans(), ids=lambda p: f"n{p.n}")
    def test_eval_rows_at_point_matches_horner(self, plan):
        rng = random.Random(2)
        rows = [
            tuple(rng.randrange(plan.prime) for _ in range(rng.randrange(1, plan.n)))
            for _ in range(17)
        ]
        for point in (1, plan.n, plan.prime - 1):
            expected = [kernels.horner(plan.prime, row, point % plan.prime) for row in rows]
            assert plan.eval_rows_at_point(rows, point % plan.prime) == expected

    @pytest.mark.parametrize("plan", plans(), ids=lambda p: f"n{p.n}")
    def test_eval_grid_veneer(self, plan):
        plane = kernels.CryptoPlane(plan.prime, plan.n, (plan.n - 1) // 3)
        rng = random.Random(3)
        rows = [tuple(rng.randrange(plan.prime) for _ in range(4)) for _ in range(5)]
        assert kernels.eval_grid(plane, rows, 3) == [
            kernels.horner(plan.prime, row, 3) for row in rows
        ]

    @pytest.mark.parametrize("plan", plans(), ids=lambda p: f"n{p.n}")
    def test_bivariate_rows_match_scalar(self, plan):
        rng = random.Random(4)
        t = (plan.n - 1) // 3
        # Random symmetric matrix, as the SVSS dealer builds.
        size = t + 1
        matrix = [[0] * size for _ in range(size)]
        for i in range(size):
            for j in range(i, size):
                matrix[i][j] = matrix[j][i] = rng.randrange(plan.prime)
        expected = [
            kernels.poly_trim(kernels.bivariate_row(plan.prime, matrix, x))
            for x in range(1, plan.n + 1)
        ]
        assert plan.bivariate_rows(matrix) == expected

    @pytest.mark.parametrize("plan", plans(), ids=lambda p: f"n{p.n}")
    def test_shamir_share_values_many(self, plan):
        rng = random.Random(5)
        polys = [
            [rng.randrange(plan.prime) for _ in range(rng.randrange(1, 6))]
            for _ in range(9)
        ]
        batched = kernels.shamir_share_values_many(plan.prime, polys, plan.n)
        for coeffs, shares in zip(polys, batched):
            assert shares == kernels.shamir_share_values(plan.prime, coeffs, plan.n)
        assert kernels.shamir_share_values_many(plan.prime, [], plan.n) == []


class TestValidateRows:
    @pytest.mark.parametrize("prime,n", [(MATMUL_PRIME, 64), (SPLIT_PRIME, 32), (SMALL_PRIME, 7)])
    def test_agrees_with_scalar_validator(self, prime, n):
        t = (n - 1) // 3
        plane = kernels.CryptoPlane(prime, n, t)
        rng = random.Random(6)
        payloads = [
            # Valid random rows, twice (the second pass must hit the cache).
            *[tuple(rng.randrange(prime) for _ in range(t + 1)) for _ in range(8)],
            # Degenerate: empty payload normalises to the zero polynomial.
            (),
            [],
            # Trailing zeros trim away; all-zero rows collapse to (0,).
            (0,) * (t + 1),
            (5,) + (0,) * t,
            # Unreduced and negative coefficients reduce mod p.
            (prime, prime + 3, -1),
            # Degree above t is rejected...
            tuple(range(1, t + 3)),
            # ...unless the excess coefficients are zeros that trim away.
            tuple(range(1, t + 2)) + (0, 0),
            # Malformed payloads: wrong container or non-int coefficients.
            "not-a-row",
            123,
            None,
            (1, "x", 3),
            (1, 2.5),
            # bools are ints in Python; the scalar path accepted them.
            (True, False),
            # Lists are valid wire containers (and unhashable-safe).
            [1, 2, 3],
            # Unhashable nested payload must fall back gracefully.
            (1, [2], 3),
        ]
        for payload in payloads + payloads:
            expected = _validate_row_ints(prime, t, payload)
            assert plane.validate_row(payload) == expected, payload
            record = plane.validate_row_record(payload)
            if expected is None:
                assert record is None
            else:
                row, evals = record
                assert row == expected
                assert evals == kernels.eval_at_many(prime, row, range(1, n + 1))
        mask = kernels.validate_rows(plane, payloads)
        assert mask == [_validate_row_ints(prime, t, p) is not None for p in payloads]

    def test_row_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(kernels, "_PLANE_ROW_CACHE_LIMIT", 8)
        plane = kernels.CryptoPlane(SMALL_PRIME, 7, 2)
        for value in range(40):
            plane.validate_row((value % SMALL_PRIME,))
        assert len(plane.row_cache) <= 8

    def test_weight_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(kernels, "_PLANE_WEIGHTS_CACHE_LIMIT", 4)
        plane = kernels.CryptoPlane(MATMUL_PRIME, 64, 21)
        rng = random.Random(7)
        for _ in range(30):
            pids = tuple(sorted(rng.sample(range(64), 22)))
            plane.weights_for(pids)
        assert len(plane.weight_cache) <= 4


class TestReconstructionWeights:
    @pytest.mark.parametrize("prime,n", [(MATMUL_PRIME, 64), (SPLIT_PRIME, 32)])
    def test_subset_weights_match_lagrange(self, prime, n):
        plan = kernels.get_eval_plan(prime, n)
        rng = random.Random(8)
        for _ in range(20):
            k = rng.randrange(1, n // 3 + 2)
            pids = tuple(sorted(rng.sample(range(n), k)))
            xs = tuple(pid + 1 for pid in pids)
            assert plan.subset_weights(pids) == kernels.lagrange_weights_at_zero(prime, xs)

    def test_reconstruct_at_zero_matches_interpolate(self):
        plane = kernels.CryptoPlane(MATMUL_PRIME, 64, 21)
        rng = random.Random(9)
        for _ in range(10):
            pids = tuple(sorted(rng.sample(range(64), 22)))
            ys = [rng.randrange(MATMUL_PRIME) for _ in pids]
            xs = tuple(pid + 1 for pid in pids)
            assert plane.reconstruct_at_zero(pids, ys) == kernels.interpolate_at_zero(
                MATMUL_PRIME, xs, ys
            )

    def test_direct_weights_match_basis_column(self):
        # The rewritten lagrange_weights_at_zero must equal basis[i][0].
        rng = random.Random(10)
        for _ in range(10):
            xs = tuple(sorted(rng.sample(range(1, 200), rng.randrange(1, 12))))
            kernels.clear_lagrange_cache()
            basis = kernels.lagrange_basis(SPLIT_PRIME, xs)
            assert kernels.lagrange_weights_at_zero(SPLIT_PRIME, xs) == tuple(
                b[0] for b in basis
            )


class TestLagrangeCacheInfo:
    def test_info_shape(self):
        kernels.clear_lagrange_cache()
        kernels.lagrange_weights_at_zero(SMALL_PRIME, (1, 2, 3))
        kernels.lagrange_weights_at_zero(SMALL_PRIME, (1, 2, 3))
        info = kernels.lagrange_cache_info()
        assert info.hits >= 1
        payload = info.to_dict()
        assert set(payload) >= {"hits", "misses", "currsize", "basis", "weights_at_zero"}
        assert payload["weights_at_zero"]["hits"] >= 1
