"""Tests for Shamir secret sharing and robust reconstruction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import Field
from repro.crypto.shamir import (
    ShamirShare,
    additive_shares,
    reconstruct,
    reconstruct_robust,
    share_from_wire,
    share_secret,
    shares_to_wire,
    verify_share,
)
from repro.errors import DecodingError, InterpolationError

FIELD = Field(2_147_483_647)


class TestSharing:
    def test_share_count_and_indices(self):
        _, shares = share_secret(FIELD, 99, n=7, t=2, rng=random.Random(0))
        assert sorted(shares) == list(range(1, 8))

    def test_polynomial_embeds_secret(self):
        poly, _ = share_secret(FIELD, 1234, n=4, t=1, rng=random.Random(1))
        assert poly.constant_term == 1234
        assert poly.degree <= 1

    def test_all_shares_verify(self):
        poly, shares = share_secret(FIELD, 5, n=7, t=2, rng=random.Random(2))
        assert all(verify_share(poly, share) for share in shares.values())

    def test_tampered_share_fails_verification(self):
        poly, shares = share_secret(FIELD, 5, n=4, t=1, rng=random.Random(3))
        bad = ShamirShare(index=1, value=shares[1].value + 1)
        assert not verify_share(poly, bad)

    def test_wire_roundtrip(self):
        _, shares = share_secret(FIELD, 42, n=4, t=1, rng=random.Random(4))
        wire = shares_to_wire(shares)
        restored = {i: share_from_wire(FIELD, i, v) for i, v in wire.items()}
        assert restored == shares


class TestReconstruction:
    def test_exact_threshold(self):
        _, shares = share_secret(FIELD, 777, n=7, t=2, rng=random.Random(5))
        subset = [shares[i] for i in (1, 4, 6)]
        assert reconstruct(FIELD, subset, degree=2) == 777

    def test_too_few_shares_rejected(self):
        _, shares = share_secret(FIELD, 777, n=7, t=2, rng=random.Random(6))
        with pytest.raises(InterpolationError):
            reconstruct(FIELD, [shares[1], shares[2]], degree=2)

    def test_any_threshold_subset_works(self):
        _, shares = share_secret(FIELD, 31337, n=7, t=2, rng=random.Random(7))
        import itertools

        for subset in itertools.combinations(range(1, 8), 3):
            assert reconstruct(FIELD, [shares[i] for i in subset], degree=2) == 31337

    def test_fewer_than_threshold_reveals_nothing(self):
        """Any t shares are consistent with every possible secret."""
        from repro.crypto.polynomial import Polynomial

        _, shares = share_secret(FIELD, 0, n=4, t=1, rng=random.Random(8))
        observed = shares[2]
        # For any candidate secret there is a degree-1 polynomial through
        # (0, candidate) and (2, observed) -- so one share is uninformative.
        for candidate in (0, 1, 999):
            poly = Polynomial.interpolate(FIELD, [(0, candidate), (2, observed.value)])
            assert poly(2) == observed.value
            assert poly(0) == candidate


class TestRobustReconstruction:
    def test_corrects_t_errors_with_full_shares(self):
        _, shares = share_secret(FIELD, 2024, n=4, t=1, rng=random.Random(9))
        corrupted = dict(shares)
        corrupted[3] = ShamirShare(index=3, value=shares[3].value + 5)
        assert (
            reconstruct_robust(FIELD, corrupted.values(), degree=1, max_errors=1) == 2024
        )

    def test_needs_enough_shares(self):
        _, shares = share_secret(FIELD, 2024, n=4, t=1, rng=random.Random(10))
        with pytest.raises(DecodingError):
            reconstruct_robust(
                FIELD, [shares[1], shares[2], shares[3]], degree=1, max_errors=1
            )

    def test_two_errors_among_seven(self):
        _, shares = share_secret(FIELD, 555, n=7, t=2, rng=random.Random(11))
        corrupted = dict(shares)
        corrupted[1] = ShamirShare(index=1, value=FIELD(0))
        corrupted[5] = ShamirShare(index=5, value=FIELD(123456))
        assert (
            reconstruct_robust(FIELD, corrupted.values(), degree=2, max_errors=2) == 555
        )


class TestAdditiveSharing:
    def test_shares_sum_to_secret(self):
        rng = random.Random(12)
        shares = additive_shares(FIELD, 90, 5, rng)
        total = FIELD(0)
        for share in shares:
            total = total + share
        assert total == 90

    def test_single_share_is_secret(self):
        shares = additive_shares(FIELD, 7, 1, random.Random(13))
        assert len(shares) == 1 and shares[0] == 7

    def test_rejects_zero_count(self):
        with pytest.raises(InterpolationError):
            additive_shares(FIELD, 7, 0, random.Random(14))


@settings(max_examples=40)
@given(
    secret=st.integers(0, 2_147_483_646),
    n=st.integers(4, 10),
    seed=st.integers(0, 100_000),
)
def test_share_reconstruct_roundtrip(secret, n, seed):
    """Sharing then reconstructing from any t+1 shares returns the secret."""
    t = (n - 1) // 3
    rng = random.Random(seed)
    _, shares = share_secret(FIELD, secret, n=n, t=t, rng=rng)
    chosen = rng.sample(sorted(shares), t + 1)
    assert reconstruct(FIELD, [shares[i] for i in chosen], degree=t) == secret


@settings(max_examples=25)
@given(secret=st.integers(0, 1_000_000), seed=st.integers(0, 100_000))
def test_robust_reconstruction_with_adversarial_share(secret, seed):
    """Berlekamp-Welch corrects a single adversarial share at n=4, t=1."""
    rng = random.Random(seed)
    _, shares = share_secret(FIELD, secret, n=4, t=1, rng=rng)
    victim = rng.choice(sorted(shares))
    corrupted = dict(shares)
    corrupted[victim] = ShamirShare(index=victim, value=shares[victim].value + rng.randrange(1, 1000))
    assert reconstruct_robust(FIELD, corrupted.values(), degree=1, max_errors=1) == secret
