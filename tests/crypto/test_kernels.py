"""Property tests: the raw-int kernels agree with the object-layer algebra.

The oracles here are written directly against ``FieldElement`` arithmetic
(naive textbook formulas), *not* against the production ``Polynomial``
methods -- the production path delegates to the kernels, so an independent
implementation is what actually pins the semantics.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import kernels
from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.crypto.field import Field, FieldElement, is_probable_prime
from repro.crypto.polynomial import Polynomial
from repro.crypto.reed_solomon import berlekamp_welch
from repro.crypto.shamir import ShamirShare, reconstruct, reconstruct_robust, share_secret
from repro.errors import DecodingError, FieldError, InterpolationError

PRIME = 101
FIELD = Field(PRIME)
BIG_PRIME = 2_147_483_647

coeff_lists = st.lists(st.integers(0, PRIME - 1), min_size=1, max_size=8)


def naive_eval(coeffs, x):
    """Oracle: sum of c_i * x^i using FieldElement arithmetic."""
    total = FIELD.zero()
    for power, coeff in enumerate(coeffs):
        total = total + FIELD(coeff) * (FIELD(x) ** power)
    return total.value


def naive_lagrange(points):
    """Oracle: direct Lagrange sum L(x) = sum_i y_i prod_j (x - x_j)/(x_i - x_j)."""

    def basis_at(i, x):
        acc = FIELD.one()
        for j, (xj, _) in enumerate(points):
            if j != i:
                acc = acc * (FIELD(x) - FIELD(xj)) / (FIELD(points[i][0]) - FIELD(xj))
        return acc

    def evaluate(x):
        total = FIELD.zero()
        for i, (_, yi) in enumerate(points):
            total = total + FIELD(yi) * basis_at(i, x)
        return total.value

    return evaluate


class TestScalarKernels:
    @given(value=st.integers(1, PRIME - 1))
    def test_mod_inv_matches_field(self, value):
        assert kernels.mod_inv(PRIME, value) == FIELD(value).inverse().value

    def test_mod_inv_zero_raises(self):
        with pytest.raises(FieldError):
            kernels.mod_inv(PRIME, 0)

    @given(values=st.lists(st.integers(1, PRIME - 1), max_size=12))
    def test_batch_inverse_matches_individual(self, values):
        assert kernels.batch_inverse(PRIME, values) == [
            kernels.mod_inv(PRIME, v) for v in values
        ]

    def test_batch_inverse_rejects_zero(self):
        with pytest.raises(FieldError):
            kernels.batch_inverse(PRIME, [3, 0, 5])


class TestPolynomialKernels:
    @given(coeffs=coeff_lists, x=st.integers(0, PRIME - 1))
    def test_horner_matches_naive(self, coeffs, x):
        assert kernels.horner(PRIME, coeffs, x) == naive_eval(coeffs, x)

    @given(a=coeff_lists, b=coeff_lists, x=st.integers(0, PRIME - 1))
    def test_mul_is_pointwise_product(self, a, b, x):
        product = kernels.poly_mul(PRIME, a, b)
        assert kernels.horner(PRIME, product, x) == (
            naive_eval(a, x) * naive_eval(b, x)
        ) % PRIME

    @given(a=coeff_lists, b=coeff_lists)
    def test_divmod_roundtrip(self, a, b):
        if all(c == 0 for c in b):
            with pytest.raises(InterpolationError):
                kernels.poly_divmod(PRIME, a, b)
            return
        quotient, remainder = kernels.poly_divmod(PRIME, a, b)
        recomposed = kernels.poly_add(
            PRIME, kernels.poly_mul(PRIME, quotient, b), remainder
        )
        assert kernels.poly_trim(recomposed) == kernels.poly_trim(a)


class TestInterpolation:
    @given(data=st.data())
    def test_interpolate_matches_naive_lagrange(self, data):
        k = data.draw(st.integers(1, 7))
        xs = data.draw(
            st.lists(
                st.integers(0, PRIME - 1), min_size=k, max_size=k, unique=True
            )
        )
        ys = data.draw(st.lists(st.integers(0, PRIME - 1), min_size=k, max_size=k))
        coeffs = kernels.interpolate(PRIME, tuple(xs), ys)
        oracle = naive_lagrange(list(zip(xs, ys)))
        for x in range(0, PRIME, 7):
            assert kernels.horner(PRIME, coeffs, x) == oracle(x)

    @given(data=st.data())
    def test_interpolate_at_zero_is_constant_term(self, data):
        k = data.draw(st.integers(1, 7))
        xs = tuple(
            data.draw(
                st.lists(st.integers(0, PRIME - 1), min_size=k, max_size=k, unique=True)
            )
        )
        ys = data.draw(st.lists(st.integers(0, PRIME - 1), min_size=k, max_size=k))
        assert kernels.interpolate_at_zero(PRIME, xs, ys) == kernels.interpolate(
            PRIME, xs, ys
        )[0]

    def test_duplicate_points_raise(self):
        with pytest.raises(InterpolationError):
            kernels.interpolate(PRIME, (1, 1), [2, 3])

    def test_empty_raises(self):
        with pytest.raises(InterpolationError):
            kernels.interpolate(PRIME, (), [])

    def test_basis_is_memoised(self):
        kernels.clear_lagrange_cache()
        first = kernels.lagrange_basis(PRIME, (1, 2, 3))
        second = kernels.lagrange_basis(PRIME, (1, 2, 3))
        assert first is second
        assert kernels.lagrange_cache_info().hits >= 1

    @given(coeffs=coeff_lists)
    def test_polynomial_veneer_roundtrip(self, coeffs):
        """Polynomial.interpolate through sample points recovers the polynomial."""
        poly = Polynomial(FIELD, coeffs)
        points = [(x, poly(x)) for x in range(poly.degree + 1)]
        assert Polynomial.interpolate(FIELD, points) == poly


class TestBerlekampWelchKernel:
    @settings(deadline=None)
    @given(data=st.data())
    def test_decodes_corrupted_codewords(self, data):
        degree = data.draw(st.integers(0, 3))
        max_errors = data.draw(st.integers(0, 3))
        n = degree + 1 + 2 * max_errors
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        coeffs = tuple(rng.randrange(PRIME) for _ in range(degree + 1))
        xs = list(range(1, n + 1))
        ys = kernels.eval_at_many(PRIME, coeffs, xs)
        error_positions = data.draw(
            st.lists(
                st.integers(0, n - 1), max_size=max_errors, unique=True
            )
        )
        for position in error_positions:
            ys[position] = (ys[position] + 1 + rng.randrange(PRIME - 1)) % PRIME
        decoded = kernels.berlekamp_welch_raw(PRIME, xs, ys, degree, max_errors)
        assert decoded == kernels.poly_trim(coeffs)

    def test_too_many_errors_raise(self):
        coeffs = (5, 7)
        xs = list(range(1, 6))
        ys = kernels.eval_at_many(PRIME, coeffs, xs)
        ys = [(y + 3) % PRIME for y in ys[:3]] + ys[3:]  # 3 errors, 1 tolerated
        with pytest.raises(DecodingError):
            kernels.berlekamp_welch_raw(PRIME, xs, ys, 1, 1)

    def test_object_layer_agrees_with_kernel(self):
        rng = random.Random(3)
        field = Field(BIG_PRIME)
        _, shares = share_secret(field, 424242, 16, 5, rng)
        corrupted = list(shares.values())
        for index in range(5):
            share = corrupted[index]
            corrupted[index] = ShamirShare(share.index, share.value + 9)
        points = [(field(s.index), s.value) for s in corrupted]
        poly = berlekamp_welch(field, points, 5, 5)
        assert poly.constant_term.value == 424242
        assert reconstruct_robust(field, corrupted, 5, 5).value == 424242


class TestShamirFastPath:
    @given(secret=st.integers(0, PRIME - 1), seed=st.integers(0, 1000))
    def test_share_then_reconstruct(self, secret, seed):
        rng = random.Random(seed)
        polynomial, shares = share_secret(FIELD, secret, 7, 2, rng)
        # Shares are evaluations of the sharing polynomial (oracle: naive eval).
        for index, share in shares.items():
            assert share.value.value == naive_eval(polynomial.to_ints(), index)
        subset = [shares[i] for i in (2, 5, 7)]
        assert reconstruct(FIELD, subset, 2).value == secret

    def test_duplicate_share_indices_raise(self):
        shares = [
            ShamirShare(1, FIELD(4)),
            ShamirShare(1, FIELD(5)),
            ShamirShare(2, FIELD(6)),
        ]
        with pytest.raises(InterpolationError):
            reconstruct(FIELD, shares, 2)


class TestBivariateKernels:
    @given(seed=st.integers(0, 500), degree=st.integers(0, 3))
    def test_row_matches_direct_evaluation(self, seed, degree):
        rng = random.Random(seed)
        bivariate = SymmetricBivariatePolynomial.random(FIELD, degree, rng, secret=7)
        for i in range(1, degree + 3):
            row = bivariate.row(i)
            for j in range(0, degree + 3):
                direct = bivariate(i, j)
                assert row(j) == direct
                # And against the fully naive double sum:
                total = FIELD.zero()
                for a, mrow in enumerate(bivariate.coefficients):
                    for b, coeff in enumerate(mrow):
                        total = total + coeff * (FIELD(i) ** a) * (FIELD(j) ** b)
                assert direct == total

    def test_interpolate_from_rows_rejects_foreign_field_rows(self):
        other = Field(97)
        bivariate = SymmetricBivariatePolynomial.random(
            other, 0, random.Random(0), secret=3
        )
        rows = [(1, bivariate.row(1))]
        with pytest.raises(FieldError):
            SymmetricBivariatePolynomial.interpolate_from_rows(FIELD, rows, 0)

    @given(seed=st.integers(0, 500))
    def test_interpolate_from_rows_roundtrip(self, seed):
        rng = random.Random(seed)
        degree = 2
        bivariate = SymmetricBivariatePolynomial.random(FIELD, degree, rng, secret=9)
        rows = [(i, bivariate.row(i)) for i in range(1, degree + 2)]
        recovered = SymmetricBivariatePolynomial.interpolate_from_rows(
            FIELD, rows, degree
        )
        assert recovered == bivariate


class TestFieldCaching:
    def test_fields_are_interned(self):
        assert Field(PRIME) is FIELD
        assert Field(BIG_PRIME) is Field(BIG_PRIME)

    def test_interned_field_still_validates(self):
        with pytest.raises(FieldError):
            Field(100)
        with pytest.raises(FieldError):
            Field(1)

    def test_pickle_roundtrips_to_interned_instance(self):
        assert pickle.loads(pickle.dumps(FIELD)) is FIELD
        element = FIELD(17)
        restored = pickle.loads(pickle.dumps(element))
        assert restored == element and restored.field is FIELD

    def test_primality_cache_hits(self):
        is_probable_prime.cache_clear()
        assert is_probable_prime(BIG_PRIME)
        before = is_probable_prime.cache_info().hits
        for _ in range(5):
            Field(BIG_PRIME)
        assert is_probable_prime.cache_info().hits >= before
