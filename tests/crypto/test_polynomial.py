"""Tests for univariate polynomials and Lagrange interpolation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.field import Field
from repro.crypto.polynomial import Polynomial
from repro.errors import InterpolationError

FIELD = Field(101)


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        assert Polynomial(FIELD, [1, 2, 0, 0]).degree == 1

    def test_zero_polynomial_degree(self):
        assert Polynomial.zero(FIELD).degree == 0
        assert Polynomial(FIELD, []).degree == 0

    def test_constant(self):
        poly = Polynomial.constant(FIELD, 7)
        assert poly.degree == 0
        assert poly(55) == 7

    def test_random_respects_constant_term(self):
        rng = random.Random(1)
        poly = Polynomial.random(FIELD, 3, rng, constant_term=42)
        assert poly.constant_term == 42
        assert poly.degree <= 3

    def test_random_negative_degree_rejected(self):
        with pytest.raises(InterpolationError):
            Polynomial.random(FIELD, -1, random.Random(0))

    def test_wire_roundtrip(self):
        poly = Polynomial(FIELD, [3, 1, 4, 1, 5])
        assert Polynomial.from_ints(FIELD, poly.to_ints()) == poly


class TestEvaluation:
    def test_horner_matches_naive(self):
        poly = Polynomial(FIELD, [3, 0, 2, 5])
        for x in range(10):
            naive = (3 + 2 * x**2 + 5 * x**3) % 101
            assert poly(x) == naive

    def test_shares_are_evaluations(self):
        poly = Polynomial(FIELD, [7, 1])
        shares = poly.shares(4)
        assert set(shares) == {1, 2, 3, 4}
        assert all(shares[i] == poly(i) for i in shares)

    def test_evaluate_at_many(self):
        poly = Polynomial(FIELD, [1, 1])
        assert poly.evaluate_at([0, 1, 2]) == [FIELD(1), FIELD(2), FIELD(3)]


class TestInterpolation:
    def test_through_line(self):
        poly = Polynomial.interpolate(FIELD, [(1, 2), (2, 4)])
        assert poly(0) == 0
        assert poly(3) == 6

    def test_recovers_original(self):
        rng = random.Random(7)
        original = Polynomial.random(FIELD, 4, rng)
        points = [(x, original(x)) for x in range(1, 6)]
        assert Polynomial.interpolate(FIELD, points) == original

    def test_duplicate_x_rejected(self):
        with pytest.raises(InterpolationError):
            Polynomial.interpolate(FIELD, [(1, 1), (1, 2)])

    def test_empty_rejected(self):
        with pytest.raises(InterpolationError):
            Polynomial.interpolate(FIELD, [])

    def test_single_point_is_constant(self):
        poly = Polynomial.interpolate(FIELD, [(5, 9)])
        assert poly.degree == 0
        assert poly(0) == 9


class TestArithmetic:
    def test_addition(self):
        a = Polynomial(FIELD, [1, 2])
        b = Polynomial(FIELD, [3, 4, 5])
        assert (a + b) == Polynomial(FIELD, [4, 6, 5])

    def test_subtraction_cancels(self):
        a = Polynomial(FIELD, [9, 8, 7])
        assert (a - a) == Polynomial.zero(FIELD)

    def test_scalar_multiplication(self):
        a = Polynomial(FIELD, [1, 2, 3])
        assert a * 2 == Polynomial(FIELD, [2, 4, 6])
        assert 2 * a == a * 2

    def test_polynomial_multiplication(self):
        a = Polynomial(FIELD, [1, 1])  # (1 + x)
        b = Polynomial(FIELD, [1, 100])  # (1 - x) mod 101
        assert a * b == Polynomial(FIELD, [1, 0, 100])  # 1 - x^2

    def test_divmod_roundtrip(self):
        rng = random.Random(3)
        numerator = Polynomial.random(FIELD, 6, rng)
        divisor = Polynomial.random(FIELD, 2, rng)
        if divisor.coefficients[-1].value == 0:
            divisor = divisor + Polynomial(FIELD, [0, 0, 1])
        quotient, remainder = numerator.divmod(divisor)
        assert quotient * divisor + remainder == numerator
        assert remainder.degree < divisor.degree or remainder == Polynomial.zero(FIELD)

    def test_division_by_zero_rejected(self):
        with pytest.raises(InterpolationError):
            Polynomial(FIELD, [1, 2]).divmod(Polynomial.zero(FIELD))

    def test_hash_consistent_with_eq(self):
        a = Polynomial(FIELD, [1, 2, 0])
        b = Polynomial(FIELD, [1, 2])
        assert a == b
        assert hash(a) == hash(b)


@settings(max_examples=50)
@given(
    coefficients=st.lists(st.integers(0, 100), min_size=1, max_size=6),
    x=st.integers(0, 100),
    y=st.integers(0, 100),
)
def test_evaluation_is_linear(coefficients, x, y):
    """(f + g)(x) == f(x) + g(x) and (c*f)(x) == c*f(x)."""
    f = Polynomial(FIELD, coefficients)
    g = Polynomial(FIELD, list(reversed(coefficients)))
    assert (f + g)(x) == f(x) + g(x)
    assert (f * y)(x) == f(x) * y


@settings(max_examples=30)
@given(
    degree=st.integers(0, 5),
    seed=st.integers(0, 10_000),
)
def test_interpolation_roundtrip_property(degree, seed):
    """Interpolating degree+1 evaluations recovers any polynomial exactly."""
    rng = random.Random(seed)
    original = Polynomial.random(FIELD, degree, rng)
    points = [(x, original(x)) for x in range(1, degree + 2)]
    assert Polynomial.interpolate(FIELD, points) == original
