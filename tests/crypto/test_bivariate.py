"""Tests for symmetric bivariate polynomials (the SVSS sharing structure)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.crypto.field import Field
from repro.errors import InterpolationError

FIELD = Field(101)


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(InterpolationError):
            SymmetricBivariatePolynomial(FIELD, [[1, 2], [3, 4], [5, 6]])

    def test_rejects_asymmetric(self):
        with pytest.raises(InterpolationError):
            SymmetricBivariatePolynomial(FIELD, [[1, 2], [3, 4]])

    def test_random_embeds_secret(self):
        rng = random.Random(0)
        poly = SymmetricBivariatePolynomial.random(FIELD, 2, rng, secret=42)
        assert poly.secret == 42
        assert poly(0, 0) == 42

    def test_random_is_symmetric(self):
        rng = random.Random(1)
        poly = SymmetricBivariatePolynomial.random(FIELD, 3, rng)
        for x in range(5):
            for y in range(5):
                assert poly(x, y) == poly(y, x)

    def test_degree(self):
        rng = random.Random(2)
        assert SymmetricBivariatePolynomial.random(FIELD, 4, rng).degree == 4


class TestRows:
    def test_row_matches_evaluation(self):
        rng = random.Random(3)
        poly = SymmetricBivariatePolynomial.random(FIELD, 2, rng, secret=9)
        for index in range(1, 5):
            row = poly.row(index)
            for y in range(6):
                assert row(y) == poly(index, y)

    def test_rows_cross_consistency(self):
        """f_i(j) == f_j(i): the pairwise check SVSS relies on."""
        rng = random.Random(4)
        poly = SymmetricBivariatePolynomial.random(FIELD, 2, rng)
        rows = poly.rows(4)
        for i in range(1, 5):
            for j in range(1, 5):
                assert rows[i - 1](j) == rows[j - 1](i)

    def test_row_degree_bounded(self):
        rng = random.Random(5)
        poly = SymmetricBivariatePolynomial.random(FIELD, 3, rng)
        assert poly.row(2).degree <= 3

    def test_row_zero_evaluations_interpolate_secret(self):
        """The points (i, f_i(0)) lie on the degree-t polynomial F(x, 0)."""
        from repro.crypto.polynomial import Polynomial

        rng = random.Random(6)
        poly = SymmetricBivariatePolynomial.random(FIELD, 2, rng, secret=77)
        points = [(i, poly.row(i)(0)) for i in range(1, 4)]
        recovered = Polynomial.interpolate(FIELD, points)
        assert recovered(0) == 77


class TestReconstruction:
    def test_interpolate_from_rows_recovers(self):
        rng = random.Random(7)
        original = SymmetricBivariatePolynomial.random(FIELD, 2, rng, secret=13)
        rows = [(i, original.row(i)) for i in range(1, 4)]
        recovered = SymmetricBivariatePolynomial.interpolate_from_rows(FIELD, rows, 2)
        assert recovered == original

    def test_interpolate_needs_enough_rows(self):
        rng = random.Random(8)
        original = SymmetricBivariatePolynomial.random(FIELD, 2, rng)
        rows = [(i, original.row(i)) for i in range(1, 3)]
        with pytest.raises(InterpolationError):
            SymmetricBivariatePolynomial.interpolate_from_rows(FIELD, rows, 2)


@settings(max_examples=25)
@given(degree=st.integers(1, 4), secret=st.integers(0, 100), seed=st.integers(0, 10_000))
def test_symmetry_and_secret_property(degree, secret, seed):
    """Random sharings are symmetric and embed the secret, for any degree."""
    rng = random.Random(seed)
    poly = SymmetricBivariatePolynomial.random(FIELD, degree, rng, secret=secret)
    assert poly.secret == secret
    for x in range(degree + 2):
        for y in range(degree + 2):
            assert poly(x, y) == poly(y, x)
