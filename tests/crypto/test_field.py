"""Tests for prime-field arithmetic (repro.crypto.field)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.field import Field, FieldElement, is_probable_prime
from repro.errors import FieldError

PRIME = 101
FIELD = Field(PRIME)


class TestPrimality:
    @pytest.mark.parametrize("value", [2, 3, 5, 7, 101, 997, 2_147_483_647])
    def test_accepts_primes(self, value):
        assert is_probable_prime(value)

    @pytest.mark.parametrize("value", [0, 1, 4, 100, 561, 2_147_483_646])
    def test_rejects_composites(self, value):
        assert not is_probable_prime(value)


class TestFieldConstruction:
    def test_rejects_composite_modulus(self):
        with pytest.raises(FieldError):
            Field(100)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(FieldError):
            Field(1)

    def test_coercion_reduces_mod_p(self):
        assert FIELD(PRIME + 5).value == 5
        assert FIELD(-1).value == PRIME - 1

    def test_coercion_of_foreign_element_fails(self):
        other = Field(103)
        with pytest.raises(FieldError):
            FIELD(other(1))

    def test_zero_and_one(self):
        assert FIELD.zero().value == 0
        assert FIELD.one().value == 1

    def test_elements_batch_coercion(self):
        assert [e.value for e in FIELD.elements([1, 2, PRIME])] == [1, 2, 0]

    def test_order(self):
        assert FIELD.order == PRIME


class TestArithmetic:
    def test_addition_wraps(self):
        assert (FIELD(PRIME - 1) + FIELD(2)).value == 1

    def test_subtraction_wraps(self):
        assert (FIELD(0) - FIELD(1)).value == PRIME - 1

    def test_multiplication(self):
        assert (FIELD(10) * FIELD(11)).value == 110 % PRIME

    def test_negation(self):
        assert (-FIELD(1)).value == PRIME - 1

    def test_division(self):
        a, b = FIELD(17), FIELD(23)
        assert (a / b) * b == a

    def test_integer_operands(self):
        assert (FIELD(5) + 10).value == 15
        assert (10 + FIELD(5)).value == 15
        assert (FIELD(5) * 3).value == 15
        assert (3 - FIELD(5)).value == (3 - 5) % PRIME

    def test_pow(self):
        assert (FIELD(3) ** 4).value == 81 % PRIME
        assert (FIELD(3) ** 0).value == 1

    def test_negative_pow_is_inverse_pow(self):
        assert FIELD(3) ** -1 == FIELD(3).inverse()

    def test_zero_inverse_raises(self):
        with pytest.raises(FieldError):
            FIELD.zero().inverse()

    def test_division_by_zero_raises(self):
        with pytest.raises(FieldError):
            FIELD(1) / FIELD(0)

    def test_cross_field_arithmetic_raises(self):
        with pytest.raises(FieldError):
            FIELD(1) + Field(103)(1)

    def test_equality_with_int(self):
        assert FIELD(5) == 5
        assert FIELD(5) == 5 + PRIME
        assert FIELD(5) != 6

    def test_bool_and_int_conversion(self):
        assert not FIELD(0)
        assert FIELD(1)
        assert int(FIELD(7)) == 7

    def test_hashable(self):
        assert len({FIELD(1), FIELD(1), FIELD(2)}) == 2


class TestRandomness:
    def test_random_in_range(self):
        rng = random.Random(0)
        for _ in range(100):
            assert 0 <= FIELD.random(rng).value < PRIME

    def test_random_nonzero(self):
        rng = random.Random(0)
        for _ in range(100):
            assert FIELD.random_nonzero(rng).value != 0


@given(a=st.integers(0, PRIME - 1), b=st.integers(0, PRIME - 1), c=st.integers(0, PRIME - 1))
def test_field_axioms(a, b, c):
    """Associativity, commutativity and distributivity hold."""
    fa, fb, fc = FIELD(a), FIELD(b), FIELD(c)
    assert (fa + fb) + fc == fa + (fb + fc)
    assert fa + fb == fb + fa
    assert (fa * fb) * fc == fa * (fb * fc)
    assert fa * fb == fb * fa
    assert fa * (fb + fc) == fa * fb + fa * fc


@given(a=st.integers(1, PRIME - 1))
def test_inverse_roundtrip(a):
    """x * x^-1 == 1 for every nonzero x."""
    element = FIELD(a)
    assert element * element.inverse() == FIELD.one()


@given(a=st.integers(0, PRIME - 1), b=st.integers(0, PRIME - 1))
def test_subtraction_is_inverse_of_addition(a, b):
    assert (FIELD(a) + FIELD(b)) - FIELD(b) == FIELD(a)
