"""Tests for the strong common coin (Algorithm 1, Theorem 3.5)."""

from __future__ import annotations

import pytest

from repro.adversary import (
    BadShareBehavior,
    CrashBehavior,
    DeterministicValueDealer,
    WithholdingDealerBehavior,
)
from repro.adversary.scheduling import isolate_party
from repro.core import api
from repro.net.scheduler import FIFOScheduler


class TestAgreementAndTermination:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_honest_parties_output_same_bit(self, seed):
        result = api.run_coinflip(4, seed=seed, rounds=2)
        assert not result.disagreement
        assert result.agreed_value in (0, 1)
        assert set(result.outputs) == {0, 1, 2, 3}

    def test_single_iteration(self):
        result = api.run_coinflip(4, seed=9, rounds=1)
        assert result.agreed_value in (0, 1)

    def test_larger_system(self):
        result = api.run_coinflip(7, seed=1, rounds=2)
        assert not result.disagreement
        assert len(result.outputs) == 7

    def test_fifo_scheduler(self):
        result = api.run_coinflip(4, seed=3, rounds=2, scheduler=FIFOScheduler())
        assert result.agreed_value in (0, 1)

    def test_isolating_scheduler(self):
        result = api.run_coinflip(4, seed=4, rounds=2, scheduler=isolate_party(2))
        assert not result.disagreement

    def test_theoretical_round_count_exposed(self):
        from repro.analysis.binomial import coinflip_iterations
        from repro.core.config import ProtocolParams
        from repro.net.runtime import Simulation
        from repro.protocols.coinflip import CoinFlip

        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        network = sim.build_network()
        instance = network.processes[0].create_protocol(
            ("coinflip",), CoinFlip.factory(epsilon=0.1, rounds_override=2)
        )
        assert instance.theoretical_rounds == coinflip_iterations(0.1, 4)
        assert instance.rounds == 2


class TestByzantineResilience:
    @pytest.mark.parametrize("seed", range(3))
    def test_crashed_party(self, seed):
        result = api.run_coinflip(
            4, seed=seed, rounds=2, corruptions={3: CrashBehavior.factory()}
        )
        assert not result.disagreement
        assert set(result.outputs) == {0, 1, 2}

    @pytest.mark.parametrize("seed", range(3))
    def test_withholding_dealer(self, seed):
        """A dealer withholding rows cannot block the coin (row recovery kicks in)."""
        result = api.run_coinflip(
            4,
            seed=seed,
            rounds=2,
            corruptions={0: WithholdingDealerBehavior.factory(victims=[2])},
        )
        assert not result.disagreement

    @pytest.mark.parametrize("seed", range(3))
    def test_bad_share_adversary(self, seed):
        """Corrupted reconstruction rows never break agreement of the final coin."""
        result = api.run_coinflip(
            4,
            seed=seed,
            rounds=2,
            corruptions={3: BadShareBehavior.factory()},
        )
        assert not result.disagreement
        assert result.agreed_value in (0, 1)

    def test_deterministic_dealer_does_not_break_agreement(self):
        result = api.run_coinflip(
            4,
            seed=11,
            rounds=2,
            corruptions={2: DeterministicValueDealer.factory(0)},
        )
        assert not result.disagreement


class TestBias:
    def test_both_outcomes_occur_across_seeds(self):
        """Sanity check on bias: both coin values appear over a batch of seeds."""
        values = [api.run_coinflip(4, seed=seed, rounds=1).agreed_value for seed in range(12)]
        assert 0 in values and 1 in values

    def test_iteration_coins_recorded(self):
        result = api.run_coinflip(4, seed=5, rounds=3)
        instance = result.network.processes[0].protocol(("coinflip",))
        coins = instance.iteration_coins
        assert len(coins) == 3
        assert all(value in (0, 1) for value in coins.values())

    def test_iteration_coins_agree_between_honest_parties(self):
        """The per-iteration coins (not only the final BA output) agree when no
        SVSS instance was attacked."""
        result = api.run_coinflip(4, seed=6, rounds=3)
        reference = result.network.processes[0].protocol(("coinflip",)).iteration_coins
        for process in result.network.processes[1:]:
            assert process.protocol(("coinflip",)).iteration_coins == reference
