"""Tests for A-Cast (Bracha reliable broadcast, Definition 4.4)."""

from __future__ import annotations

import pytest

from repro.adversary import CrashBehavior, EquivocatingACastSender, RandomNoiseBehavior
from repro.adversary.scheduling import favour_parties, isolate_party
from repro.core import api
from repro.core.config import ProtocolParams
from repro.net.runtime import Simulation
from repro.net.scheduler import FIFOScheduler
from repro.protocols.acast import ACast


class TestValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_honest_sender_value_delivered(self, seed):
        result = api.run_acast(4, ("payload", seed), sender=0, seed=seed)
        assert result.agreed_value == ("payload", seed)
        assert set(result.outputs) == {0, 1, 2, 3}

    @pytest.mark.parametrize("sender", [0, 1, 2, 3])
    def test_every_party_can_be_sender(self, sender):
        result = api.run_acast(4, f"from-{sender}", sender=sender, seed=sender)
        assert result.agreed_value == f"from-{sender}"

    def test_larger_system(self):
        result = api.run_acast(7, "seven", sender=3, seed=1)
        assert result.agreed_value == "seven"
        assert len(result.outputs) == 7

    def test_sender_without_value_rejected(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        with pytest.raises(ValueError):
            sim.run(("acast",), ACast.factory(0))

    def test_fifo_scheduler(self):
        result = api.run_acast(4, "fifo", sender=0, seed=0, scheduler=FIFOScheduler())
        assert result.agreed_value == "fifo"


class TestFaultTolerance:
    def test_crashed_receiver_does_not_block(self):
        result = api.run_acast(
            4, "v", sender=0, seed=2, corruptions={3: CrashBehavior.factory()}
        )
        assert set(result.outputs) == {0, 1, 2}
        assert result.agreed_value == "v"

    def test_noise_adversary_does_not_corrupt_delivery(self):
        result = api.run_acast(
            4, "signal", sender=0, seed=3, corruptions={2: RandomNoiseBehavior.factory()}
        )
        assert result.agreed_value == "signal"

    def test_isolated_party_catches_up(self):
        """A party starved by the scheduler still delivers once messages flow."""
        result = api.run_acast(
            4, "slow", sender=0, seed=4, scheduler=isolate_party(2)
        )
        assert result.agreed_value == "slow"
        assert 2 in result.outputs

    def test_adversary_favouring_scheduler(self):
        result = api.run_acast(
            4, "rushed", sender=1, seed=5, scheduler=favour_parties([0, 1])
        )
        assert result.agreed_value == "rushed"


class TestEquivocation:
    def _run_equivocation(self, seed):
        sim = Simulation(ProtocolParams.for_parties(4), seed=seed)
        sim.corrupt(0, EquivocatingACastSender.factory(("acast",), "left", "right"))
        network = sim.build_network()
        for process in network.processes:
            if not process.is_corrupted:
                process.create_protocol(("acast",), ACast.factory(0)).start()
        network.run_to_quiescence()
        return network.honest_outputs(("acast",))

    @pytest.mark.parametrize("seed", range(5))
    def test_no_conflicting_deliveries(self, seed):
        outputs = self._run_equivocation(seed)
        assert len({repr(v) for v in outputs.values()}) <= 1

    def test_message_complexity_with_honest_sender(self):
        from repro.analysis.complexity import acast_messages

        result = api.run_acast(4, "count-me", sender=0, seed=9)
        assert result.trace.messages_sent <= acast_messages(4)
