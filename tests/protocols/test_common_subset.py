"""Tests for the CommonSubset protocol (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.adversary import CrashBehavior
from repro.core import api
from repro.net.scheduler import FIFOScheduler


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_parties_output_same_set(self, seed):
        result = api.run_common_subset(4, [0, 1, 2, 3], seed=seed)
        assert not result.disagreement

    def test_output_at_least_quorum_size(self):
        result = api.run_common_subset(4, [0, 1, 2, 3], seed=1)
        assert len(result.agreed_value) >= 3

    def test_output_subset_of_ready_parties_when_only_quorum_ready(self):
        """Correctness: every index in S is backed by some honest predicate."""
        ready = [0, 1, 2]
        result = api.run_common_subset(4, ready, seed=2)
        assert set(result.agreed_value) <= set(ready)
        assert len(result.agreed_value) >= 3

    @pytest.mark.parametrize("seed", range(3))
    def test_with_crashed_party(self, seed):
        result = api.run_common_subset(
            4, [0, 1, 2], seed=seed, corruptions={3: CrashBehavior.factory()}
        )
        assert len(result.agreed_value) >= 3
        assert set(result.agreed_value) <= {0, 1, 2}

    def test_larger_system(self):
        result = api.run_common_subset(7, list(range(7)), seed=3)
        assert len(result.agreed_value) >= 5
        assert not result.disagreement

    def test_fifo_scheduler(self):
        result = api.run_common_subset(4, [0, 1, 2, 3], seed=0, scheduler=FIFOScheduler())
        assert not result.disagreement

    def test_subset_is_frozenset(self):
        result = api.run_common_subset(4, [0, 1, 2, 3], seed=4)
        assert isinstance(result.agreed_value, frozenset)
