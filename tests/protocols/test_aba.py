"""Tests for binary asynchronous Byzantine agreement (Definition 3.3)."""

from __future__ import annotations

import pytest

from repro.adversary import CrashBehavior, RandomNoiseBehavior
from repro.adversary.scheduling import isolate_party
from repro.core import api
from repro.net.scheduler import FIFOScheduler
from repro.protocols.aba import LocalCoinSource, OracleCoinSource, ProtocolCoinSource
from repro.protocols.weak_coin import WeakCommonCoin


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_input_is_output(self, value):
        result = api.run_aba(4, {pid: value for pid in range(4)}, seed=value)
        assert result.agreed_value == value

    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_with_crash(self, value):
        inputs = {0: value, 1: value, 2: value}
        result = api.run_aba(
            4, inputs, seed=7 + value, corruptions={3: CrashBehavior.factory()}
        )
        assert result.agreed_value == value

    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_larger_system(self, value):
        result = api.run_aba(7, {pid: value for pid in range(7)}, seed=value)
        assert result.agreed_value == value


class TestAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_inputs_agree(self, seed):
        inputs = {0: 0, 1: 1, 2: seed % 2, 3: (seed + 1) % 2}
        result = api.run_aba(4, inputs, seed=seed)
        assert not result.disagreement
        assert result.agreed_value in (0, 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_output_is_some_honest_input(self, seed):
        """With binary values and at least one of each, any output is valid;
        but with all-but-one identical the framework must not invent values."""
        inputs = {0: 1, 1: 1, 2: 1, 3: 0}
        result = api.run_aba(4, inputs, seed=seed)
        assert result.agreed_value in (0, 1)

    def test_mixed_inputs_with_crash(self):
        result = api.run_aba(
            4, {0: 0, 1: 1, 2: 0}, seed=3, corruptions={3: CrashBehavior.factory()}
        )
        assert not result.disagreement

    def test_noise_adversary(self):
        result = api.run_aba(
            4,
            {0: 1, 1: 0, 2: 1},
            seed=5,
            corruptions={3: RandomNoiseBehavior.factory()},
        )
        assert not result.disagreement

    def test_isolating_scheduler(self):
        result = api.run_aba(
            4, {0: 1, 1: 0, 2: 1, 3: 0}, seed=6, scheduler=isolate_party(1)
        )
        assert not result.disagreement

    def test_fifo_scheduler(self):
        result = api.run_aba(4, {0: 1, 1: 0, 2: 1, 3: 0}, seed=1, scheduler=FIFOScheduler())
        assert not result.disagreement


class TestCoinSources:
    def test_local_coin_terminates(self):
        result = api.run_aba(
            4, {0: 0, 1: 1, 2: 0, 3: 1}, seed=2, coin_source=LocalCoinSource()
        )
        assert not result.disagreement

    def test_weak_coin_protocol_source(self):
        """The fully information-theoretic stack: ABA driven by an SVSS-based weak coin."""
        source = ProtocolCoinSource(WeakCommonCoin.factory)
        result = api.run_aba(4, {0: 0, 1: 1, 2: 1, 3: 0}, seed=4, coin_source=source)
        assert not result.disagreement

    def test_oracle_coin_is_common(self):
        """All parties see the same oracle coin value for the same round."""
        from repro.core.config import ProtocolParams
        from repro.net.network import Network

        network = Network(ProtocolParams.for_parties(4), seed=0)
        source = OracleCoinSource(99)
        from repro.protocols.aba import BinaryAgreement

        instances = [
            BinaryAgreement(process, ("aba",), source) for process in network.processes
        ]
        coins = {source.immediate(instance, 5) for instance in instances}
        assert len(coins) == 1

    def test_oracle_coin_varies_with_round(self):
        from repro.core.config import ProtocolParams
        from repro.net.network import Network
        from repro.protocols.aba import BinaryAgreement

        network = Network(ProtocolParams.for_parties(4), seed=0)
        source = OracleCoinSource(1)
        instance = BinaryAgreement(network.processes[0], ("aba",), source)
        values = {source.immediate(instance, r) for r in range(64)}
        assert values == {0, 1}


class TestRobustness:
    def test_malformed_payloads_ignored(self):
        """Garbage BVAL/AUX rounds and values must not crash or corrupt agreement."""
        result = api.run_aba(
            4,
            {0: 1, 1: 1, 2: 0},
            seed=8,
            corruptions={3: RandomNoiseBehavior.factory(burst=4)},
        )
        assert not result.disagreement

    def test_statistical_validity_over_seeds(self):
        """Unanimous input 1 must never produce 0, over many schedules."""
        for seed in range(10):
            result = api.run_aba(4, {pid: 1 for pid in range(4)}, seed=seed)
            assert result.agreed_value == 1
