"""Tests for fair Byzantine agreement (Algorithm 3, Theorem 4.5)."""

from __future__ import annotations

import pytest

from repro.adversary import CrashBehavior, FBAValueInjector
from repro.adversary.scheduling import favour_parties
from repro.core import api
from repro.net.scheduler import FIFOScheduler


class TestValidity:
    @pytest.mark.parametrize("seed", range(4))
    def test_unanimous_inputs_win(self, seed):
        inputs = {pid: "agreed" for pid in range(4)}
        result = api.run_fba(4, inputs, seed=seed)
        assert result.agreed_value == "agreed"

    def test_unanimous_inputs_with_crash(self):
        inputs = {0: "x", 1: "x", 2: "x"}
        result = api.run_fba(4, inputs, seed=1, corruptions={3: CrashBehavior.factory()})
        assert result.agreed_value == "x"

    @pytest.mark.parametrize("seed", range(3))
    def test_unanimous_honest_beats_byzantine_value(self, seed):
        inputs = {0: "good", 1: "good", 2: "good", 3: "evil"}
        result = api.run_fba(
            4,
            inputs,
            seed=seed,
            corruptions={3: FBAValueInjector.factory("evil")},
            scheduler=favour_parties([3]),
        )
        assert result.agreed_value == "good"

    def test_majority_value_wins_without_fair_choice(self):
        """When a strict majority of the agreed set shares a value, it is chosen
        directly in step 5 -- no FairChoice invocation happens."""
        inputs = {0: "major", 1: "major", 2: "major", 3: "minor"}
        result = api.run_fba(4, inputs, seed=5)
        assert result.agreed_value == "major"
        fair_choice_messages = result.trace.sent_by_root.get("fba", 0)
        assert fair_choice_messages > 0  # protocol ran
        instance = result.network.processes[0].protocol(("fba",))
        assert instance.child(("fair_choice",)) is None


class TestAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_divergent_inputs_still_agree(self, seed):
        inputs = {0: "a", 1: "b", 2: "c", 3: "d"}
        result = api.run_fba(4, inputs, seed=seed)
        assert not result.disagreement
        assert result.agreed_value in {"a", "b", "c", "d"}

    def test_output_is_someones_input(self):
        inputs = {0: 10, 1: 20, 2: 30, 3: 40}
        result = api.run_fba(4, inputs, seed=9)
        assert result.agreed_value in inputs.values()

    def test_fifo_scheduler(self):
        inputs = {0: "a", 1: "b", 2: "c", 3: "d"}
        result = api.run_fba(4, inputs, seed=2, scheduler=FIFOScheduler())
        assert not result.disagreement

    def test_larger_system_unanimous(self):
        inputs = {pid: "seven" for pid in range(7)}
        result = api.run_fba(7, inputs, seed=1)
        assert result.agreed_value == "seven"

    def test_crash_with_divergent_inputs(self):
        inputs = {0: "a", 1: "b", 2: "c"}
        result = api.run_fba(4, inputs, seed=3, corruptions={3: CrashBehavior.factory()})
        assert not result.disagreement
        assert result.agreed_value in {"a", "b", "c"}


class TestFairValidity:
    def test_honest_values_win_reasonably_often(self):
        """Theorem 4.5: with divergent honest inputs the adversary's value wins
        at most about half the time.  We check a loose statistical bound."""
        adversary_wins = 0
        trials = 10
        for seed in range(trials):
            inputs = {0: "h0", 1: "h1", 2: "h2", 3: "evil"}
            result = api.run_fba(
                4,
                inputs,
                seed=300 + seed,
                corruptions={3: FBAValueInjector.factory("evil")},
            )
            if result.agreed_value == "evil":
                adversary_wins += 1
        assert adversary_wins <= 7  # loose bound; the expectation is <= 5
