"""Tests for the SVSS-based weak common coin (the baseline primitive)."""

from __future__ import annotations

import pytest

from repro.adversary import CrashBehavior
from repro.core import api
from repro.net.scheduler import FIFOScheduler


class TestWeakCoin:
    @pytest.mark.parametrize("seed", range(5))
    def test_terminates_and_outputs_bits(self, seed):
        result = api.run_weak_coin(4, seed=seed)
        assert set(result.outputs) == {0, 1, 2, 3}
        assert all(value in (0, 1) for value in result.outputs.values())

    def test_terminates_with_crash(self):
        result = api.run_weak_coin(4, seed=2, corruptions={3: CrashBehavior.factory()})
        assert set(result.outputs) == {0, 1, 2}

    def test_fifo_scheduler_agreement(self):
        """Under FIFO (synchronous-looking) scheduling all parties fix the same
        attached set and therefore the same coin."""
        result = api.run_weak_coin(4, seed=0, scheduler=FIFOScheduler())
        assert not result.disagreement

    def test_both_outcomes_possible(self):
        values = set()
        for seed in range(12):
            result = api.run_weak_coin(4, seed=seed, scheduler=FIFOScheduler())
            values.add(result.values[0])
            if values == {0, 1}:
                break
        assert values == {0, 1}

    def test_disagreement_can_happen_under_async_scheduling(self):
        """The defining weakness of a weak coin: parties may disagree.

        We only assert that the protocol never errors and that *some* outcome
        (agreement or disagreement) is produced for every seed; the measured
        disagreement rate is reported by benchmark E2.
        """
        outcomes = [api.run_weak_coin(4, seed=seed).disagreement for seed in range(8)]
        assert all(isinstance(outcome, bool) for outcome in outcomes)
