"""Tests for the shunning VSS (Definition 3.2)."""

from __future__ import annotations

import pytest

from repro.adversary import (
    BadShareBehavior,
    CrashBehavior,
    PointCorruptingBehavior,
    WithholdingDealerBehavior,
)
from repro.core import api
from repro.core.config import ProtocolParams
from repro.crypto.field import Field
from repro.net.runtime import Simulation
from repro.net.scheduler import FIFOScheduler
from repro.protocols.svss import SVSSShare, party_point


class TestHonestDealer:
    @pytest.mark.parametrize("secret", [0, 1, 12345, 2_147_483_646])
    def test_validity(self, secret):
        """Definition 3.2 Validity: honest dealer's secret is reconstructed."""
        result = api.run_svss(4, secret, dealer=0, seed=secret % 97)
        assert result.agreed_value == secret

    @pytest.mark.parametrize("dealer", [0, 1, 2, 3])
    def test_any_dealer(self, dealer):
        result = api.run_svss(4, 42, dealer=dealer, seed=dealer)
        assert result.agreed_value == 42

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_across_seeds(self, seed):
        result = api.run_svss(4, 7, dealer=0, seed=seed)
        assert not result.disagreement

    def test_larger_system(self):
        result = api.run_svss(7, 99, dealer=2, seed=3)
        assert result.agreed_value == 99
        assert len(result.outputs) == 7

    def test_no_shunning_in_honest_runs(self):
        result = api.run_svss(4, 5, dealer=0, seed=11)
        assert result.trace.total_shun_events() == 0

    def test_fifo_scheduler(self):
        result = api.run_svss(4, 5, dealer=1, seed=0, scheduler=FIFOScheduler())
        assert result.agreed_value == 5

    def test_crashed_party_does_not_block(self):
        result = api.run_svss(
            4, 1234, dealer=0, seed=2, corruptions={3: CrashBehavior.factory()}
        )
        assert result.agreed_value == 1234
        assert set(result.outputs) == {0, 1, 2}


class TestShareStateStructure:
    def test_share_row_matches_dealer_polynomial(self):
        """Each party's row is the dealer's bivariate polynomial restricted to its index."""
        params = ProtocolParams.for_parties(4)
        sim = Simulation(params, seed=5, scheduler=FIFOScheduler())
        network = sim.build_network()
        for process in network.processes:
            kwargs = {"value": 77} if process.pid == 0 else {}
            process.create_protocol(("share",), SVSSShare.factory(0)).start(**kwargs)
        network.run(until=lambda net: net.all_honest_finished(("share",)))
        dealer_poly = network.processes[0].protocol(("share",)).secret_polynomial
        assert dealer_poly.secret == 77
        for process in network.processes:
            share_state = process.protocol(("share",)).output
            assert share_state.row == dealer_poly.row(party_point(process.pid))
            assert not share_state.recovered

    def test_hiding_before_reconstruction(self):
        """No single party's row determines the secret (information-theoretic hiding)."""
        params = ProtocolParams.for_parties(4)
        field = Field(params.prime)
        sim = Simulation(params, seed=6, scheduler=FIFOScheduler())
        network = sim.build_network()
        for process in network.processes:
            kwargs = {"value": 0} if process.pid == 0 else {}
            process.create_protocol(("share",), SVSSShare.factory(0)).start(**kwargs)
        network.run(until=lambda net: net.all_honest_finished(("share",)))
        # Party 1's row constrains F(alpha_1, y) but leaves F(0, 0) free: for any
        # candidate secret there exists a consistent symmetric bivariate
        # polynomial, so the row alone carries no information about the secret.
        row = network.processes[1].protocol(("share",)).output.row
        from repro.crypto.polynomial import Polynomial

        for candidate in (0, 1, 99):
            g = Polynomial.interpolate(
                field, [(0, candidate), (party_point(1), row(0).value)]
            )
            assert g(party_point(1)) == row(0)
            assert g(0) == candidate


class TestWithholdingDealer:
    @pytest.mark.parametrize("victim", [1, 2])
    def test_victim_recovers_row(self, victim):
        """A dealer that withholds one victim's row cannot block termination."""
        result = api.run_svss(
            4,
            50,
            dealer=0,
            seed=victim,
            corruptions={0: WithholdingDealerBehavior.factory(victims=[victim])},
        )
        # The corrupted dealer still runs the honest code (minus the withheld
        # row), so every honest party terminates and agrees.
        assert victim in result.outputs
        values = {repr(v) for pid, v in result.outputs.items()}
        assert len(values) == 1

    def test_recovered_flag_set(self):
        from repro.protocols.svss import SVSSRec  # noqa: F401  (documentation import)

        sim_result = api.run_svss(
            4,
            50,
            dealer=0,
            seed=3,
            corruptions={0: WithholdingDealerBehavior.factory(victims=[2])},
        )
        network = sim_result.network
        share = network.processes[2].protocol(("svss_harness", "share"))
        assert share.output.recovered


class TestByzantineReconstruction:
    @pytest.mark.parametrize("seed", range(4))
    def test_binding_or_shun(self, seed):
        """A corrupted row in SVSS-Rec either changes nothing or triggers a shun."""
        result = api.run_svss(
            4,
            600 + seed,
            dealer=0,
            seed=seed,
            corruptions={3: BadShareBehavior.factory()},
        )
        wrong = [v for v in result.outputs.values() if v != 600 + seed]
        if wrong:
            assert result.trace.total_shun_events() >= 1
        # With an honest dealer the victimised parties can still be outvoted;
        # at minimum, agreement-or-shun must hold.
        if result.disagreement:
            assert result.trace.total_shun_events() >= 1

    @pytest.mark.parametrize("kind", ["ROW", "RECROW"])
    def test_empty_row_payload_is_the_zero_polynomial(self, kind):
        """A dealer sending an empty coefficient tuple must not crash anyone.

        The legacy ``Polynomial`` constructor normalised ``()`` to the zero
        polynomial; the raw-int validation path must do the same or honest
        parties index ``row[0]`` off the end mid-reconstruction.
        """
        from repro.adversary import HonestButMutatingBehavior

        def empty_rows(receiver, session, payload):
            if payload and payload[0] == kind:
                return receiver, session, (kind, ())
            return receiver, session, payload

        result = api.run_svss(
            4,
            12345,
            dealer=0,
            seed=1,
            corruptions={0: lambda process: HonestButMutatingBehavior(empty_rows)},
        )
        # Honest parties survive and reconstruct *something* consistently.
        assert set(result.outputs) == {1, 2, 3}

    def test_point_corruption_does_not_block_share(self):
        result = api.run_svss(
            4,
            321,
            dealer=0,
            seed=5,
            corruptions={2: PointCorruptingBehavior.factory()},
        )
        assert 0 in result.outputs and 1 in result.outputs and 3 in result.outputs

    def test_shun_events_bounded_by_n_squared(self):
        """Across many sessions the number of shun events stays below n^2."""
        total = 0
        for seed in range(6):
            result = api.run_svss(
                4,
                seed,
                dealer=0,
                seed=seed,
                corruptions={3: BadShareBehavior.factory()},
            )
            total += result.trace.total_shun_events()
        assert total < 16
