"""Tests for FairChoice (Algorithm 2, Theorem 4.3)."""

from __future__ import annotations

import pytest

from repro.adversary import CrashBehavior
from repro.core import api
from repro.core.config import ProtocolParams
from repro.net.runtime import Simulation
from repro.protocols.fair_choice import FairChoice


class TestCorrectness:
    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_output_in_range_and_agreed(self, m):
        result = api.run_fair_choice(4, m, seed=m)
        assert not result.disagreement
        assert 0 <= result.agreed_value < m

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_across_seeds(self, seed):
        result = api.run_fair_choice(4, 4, seed=seed)
        assert not result.disagreement

    def test_with_crashed_party(self):
        result = api.run_fair_choice(
            4, 3, seed=1, corruptions={3: CrashBehavior.factory()}
        )
        assert 0 <= result.agreed_value < 3
        assert set(result.outputs) == {0, 1, 2}

    def test_rejects_small_m(self):
        sim = Simulation(ProtocolParams.for_parties(4), seed=0)
        with pytest.raises(ValueError):
            sim.run(("fc",), FairChoice.factory(coinflip_rounds_override=1), common_input={"m": 2})

    def test_bit_count_matches_analysis(self):
        from repro.analysis.binomial import fair_choice_bits

        result = api.run_fair_choice(4, 3, seed=2)
        instance = result.network.processes[0].protocol(("fair_choice",))
        assert instance.bits == fair_choice_bits(3)
        assert len(instance.coin_bits) == instance.bits


class TestFairness:
    def test_multiple_outcomes_possible(self):
        """Across seeds the choice is not constant (no trivial fixed winner)."""
        outcomes = {api.run_fair_choice(4, 3, seed=seed).agreed_value for seed in range(10)}
        assert len(outcomes) >= 2

    def test_majority_subset_hit_rate(self):
        """Any majority subset should win at least roughly half the elections."""
        m = 3
        target = {0, 1}
        hits = sum(
            1
            for seed in range(14)
            if api.run_fair_choice(4, m, seed=100 + seed).agreed_value in target
        )
        assert hits >= 5  # statistical sanity bound well below the expected 2/3 * 14
