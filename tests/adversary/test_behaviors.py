"""Tests for the adversary behaviour framework."""

from __future__ import annotations

import pytest

from repro.adversary import (
    CrashBehavior,
    HonestButMutatingBehavior,
    RandomNoiseBehavior,
    ReplayBehavior,
    SilentAfterBehavior,
    WithholdingDealerBehavior,
    crash_all,
    corrupt_map,
)
from repro.core import api
from repro.core.config import ProtocolParams
from repro.net.network import Network
from repro.net.protocol import Protocol


class TestCrash:
    def test_crashed_party_sends_nothing(self):
        network = Network(ProtocolParams.for_parties(4), seed=0)
        process = network.processes[3]
        process.corrupt(CrashBehavior())
        network.submit(0, 3, ("x",), ("PING",))
        network.run_to_quiescence()
        assert network.trace.messages_sent == 1  # only the ping

    def test_crash_all_helper(self):
        mapping = crash_all([1, 2])
        assert set(mapping) == {1, 2}
        assert all(callable(factory) for factory in mapping.values())

    def test_corrupt_map_helper(self):
        mapping = corrupt_map([0, 3], CrashBehavior.factory())
        assert set(mapping) == {0, 3}

    def test_corruption_recorded_in_trace(self):
        network = Network(ProtocolParams.for_parties(4), seed=0)
        network.processes[2].corrupt(CrashBehavior())
        assert network.corrupted_pids() == [2]
        assert network.honest_pids() == [0, 1, 3]


class TestSilentAfter:
    def test_acts_honestly_then_stops(self):
        """The behaviour forwards a bounded number of deliveries to the honest code."""

        class CountingEcho(Protocol):
            def on_message(self, sender, payload):
                self.send(sender, "REPLY")

        network = Network(ProtocolParams.for_parties(4), seed=0)
        victim = network.processes[1]
        victim.create_protocol(("echo",), lambda p, s: CountingEcho(p, s)).start()
        victim.corrupt(SilentAfterBehavior(active_deliveries=2))
        for _ in range(5):
            network.submit(0, 1, ("echo",), ("PING",))
        network.run_to_quiescence()
        replies = network.trace.sent_by_kind.get("REPLY", 0)
        assert replies == 2


class TestMutators:
    def test_mutating_behavior_rewrites_outgoing(self):
        class Speaker(Protocol):
            def on_start(self, **_):
                self.send(1, "DATA", 100)

        def double(receiver, session, payload):
            if payload and payload[0] == "DATA":
                return receiver, session, ("DATA", payload[1] * 2)
            return receiver, session, payload

        network = Network(ProtocolParams.for_parties(4), seed=0)
        speaker = network.processes[0]
        speaker.corrupt(HonestButMutatingBehavior(double))
        speaker.create_protocol(("s",), lambda p, s: Speaker(p, s)).start()
        assert network.pending[0].payload == ("DATA", 200)

    def test_mutator_can_drop_messages(self):
        class Speaker(Protocol):
            def on_start(self, **_):
                self.send(1, "SECRET")
                self.send(2, "PUBLIC")

        def censor(receiver, session, payload):
            if payload[0] == "SECRET":
                return None
            return receiver, session, payload

        network = Network(ProtocolParams.for_parties(4), seed=0)
        speaker = network.processes[0]
        speaker.corrupt(HonestButMutatingBehavior(censor))
        speaker.create_protocol(("s",), lambda p, s: Speaker(p, s)).start()
        kinds = [m.kind for m in network.pending]
        assert kinds == ["PUBLIC"]

    def test_withholding_dealer_only_drops_rows_to_victims(self):
        behavior = WithholdingDealerBehavior(victims=[2])
        kept = behavior._mutate(1, ("s",), ("ROW", (1, 2)))
        dropped = behavior._mutate(2, ("s",), ("ROW", (1, 2)))
        other = behavior._mutate(2, ("s",), ("POINT", 5))
        assert kept is not None
        assert dropped is None
        assert other is not None


class TestNoiseAndReplay:
    def test_noise_behavior_emits_garbage(self):
        network = Network(ProtocolParams.for_parties(4), seed=0)
        noisy = network.processes[2]
        noisy.corrupt(RandomNoiseBehavior(burst=3))
        network.submit(0, 2, ("x",), ("PING",))
        network.step()
        assert len(network.pending) == 3

    def test_replay_behavior_echoes_back(self):
        network = Network(ProtocolParams.for_parties(4), seed=0)
        replayer = network.processes[1]
        replayer.corrupt(ReplayBehavior())
        network.submit(0, 1, ("x",), ("HELLO", 1))
        network.step()
        assert len(network.pending) == 1
        assert network.pending[0].receiver == 0
        assert network.pending[0].payload == ("HELLO", 1)


class TestHonestProtocolsIgnoreGarbage:
    @pytest.mark.parametrize("protocol", ["acast", "svss", "aba"])
    def test_noise_does_not_crash_protocols(self, protocol):
        corruptions = {3: RandomNoiseBehavior.factory(burst=3)}
        if protocol == "acast":
            result = api.run_acast(4, "v", sender=0, seed=1, corruptions=corruptions)
            assert result.agreed_value == "v"
        elif protocol == "svss":
            result = api.run_svss(4, 9, dealer=0, seed=1, corruptions=corruptions)
            assert 0 in result.outputs
        else:
            result = api.run_aba(4, {0: 1, 1: 1, 2: 1}, seed=1, corruptions=corruptions)
            assert result.agreed_value == 1
