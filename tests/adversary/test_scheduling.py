"""Tests for the named adversarial scheduling strategies."""

from __future__ import annotations

import random

from repro.adversary.scheduling import (
    delay_protocol,
    favour_parties,
    isolate_party,
    random_scheduler,
    split_brain,
)
from repro.core import api
from repro.net.message import Message

RNG = random.Random(0)


def _msg(sender, receiver, seq, root="p"):
    return Message(sender, receiver, (root,), ("X",), seq=seq)


class TestStrategies:
    def test_isolate_party_starves_victim(self):
        pending = [_msg(0, 1, 0), _msg(2, 3, 1), _msg(1, 2, 2)]
        scheduler = isolate_party(1)
        for _ in range(20):
            chosen = pending[scheduler.choose(pending, RNG, 0)]
            assert 1 not in (chosen.sender, chosen.receiver)

    def test_isolate_party_releases_when_only_victim_traffic(self):
        pending = [_msg(0, 1, 0), _msg(1, 2, 1)]
        scheduler = isolate_party(1)
        assert scheduler.choose(pending, RNG, 0) in (0, 1)

    def test_favour_parties_prefers_coalition(self):
        pending = [_msg(0, 3, 0), _msg(2, 3, 1), _msg(3, 2, 2)]
        scheduler = favour_parties([2, 3])
        chosen = pending[scheduler.choose(pending, RNG, 0)]
        assert chosen.sender in (2, 3) and chosen.receiver in (2, 3)

    def test_split_brain_prefers_intra_group(self):
        pending = [_msg(0, 2, 0), _msg(0, 1, 1), _msg(2, 3, 2)]
        scheduler = split_brain([0, 1], [2, 3], duration=50)
        chosen = pending[scheduler.choose(pending, RNG, 5)]
        assert {chosen.sender, chosen.receiver} in ({0, 1}, {2, 3})

    def test_delay_protocol_prefers_other_roots(self):
        pending = [_msg(0, 1, 0, root="aba"), _msg(0, 1, 1, root="svss")]
        scheduler = delay_protocol("aba")
        assert pending[scheduler.choose(pending, RNG, 0)].root == "svss"

    def test_random_scheduler_is_a_scheduler(self):
        pending = [_msg(0, 1, 0), _msg(1, 2, 1)]
        assert random_scheduler().choose(pending, RNG, 0) in (0, 1)


class TestStrategiesEndToEnd:
    def test_protocols_survive_every_named_strategy(self):
        """Every strategy is a valid asynchronous schedule: protocols terminate."""
        strategies = {
            "isolate": isolate_party(2),
            "favour": favour_parties([0, 1]),
            "split": split_brain([0, 1], [2, 3], duration=150),
            "delay-root": delay_protocol("missing-root"),
        }
        for name, scheduler in strategies.items():
            result = api.run_svss(4, 77, dealer=0, seed=1, scheduler=scheduler)
            assert result.agreed_value == 77, name

    def test_aba_under_every_named_strategy(self):
        strategies = [
            isolate_party(0),
            favour_parties([2, 3]),
            split_brain([0, 2], [1, 3], duration=100),
        ]
        for scheduler in strategies:
            result = api.run_aba(4, {0: 1, 1: 0, 2: 1, 3: 0}, seed=2, scheduler=scheduler)
            assert not result.disagreement
