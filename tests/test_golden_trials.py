"""Byte-identical regression fingerprints for whole protocol trials.

``golden_trials.json`` records ``[steps, sorted honest outputs, messages
sent, shun events]`` per (protocol, adversary, scheduler, seed) combination,
captured before the SVSS/ABA hot-path refactors.  Those refactors promise
*byte-identical* executions per seed -- same delivery counts, same outputs,
same shun events -- so any drift in these fingerprints is a behaviour change,
not an optimisation, and must fail loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.adversary import attacks, behaviors
from repro.core import api
from repro.net.scheduler import delay_to_parties

GOLDEN = json.loads((Path(__file__).parent / "golden_trials.json").read_text())


def _fingerprint(result, with_shuns: bool = True):
    entry = [
        result.steps,
        [[pid, value] for pid, value in sorted(result.outputs.items())],
        result.trace.messages_sent,
    ]
    if with_shuns:
        entry.append(len(result.trace.shun_events))
    return entry


def _check(key, result, with_shuns: bool = True):
    assert _fingerprint(result, with_shuns) == GOLDEN[key], key


@pytest.mark.parametrize("seed", range(3))
def test_svss_honest(seed):
    _check(f"svss_n7_s{seed}", api.run_svss(7, 12345, seed=seed))


@pytest.mark.parametrize("seed", range(3))
def test_svss_withholding_dealer(seed):
    result = api.run_svss(
        7,
        999,
        seed=seed,
        corruptions={0: attacks.WithholdingDealerBehavior.factory(victims=[3, 4])},
    )
    _check(f"svss_withhold_n7_s{seed}", result)


@pytest.mark.parametrize("seed", range(3))
def test_svss_bad_share(seed):
    result = api.run_svss(
        7, 31337, seed=seed, corruptions={2: attacks.BadShareBehavior.factory()}
    )
    _check(f"svss_badshare_n7_s{seed}", result)


@pytest.mark.parametrize("seed", range(2))
def test_svss_mixed_corruption(seed):
    result = api.run_svss(
        10,
        777,
        seed=seed,
        corruptions={
            1: attacks.PointCorruptingBehavior.factory(),
            5: attacks.BadShareBehavior.factory(),
        },
    )
    _check(f"svss_mixed_n10_s{seed}", result)


@pytest.mark.parametrize("seed", range(2))
def test_svss_withhold_under_starvation(seed):
    result = api.run_svss(
        7,
        4242,
        seed=seed,
        scheduler=delay_to_parties([3], max_delay_steps=120),
        corruptions={0: attacks.WithholdingDealerBehavior.factory(victims=[3])},
    )
    _check(f"svss_starve_n7_s{seed}", result)


@pytest.mark.parametrize("seed", range(4))
def test_aba(seed):
    bits = {pid: pid % 2 for pid in range(7)}
    _check(f"aba_n7_s{seed}", api.run_aba(7, bits, seed=seed), with_shuns=False)


@pytest.mark.parametrize("seed", range(2))
def test_aba_with_crash(seed):
    bits = {pid: (pid // 2) % 2 for pid in range(10)}
    result = api.run_aba(
        10, bits, seed=seed, corruptions={9: behaviors.CrashBehavior.factory()}
    )
    _check(f"aba_crash_n10_s{seed}", result, with_shuns=False)


@pytest.mark.parametrize("seed", range(3))
def test_weak_coin(seed):
    _check(f"weakcoin_n7_s{seed}", api.run_weak_coin(7, seed=seed))


@pytest.mark.parametrize("seed", range(2))
def test_weak_coin_n16(seed):
    _check(f"weakcoin_n16_s{seed}", api.run_weak_coin(16, seed=seed))


@pytest.mark.parametrize("seed", range(2))
def test_weak_coin_n32(seed):
    # The n32 preset prime (million-scale): the batched single-matmul path.
    _check(f"weakcoin_n32_s{seed}", api.run_weak_coin(32, seed=seed, prime=1_000_003))


def test_weak_coin_n32_default_prime_matches_frozen_stack():
    """End-to-end coverage of the plane's 16-bit split mode (default prime at
    n >= 24): the live batched stack must reproduce the frozen pre-batching
    stack (``benchmarks.perf.legacy_coin``, the PR-4 implementation kept
    verbatim) delivery-for-delivery.  A runtime-computed golden: the frozen
    side *is* the pre-change behaviour."""
    from benchmarks.perf.legacy_coin import legacy_run_weak_coin

    fast = api.run_weak_coin(32, seed=5, tracing=False)
    frozen = legacy_run_weak_coin(32, 5)
    assert fast.outputs == frozen.outputs
    assert fast.steps == frozen.steps


@pytest.mark.parametrize("seed", range(2))
def test_coinflip_n16(seed):
    _check(f"coinflip_n16_s{seed}", api.run_coinflip(16, seed=seed, rounds=1))


def test_coinflip_n32():
    _check("coinflip_n32_s0", api.run_coinflip(32, seed=0, rounds=1, prime=1_000_003))


@pytest.mark.parametrize("seed", range(3))
def test_coinflip(seed):
    _check(f"coinflip_n4_s{seed}", api.run_coinflip(4, seed=seed, rounds=2))


@pytest.mark.parametrize("seed", range(2))
def test_coinflip_with_crash(seed):
    result = api.run_coinflip(
        7, seed=seed, rounds=1, corruptions={6: behaviors.CrashBehavior.factory()}
    )
    _check(f"coinflip_crash_n7_s{seed}", result)


@pytest.mark.parametrize("seed", range(2))
def test_fba(seed):
    result = api.run_fba(4, {0: "a", 1: "b", 2: "a", 3: "b"}, seed=seed)
    _check(f"fba_n4_s{seed}", result, with_shuns=False)
