"""Tests for protocol parameter validation (repro.core.config)."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_PRIME, ProtocolParams, max_faults, validate_resilience
from repro.errors import ConfigurationError


class TestValidateResilience:
    def test_minimum_configuration(self):
        validate_resilience(4, 1)

    def test_crash_free_configuration(self):
        validate_resilience(1, 0)

    def test_exact_boundary(self):
        validate_resilience(7, 2)

    def test_rejects_n_equal_3t(self):
        with pytest.raises(ConfigurationError):
            validate_resilience(3, 1)

    def test_rejects_n_below_3t_plus_1(self):
        with pytest.raises(ConfigurationError):
            validate_resilience(6, 2)

    def test_rejects_negative_t(self):
        with pytest.raises(ConfigurationError):
            validate_resilience(4, -1)

    def test_rejects_zero_parties(self):
        with pytest.raises(ConfigurationError):
            validate_resilience(0, 0)


class TestMaxFaults:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0), (2, 0), (3, 0), (4, 1), (6, 1), (7, 2), (10, 3), (13, 4), (100, 33)],
    )
    def test_values(self, n, expected):
        assert max_faults(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            max_faults(0)

    def test_consistent_with_validation(self):
        for n in range(1, 50):
            validate_resilience(n, max_faults(n))


class TestProtocolParams:
    def test_for_parties_uses_max_faults(self):
        params = ProtocolParams.for_parties(10)
        assert params.n == 10
        assert params.t == 3

    def test_quorum_is_n_minus_t(self):
        params = ProtocolParams(n=7, t=2)
        assert params.quorum == 5

    def test_party_ids(self):
        params = ProtocolParams.for_parties(4)
        assert list(params.party_ids) == [0, 1, 2, 3]

    def test_is_valid_party(self):
        params = ProtocolParams.for_parties(4)
        assert params.is_valid_party(0)
        assert params.is_valid_party(3)
        assert not params.is_valid_party(4)
        assert not params.is_valid_party(-1)

    def test_default_prime(self):
        assert ProtocolParams.for_parties(4).prime == DEFAULT_PRIME

    def test_rejects_bad_resilience(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(n=4, t=2)

    def test_rejects_tiny_prime(self):
        with pytest.raises(ConfigurationError):
            ProtocolParams(n=7, t=2, prime=5)

    def test_frozen(self):
        params = ProtocolParams.for_parties(4)
        with pytest.raises(AttributeError):
            params.n = 5  # type: ignore[misc]
