"""Cross-module integration tests: whole-stack scenarios under stress.

These tests exercise the complete protocol stack (SVSS inside CoinFlip inside
FairChoice inside FBA, CommonSubset over BA instances, A-Cast feeding FBA)
under combinations of Byzantine behaviour and adversarial scheduling, checking
the end-to-end guarantees the paper's theorems promise.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    BadShareBehavior,
    CrashBehavior,
    FBAValueInjector,
    WithholdingDealerBehavior,
)
from repro.adversary.scheduling import favour_parties, isolate_party, split_brain
from repro.core import api


class TestCoinFlipStack:
    @pytest.mark.parametrize("seed", range(3))
    def test_coinflip_with_bad_share_and_adversarial_scheduling(self, seed):
        result = api.run_coinflip(
            4,
            seed=seed,
            rounds=2,
            corruptions={3: BadShareBehavior.factory()},
            scheduler=favour_parties([3]),
        )
        assert not result.disagreement
        assert result.agreed_value in (0, 1)

    def test_coinflip_with_withholding_dealer_and_isolation(self):
        result = api.run_coinflip(
            4,
            seed=5,
            rounds=2,
            corruptions={0: WithholdingDealerBehavior.factory(victims=[1])},
            scheduler=isolate_party(2),
        )
        assert not result.disagreement

    def test_coinflip_under_partition_then_heal(self):
        result = api.run_coinflip(
            4, seed=6, rounds=2, scheduler=split_brain([0, 1], [2, 3], duration=200)
        )
        assert not result.disagreement

    def test_shun_events_never_exceed_n_squared(self):
        total_shuns = 0
        for seed in range(4):
            result = api.run_coinflip(
                4, seed=seed, rounds=2, corruptions={3: BadShareBehavior.factory()}
            )
            total_shuns += result.trace.total_shun_events()
        assert total_shuns < 4 * 16


class TestFBAStack:
    def test_fba_with_crash_and_partition(self):
        inputs = {0: "a", 1: "b", 2: "c"}
        result = api.run_fba(
            4,
            inputs,
            seed=2,
            corruptions={3: CrashBehavior.factory()},
            scheduler=split_brain([0], [1, 2], duration=100),
        )
        assert not result.disagreement
        assert result.agreed_value in {"a", "b", "c"}

    def test_fba_output_traceable_to_acast(self):
        """The FBA output always equals a value that was actually A-Cast."""
        inputs = {0: "v0", 1: "v1", 2: "v2", 3: "v3"}
        result = api.run_fba(4, inputs, seed=4)
        network = result.network
        fba = network.processes[0].protocol(("fba",))
        assert result.agreed_value in fba.broadcast_values.values()

    def test_fba_with_value_injector_and_rushing_scheduler(self):
        inputs = {0: "x", 1: "x", 2: "y", 3: "evil"}
        result = api.run_fba(
            4,
            inputs,
            seed=8,
            corruptions={3: FBAValueInjector.factory("evil")},
            scheduler=favour_parties([3]),
        )
        assert not result.disagreement
        # "x" holds a strict majority of the agreed subset whenever all four
        # broadcasts land in S; in every case the output must be someone's input.
        assert result.agreed_value in {"x", "y", "evil"}

    def test_seven_party_fba_divergent(self):
        inputs = {pid: f"value-{pid % 3}" for pid in range(7)}
        result = api.run_fba(7, inputs, seed=3)
        assert not result.disagreement
        assert result.agreed_value in set(inputs.values())


class TestDeterminism:
    def test_same_seed_same_everything(self):
        a = api.run_coinflip(4, seed=77, rounds=2)
        b = api.run_coinflip(4, seed=77, rounds=2)
        assert a.outputs == b.outputs
        assert a.steps == b.steps
        assert a.trace.messages_sent == b.trace.messages_sent

    def test_different_seeds_differ_somewhere(self):
        results = [api.run_coinflip(4, seed=seed, rounds=2) for seed in range(6)]
        step_counts = {result.steps for result in results}
        assert len(step_counts) > 1


class TestTraceAccounting:
    def test_message_roots_cover_protocol_stack(self):
        result = api.run_fba(4, {0: "a", 1: "b", 2: "c", 3: "d"}, seed=0)
        roots = set(result.trace.sent_by_root)
        assert roots == {"fba"}
        kinds = set(result.trace.sent_by_kind)
        # The whole stack is visible in the message kinds.
        assert {"VALUE", "ECHO", "READY", "BVAL", "AUX", "ROW", "RECROW"} <= kinds

    def test_completions_include_every_honest_party(self):
        result = api.run_coinflip(4, seed=1, rounds=1)
        completed_parties = {party for party, _session in result.trace.completions}
        assert completed_parties == {0, 1, 2, 3}
