"""Unit and integration tests for the structured metrics registry."""

from __future__ import annotations

from repro.core import api
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    STEP_BUCKETS,
    Histogram,
    MetricsRegistry,
)


def test_histogram_bucketing_and_aggregates():
    hist = Histogram(bounds=(10, 100))
    for value in (0, 10, 11, 100, 101, 5000):
        hist.observe(value)
    data = hist.to_dict()
    assert data["count"] == 6
    assert data["sum"] == 5222
    assert data["max"] == 5000
    assert data["buckets"] == {"<=10": 2, "<=100": 2, ">100": 2}
    assert data["mean"] == round(5222 / 6, 2)


def test_empty_histogram_mean_is_none():
    data = Histogram(bounds=(1,)).to_dict()
    assert data["count"] == 0
    assert data["mean"] is None
    assert data["max"] is None


def test_registry_get_or_create_and_snapshot_order():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc()
    assert registry.counter("b") is registry.counter("b")
    registry.gauge("depth").set(7)
    registry.histogram("h", (1, 2)).observe(1)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "b"]  # sorted, deterministic
    assert snap["counters"] == {"a": 1, "b": 2}
    assert snap["gauges"] == {"depth": 7}
    assert snap["histograms"]["h"]["count"] == 1
    assert "crypto" not in snap  # only present after finalize()


def test_registry_hooks():
    registry = MetricsRegistry()
    registry.on_complete(40, 1, ("weak_coin",))
    registry.on_complete(90, 2, ("weak_coin",))
    registry.on_queue_depth(10, 33)
    snap = registry.snapshot()
    assert snap["counters"]["completions"] == 2
    assert snap["histograms"]["completion_step.weak_coin"]["count"] == 2
    assert snap["histograms"]["queue_depth"]["count"] == 1
    assert snap["gauges"]["queue_depth_last"] == 33


def test_end_to_end_metrics_attached_to_result():
    result = api.run_weak_coin(8, seed=0, metrics=True)
    metrics = result.metrics
    assert metrics is not None
    # Every party completes the root session plus the per-dealer subsessions.
    assert metrics["counters"]["completions"] >= 8
    assert metrics["counters"]["queue_depth_samples"] > 0
    assert "completion_step.weak_coin" in metrics["histograms"]
    hist = metrics["histograms"]["completion_step.weak_coin"]
    assert hist["max"] <= result.steps
    crypto = metrics["crypto"]
    assert crypto["plan_mode"] in ("scalar", "matmul", "split")
    assert sum(crypto["plan_dispatch"].values()) > 0
    assert "plane_cache" in crypto
    assert crypto["plane_cache"]["row_misses"] >= 0


def test_metrics_snapshots_are_deterministic():
    first = api.run_weak_coin(8, seed=1, metrics=True).metrics
    second = api.run_weak_coin(8, seed=1, metrics=True).metrics
    # Lagrange/plan deltas are baselined per-trial, so even the crypto
    # section must agree between two runs of the same seed.
    assert first == second


def test_metrics_off_leaves_result_field_none():
    assert api.run_weak_coin(4, seed=0).metrics is None


def test_custom_registry_instance_is_used():
    registry = MetricsRegistry(queue_depth_every=16)
    result = api.run_weak_coin(8, seed=0, metrics=registry)
    assert result.metrics == registry.snapshot()
    coarse = api.run_weak_coin(
        8, seed=0, metrics=MetricsRegistry(queue_depth_every=256)
    ).metrics
    fine = registry.snapshot()
    assert (
        fine["counters"]["queue_depth_samples"]
        > coarse["counters"]["queue_depth_samples"]
    )


def test_default_buckets_are_sorted():
    assert list(STEP_BUCKETS) == sorted(STEP_BUCKETS)
    assert list(DEPTH_BUCKETS) == sorted(DEPTH_BUCKETS)
