"""CLI surfaces: ``python -m repro.obs`` and the scenario sink flags."""

from __future__ import annotations

import json

import pytest

from repro.core import api
from repro.experiments.cli import main as experiments_main
from repro.obs.__main__ import main as obs_main
from repro.obs.sinks import JsonlSink


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    api.run_weak_coin(4, seed=0, sinks=[JsonlSink(path)])
    return path


def test_validate_ok(trace_file, capsys):
    assert obs_main(["validate", str(trace_file)]) == 0
    assert "OK" in capsys.readouterr().out


def test_validate_flags_problems(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"step": 0, "kind": "bogus"}\n')
    assert obs_main(["validate", str(path)]) == 1
    captured = capsys.readouterr()
    assert "INVALID" in captured.out
    assert "bogus" in captured.err


def test_timeline_text(trace_file, tmp_path, capsys):
    assert obs_main(["timeline", str(trace_file)]) == 0
    assert "timeline:" in capsys.readouterr().out
    out = tmp_path / "timeline.txt"
    assert obs_main(["timeline", str(trace_file), "--out", str(out)]) == 0
    assert out.read_text().startswith("timeline:")


def test_timeline_chrome(trace_file, tmp_path):
    out = tmp_path / "timeline.json"
    code = obs_main(
        ["timeline", str(trace_file), "--format", "chrome", "--out", str(out)]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]


def test_scenarios_run_with_sinks(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    timeline = tmp_path / "run.txt"
    code = experiments_main(
        [
            "scenarios",
            "--run",
            "dealer-ambush",
            "--n",
            "8",
            "--trace-jsonl",
            str(trace),
            "--timeline",
            str(timeline),
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "dealer-ambush" in output
    assert trace.exists() and timeline.exists()
    assert obs_main(["validate", str(trace)]) == 0
    assert timeline.read_text().startswith("timeline:")


def test_scenarios_sinks_require_tracing(tmp_path, capsys):
    code = experiments_main(
        [
            "scenarios",
            "--run",
            "dealer-ambush",
            "--no-tracing",
            "--trace-jsonl",
            str(tmp_path / "x.jsonl"),
        ]
    )
    assert code == 2
    assert "tracing" in capsys.readouterr().err
