"""TrialAggregate observability fields: drops, director actions, metrics."""

from __future__ import annotations

from collections import Counter

from repro.adversary import attacks
from repro.core import api
from repro.core.results import TrialAggregate
from repro.scenarios.engine import run_scenario
from repro.scenarios.library import get_scenario


def test_metered_trials_report_real_message_counts():
    """Group-mode (tracing=False) trials must aggregate non-zero totals."""
    traced = TrialAggregate()
    metered = TrialAggregate()
    for seed in range(2):
        traced.add(api.run_weak_coin(8, seed=seed))
        metered.add(api.run_weak_coin(8, seed=seed, tracing=False))
    assert metered.total_messages == traced.total_messages > 0
    assert metered.total_steps == traced.total_steps
    assert metered.mean_messages == traced.mean_messages


def test_dropped_totals_aggregate():
    aggregate = TrialAggregate()
    corruptions = {2: attacks.BadShareBehavior.factory()}
    for seed in range(2):
        aggregate.add(api.run_weak_coin(8, seed=seed, corruptions=corruptions))
    assert aggregate.total_dropped > 0
    assert aggregate.mean_dropped == aggregate.total_dropped / 2
    assert aggregate.summary()["mean_dropped"] == round(aggregate.mean_dropped, 3)


def test_director_actions_aggregate():
    aggregate = TrialAggregate()
    aggregate.add(run_scenario(get_scenario("dealer-ambush"), n=8, seed=0))
    assert aggregate.director_actions  # the ambush corrupts dealers
    assert aggregate.summary()["director_actions"] == dict(aggregate.director_actions)


def test_metric_counters_aggregate():
    aggregate = TrialAggregate()
    for seed in range(2):
        aggregate.add(api.run_weak_coin(8, seed=seed, metrics=True))
    assert aggregate.metric_counters["completions"] > 0
    assert aggregate.metric_counters["queue_depth_samples"] > 0


def test_merge_sums_observability_fields():
    left = TrialAggregate(
        trials=1,
        total_dropped=3,
        director_actions=Counter({"corrupt": 1}),
        metric_counters=Counter({"completions": 8}),
    )
    right = TrialAggregate(
        trials=1,
        total_dropped=4,
        director_actions=Counter({"corrupt": 2, "silence": 1}),
        metric_counters=Counter({"completions": 5}),
    )
    merged = left.merge(right)
    assert merged.total_dropped == 7
    assert merged.director_actions == Counter({"corrupt": 3, "silence": 1})
    assert merged.metric_counters == Counter({"completions": 13})


def test_round_trip_preserves_observability_fields():
    aggregate = TrialAggregate()
    aggregate.add(run_scenario(get_scenario("dealer-ambush"), n=8, seed=0))
    rebuilt = TrialAggregate.from_dict(aggregate.to_dict())
    assert rebuilt.total_dropped == aggregate.total_dropped
    assert rebuilt.director_actions == aggregate.director_actions
    assert rebuilt.metric_counters == aggregate.metric_counters


def test_campaign_metrics_parallel_equals_sequential():
    """Cells opt into metrics via params; chunk merging stays deterministic."""
    from repro.experiments.runner import run_campaign
    from repro.experiments.spec import CampaignSpec

    data = {
        "name": "m",
        "cells": [
            {
                "name": "wc8",
                "protocol": "weak_coin",
                "n": 8,
                "seeds": [0, 1, 2, 3],
                "params": {"metrics": True},
            }
        ],
    }
    sequential = run_campaign(CampaignSpec.from_dict(data), workers=1)["wc8"]
    parallel = run_campaign(CampaignSpec.from_dict(data), workers=2)["wc8"]
    assert sequential.metric_counters["completions"] > 0
    assert sequential.to_dict() == parallel.to_dict()


def test_from_dict_tolerates_old_stores():
    """Results files written before the observability fields must still load."""
    data = TrialAggregate().to_dict()
    for key in ("total_dropped", "director_actions", "metric_counters"):
        del data[key]
    rebuilt = TrialAggregate.from_dict(data)
    assert rebuilt.total_dropped == 0
    assert rebuilt.director_actions == Counter()
    assert rebuilt.metric_counters == Counter()
