"""Unit tests for the group-mode message meter."""

from __future__ import annotations

from repro.core import api
from repro.obs.meter import GroupMeter


def test_counts_and_summary_shape():
    meter = GroupMeter()
    meter.count_send("ROW", "svss", 7)
    meter.count_send("READY", "svss", 7)
    meter.count_send("ROW", "svss", 1)
    meter.count_drop("shunned")
    meter.count_drop("shunned")
    meter.count_shun()

    summary = meter.summary(messages_delivered=12)
    assert summary == {
        "messages_sent": 15,
        "messages_delivered": 12,
        "messages_dropped": 2,
        "shun_events": 1,
        "sent_by_root": {"svss": 15},
        "sent_by_kind": {"ROW": 8, "READY": 7},
        "dropped_by_reason": {"shunned": 2},
    }


def test_fresh_meter_is_zero():
    summary = GroupMeter().summary(messages_delivered=0)
    assert summary["messages_sent"] == 0
    assert summary["messages_dropped"] == 0
    assert summary["sent_by_kind"] == {}


def test_network_attaches_meter_only_when_untraced():
    traced = api.run_weak_coin(4, seed=0)
    assert traced.network.meter is None  # the trace supersedes the meter
    metered = api.run_weak_coin(4, seed=0, tracing=False)
    assert metered.network.meter is not None
    disabled = api.run_weak_coin(4, seed=0, tracing=False, metering=False)
    assert disabled.network.meter is None
    assert disabled.message_stats is None


def test_message_stats_source_matches_mode():
    traced = api.run_weak_coin(4, seed=0)
    assert traced.message_stats["completions"] >= 4  # trace summary shape
    metered = api.run_weak_coin(4, seed=0, tracing=False)
    assert "completions" not in metered.message_stats  # meter summary shape
    assert metered.message_stats["messages_delivered"] == metered.steps
