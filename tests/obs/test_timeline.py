"""Tests for the session-timeline builder (text and Chrome tracing output)."""

from __future__ import annotations

from repro.adversary import attacks
from repro.core import api
from repro.obs.sinks import JsonlSink
from repro.obs.timeline import TimelineBuilder


def test_lanes_from_synthetic_events():
    builder = TimelineBuilder()
    builder.add({"step": 0, "kind": "session_open", "party": 1, "session": ["aba"]})
    builder.add(
        {"step": 5, "kind": "phase", "party": 1, "session": ["aba"], "phase": "round-0"}
    )
    builder.add(
        {"step": 9, "kind": "phase", "party": 1, "session": ["aba"], "phase": "round-1"}
    )
    builder.add(
        {"step": 12, "kind": "complete", "party": 1, "session": ["aba"], "value": 1}
    )
    builder.add({"step": 3, "kind": "shun", "party": 0, "session": ["aba"], "shunned": 2})
    text = builder.render_text()
    assert "session aba:" in text
    assert "party 1: open@0 round-0@5 round-1@9 done@12=1" in text
    assert "mark @3: shun party=0 2" in text
    assert builder.max_step == 12


def test_live_sink_equals_offline_rebuild(tmp_path):
    path = tmp_path / "trace.jsonl"
    live = TimelineBuilder()
    api.run_weak_coin(8, seed=0, sinks=[live, JsonlSink(path)])
    offline = TimelineBuilder.from_jsonl(path)
    assert offline.render_text() == live.render_text()
    assert offline.to_chrome_json() == live.to_chrome_json()


def test_protocol_phases_reach_the_timeline():
    builder = TimelineBuilder()
    api.run_weak_coin(8, seed=0, sinks=[builder])
    text = builder.render_text()
    # The weak coin opens per-dealer SVSS subsessions; their row/ready phase
    # annotations and the root completion must all be present.
    assert "session weak_coin:" in text
    assert "row@" in text
    assert "ready@" in text
    assert "done@" in text


def test_marks_capture_shuns():
    builder = TimelineBuilder()
    api.run_svss(
        7,
        31337,
        seed=0,
        corruptions={2: attacks.BadShareBehavior.factory()},
        sinks=[builder],
    )
    assert any(kind == "shun" for _step, kind, _party, _detail in builder.marks)
    assert "mark @" in builder.render_text()


def test_chrome_json_structure():
    builder = TimelineBuilder()
    result = api.run_weak_coin(8, seed=0, sinks=[builder])
    doc = builder.to_chrome_json()
    events = doc["traceEvents"]
    assert doc["otherData"]["time_axis"] == "delivery steps"
    phases = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert phases and instants and metadata
    for event in phases:
        assert event["dur"] >= 0
        assert 0 <= event["ts"] <= result.steps
    # One process_name metadata record per party.
    names = {e["pid"] for e in metadata if e["name"] == "process_name"}
    assert names == set(range(8))


def test_render_is_deterministic():
    builders = []
    for _ in range(2):
        builder = TimelineBuilder()
        api.run_weak_coin(8, seed=2, sinks=[builder])
        builders.append(builder)
    assert builders[0].render_text() == builders[1].render_text()
