"""Tests for streaming trace sinks, event retention tiers and the schema."""

from __future__ import annotations

import json

import pytest

from repro.core import api
from repro.net.tracing import DEFAULT_EVENT_CAPACITY, Trace, TraceEvent
from repro.obs.schema import event_to_jsonable, validate_event, validate_jsonl
from repro.obs.sinks import JsonlSink, RingBufferSink, TraceSink


# ----------------------------------------------------------------------
# Trace retention tiers.
# ----------------------------------------------------------------------
def test_default_trace_retains_nothing():
    trace = Trace()
    trace.note(0, "x")
    assert trace.events == []
    assert trace.notes == [(0, "x")]  # aggregates still collected


def test_keep_events_true_is_bounded_ring():
    trace = Trace(keep_events=True)
    assert trace._capacity == DEFAULT_EVENT_CAPACITY
    trace.note(0, "x")
    assert len(trace.events) == 1


def test_int_capacity_ring_evicts_oldest():
    trace = Trace(keep_events=3)
    for step in range(5):
        trace.note(step, step)
    events = trace.events
    assert [event.step for event in events] == [2, 3, 4]
    assert trace.events_dropped == 2
    assert trace.summary()["events_dropped"] == 2


def test_keep_events_all_is_unbounded():
    trace = Trace(keep_events="all")
    for step in range(10):
        trace.note(step, step)
    assert len(trace.events) == 10
    assert trace.events_dropped == 0


def test_invalid_keep_events_rejected():
    with pytest.raises(ValueError):
        Trace(keep_events="forever")
    with pytest.raises(ValueError):
        Trace(keep_events=-4)


def test_summary_includes_kind_and_reason_breakdowns():
    result = api.run_weak_coin(4, seed=0)
    summary = result.trace.summary()
    assert summary["sent_by_kind"]
    assert sum(summary["sent_by_kind"].values()) == summary["messages_sent"]
    assert "dropped_by_reason" in summary


# ----------------------------------------------------------------------
# Sinks.
# ----------------------------------------------------------------------
def test_base_sink_requires_emit():
    with pytest.raises(NotImplementedError):
        TraceSink().emit(TraceEvent(0, "note", None, "x"))
    TraceSink().close()  # default close is a no-op


def test_ring_buffer_sink_counts_exactly():
    sink = RingBufferSink(capacity=4)
    trace = Trace()
    trace.add_sink(sink)
    for step in range(6):
        trace.note(step, step)
    assert sink.events_seen == 6
    assert sink.events_dropped == 2
    assert [event.step for event in sink.tail(2)] == [4, 5]
    assert sink.counts_by_kind == {"note": 6}


def test_ring_buffer_sink_rejects_bad_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_sink_on_disabled_trace_rejected():
    trace = Trace(enabled=False)
    with pytest.raises(ValueError):
        trace.add_sink(RingBufferSink())


def test_sink_restores_record_on_no_retention_trace():
    """A retention-free trace rebinds record() to a no-op; attaching a sink
    must restore the real method so events actually flow."""
    trace = Trace()  # keep_events=False -> record is the shared no-op
    sink = trace.add_sink(RingBufferSink())
    trace.note(0, "x")
    assert sink.events_seen == 1


def test_jsonl_sink_writes_valid_schema(tmp_path):
    path = tmp_path / "trace.jsonl"
    result = api.run_weak_coin(4, seed=0, sinks=[JsonlSink(path)])
    count, problems = validate_jsonl(path)
    assert problems == []
    assert count > 0
    # Every send and delivery was streamed.
    assert count >= result.trace.messages_sent + result.trace.messages_delivered


def test_jsonl_sink_closed_by_runtime(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    api.run_weak_coin(4, seed=0, sinks=[sink])
    with pytest.raises(ValueError):
        sink.emit(TraceEvent(0, "note", None, "late"))
    sink.close()  # idempotent


def test_multiple_sinks_see_identical_streams(tmp_path):
    ring = RingBufferSink(capacity=10**6)
    path = tmp_path / "trace.jsonl"
    api.run_weak_coin(4, seed=0, sinks=[ring, JsonlSink(path)])
    lines = path.read_text().splitlines()
    assert len(lines) == ring.events_seen
    assert json.loads(lines[-1]) == event_to_jsonable(ring.events[-1])


# ----------------------------------------------------------------------
# Schema.
# ----------------------------------------------------------------------
def test_event_to_jsonable_send_shape():
    ring = RingBufferSink(capacity=10**6)
    api.run_weak_coin(4, seed=0, sinks=[ring])
    sends = [e for e in ring.events if e.kind == "send"]
    data = event_to_jsonable(sends[0])
    for field in ("step", "kind", "sender", "receiver", "session", "msg_kind", "seq"):
        assert field in data, field
    assert validate_event(data) == []


def test_validate_event_flags_problems():
    assert validate_event({"kind": "nonsense", "step": 0})
    assert validate_event({"kind": "send", "step": 0})  # missing message fields
    assert validate_event({"kind": "note", "detail": "x"})  # missing step


def test_validate_jsonl_reports_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps({"step": 0, "kind": "note", "detail": "ok"})
        + "\n{not json}\n"
        + json.dumps({"step": 1, "kind": "bogus"})
        + "\n"
    )
    count, problems = validate_jsonl(path)
    assert count == 3
    assert len(problems) == 2
