"""Observability must never change behaviour.

The fingerprints in ``tests/golden_trials.json`` pin whole executions --
``[steps, sorted honest outputs, messages sent, shun events]`` per seed.
Every observability configuration (tracing on, metered group mode, metering
disabled, streaming sinks attached, metrics registry active, bounded event
ring) must reproduce those fingerprints byte-for-byte: the instruments are
observers, not participants.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.adversary import attacks
from repro.core import api
from repro.core.config import ProtocolParams
from repro.net.runtime import Simulation
from repro.obs.sinks import JsonlSink, RingBufferSink
from repro.obs.timeline import TimelineBuilder
from repro.protocols.weak_coin import WeakCommonCoin

GOLDEN = json.loads((Path(__file__).parents[1] / "golden_trials.json").read_text())

#: (golden key, runner kwargs) for the weak-coin cells used below.  n=32 uses
#: the million-scale prime preset (the batched crypto path), matching the
#: golden capture.
CELLS = [
    ("weakcoin_n16_s0", dict(n=16, seed=0)),
    ("weakcoin_n16_s1", dict(n=16, seed=1)),
    ("weakcoin_n32_s0", dict(n=32, seed=0, prime=1_000_003)),
    ("weakcoin_n32_s1", dict(n=32, seed=1, prime=1_000_003)),
]

#: Observability configurations layered on top of each cell.  ``sinks`` is a
#: factory so each run gets fresh sink instances.
CONFIGS = {
    "traced": dict(tracing=True),
    "metered": dict(tracing=False),
    "unmetered": dict(tracing=False, metering=False),
    "metrics": dict(tracing=True, metrics=True),
    "ring_sink": dict(tracing=True, sinks=lambda tmp: [RingBufferSink(512)]),
    "jsonl_sink": dict(
        tracing=True, sinks=lambda tmp: [JsonlSink(tmp / "trace.jsonl")]
    ),
    "timeline_sink": dict(tracing=True, sinks=lambda tmp: [TimelineBuilder()]),
}


def _run(cell_kwargs, config, tmp_path):
    kwargs = dict(cell_kwargs)
    for key, value in config.items():
        kwargs[key] = value(tmp_path) if key == "sinks" else value
    return api.run_weak_coin(**kwargs)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("key,cell", CELLS, ids=[key for key, _ in CELLS])
def test_golden_fingerprint_is_config_independent(key, cell, config_name, tmp_path):
    golden_steps, golden_outputs, golden_sent, golden_shuns = GOLDEN[key]
    result = _run(cell, CONFIGS[config_name], tmp_path)

    assert result.steps == golden_steps, (key, config_name)
    assert [[p, v] for p, v in sorted(result.outputs.items())] == golden_outputs

    stats = result.message_stats
    if config_name == "unmetered":
        # No trace, no meter: message statistics are deliberately absent.
        assert stats is None
        return
    # Trace and meter must agree with the golden eager-trace counts.
    assert stats["messages_sent"] == golden_sent, (key, config_name)
    assert stats["shun_events"] == golden_shuns, (key, config_name)


@pytest.mark.parametrize("key,cell", CELLS[:2], ids=[key for key, _ in CELLS[:2]])
def test_meter_summary_matches_trace_summary(key, cell):
    """Group-mode meter counters equal the eager per-message trace counters."""
    traced = api.run_weak_coin(**cell).trace.summary()
    metered = api.run_weak_coin(**cell, tracing=False).message_stats
    for field in (
        "messages_sent",
        "messages_delivered",
        "messages_dropped",
        "shun_events",
        "sent_by_root",
        "sent_by_kind",
        "dropped_by_reason",
    ):
        assert metered[field] == traced[field], field


@pytest.mark.parametrize("seed", range(2))
def test_meter_counts_drops_under_shunning(seed):
    """A bad-share dealer gets shunned; the meter must count the resulting
    dropped deliveries exactly as the trace does."""
    corruptions = {2: attacks.BadShareBehavior.factory()}
    traced = api.run_weak_coin(8, seed=seed, corruptions=corruptions)
    metered = api.run_weak_coin(
        8, seed=seed, corruptions=corruptions, tracing=False
    )
    assert metered.steps == traced.steps
    assert metered.outputs == traced.outputs
    t_summary = traced.trace.summary()
    m_summary = metered.message_stats
    assert t_summary["messages_dropped"] > 0  # the scenario must exercise drops
    assert m_summary["messages_dropped"] == t_summary["messages_dropped"]
    assert m_summary["dropped_by_reason"] == t_summary["dropped_by_reason"]
    assert m_summary["shun_events"] == t_summary["shun_events"]


def test_event_ring_does_not_change_execution():
    """keep_events retention tiers are recording-only."""
    params = ProtocolParams.for_parties(16)
    results = [
        Simulation(params=params, seed=0, keep_events=keep).run(
            ("weak_coin",), WeakCommonCoin.factory()
        )
        for keep in (False, True, 64, "all")
    ]
    baseline = results[0]
    for other in results[1:]:
        assert other.steps == baseline.steps
        assert other.outputs == baseline.outputs
        assert other.trace.messages_sent == baseline.trace.messages_sent


def test_jsonl_files_are_byte_identical_across_runs(tmp_path):
    """Same seed, same sink => byte-identical JSONL (sorted keys, fixed order)."""
    paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
    for path in paths:
        api.run_weak_coin(8, seed=3, sinks=[JsonlSink(path)])
    assert paths[0].read_bytes() == paths[1].read_bytes()
    assert paths[0].stat().st_size > 0
