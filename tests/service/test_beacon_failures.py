"""Beacon failure paths: shard death, hangs, saturation, shutdown, chaos load.

The robustness contract under test: execution-plane failures (a SIGKILLed or
hung shard, a saturated queue, a stop mid-flight) cost latency or surface as
structured responses -- they never change a computed result and never leak a
process.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.experiments.spec import canonical_json
from repro.service import (
    BeaconRequest,
    BeaconService,
    ServicePolicy,
    cold_payload,
)
from repro.service.loadgen import build_requests, run_load


def make_service(**kwargs) -> BeaconService:
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("request_timeout_s", 10.0)
    return BeaconService(ServicePolicy(**kwargs))


def no_leaked_children() -> bool:
    return not multiprocessing.active_children()


def faulted(protocol: str, seed: int, fault: str, **fault_params) -> BeaconRequest:
    params = {"attempts": [0], **fault_params}
    return BeaconRequest(
        protocol=protocol,
        n=4,
        seed=seed,
        fault={"fault": fault, "params": params},
    )


class TestShardDeath:
    def test_sigkill_mid_request_retries_to_byte_identical_result(self):
        oracle = cold_payload(BeaconRequest(protocol="weak_coin", n=4, seed=31))
        with make_service(backoff_base_s=0.01) as service:
            response = service.call(
                faulted("weak_coin", 31, "sigkill"), timeout_s=60
            )
            counters = service.metrics_dump()["counters"]
        assert response.ok, response.to_dict()
        assert response.attempts == 2
        assert canonical_json(response.payload) == canonical_json(oracle)
        assert counters["service.retries"] == 1
        assert counters["service.shard_restarts"] == 1
        assert no_leaked_children()

    def test_worker_exit_fault_also_recovers(self):
        with make_service(backoff_base_s=0.01) as service:
            response = service.call(
                faulted("weak_coin", 32, "exit"), timeout_s=60
            )
        assert response.ok
        assert response.attempts == 2

    def test_raise_fault_is_retried_not_fatal(self):
        with make_service(backoff_base_s=0.01) as service:
            response = service.call(
                faulted("weak_coin", 33, "raise"), timeout_s=60
            )
            counters = service.metrics_dump()["counters"]
        assert response.ok
        # An exception does not kill the shard -- no restart, just a retry.
        assert counters["service.shard_restarts"] == 0
        assert counters["service.retries"] == 1

    def test_exhausted_retries_surface_structured_error(self):
        request = BeaconRequest(
            protocol="weak_coin",
            n=4,
            seed=34,
            # attempts "all": the fault fires on every dispatch, so retries
            # cannot recover and the request must fail cleanly.
            fault={"fault": "raise", "params": {"attempts": None}},
        )
        with make_service(max_retries=1, backoff_base_s=0.01) as service:
            response = service.call(request, timeout_s=60)
            counters = service.metrics_dump()["counters"]
        assert not response.ok
        assert response.status == "error"
        assert response.error == "exception"
        assert response.attempts == 2
        assert counters["service.errors"] == 1


class TestHangs:
    def test_hung_shard_hits_deadline_and_is_replaced(self):
        oracle = cold_payload(BeaconRequest(protocol="weak_coin", n=4, seed=41))
        with make_service(
            request_timeout_s=0.5, backoff_base_s=0.01
        ) as service:
            response = service.call(
                faulted("weak_coin", 41, "hang", seconds=30.0), timeout_s=60
            )
            counters = service.metrics_dump()["counters"]
        assert response.ok, response.to_dict()
        assert canonical_json(response.payload) == canonical_json(oracle)
        assert counters["service.timeouts"] == 1
        assert counters["service.shard_restarts"] == 1
        assert no_leaked_children()

    def test_permanent_hang_ends_as_timeout_error(self):
        request = BeaconRequest(
            protocol="weak_coin",
            n=4,
            seed=42,
            fault={"fault": "hang",
                   "params": {"attempts": None, "seconds": 30.0}},
        )
        with make_service(
            request_timeout_s=0.3, max_retries=1, backoff_base_s=0.01
        ) as service:
            response = service.call(request, timeout_s=60)
        assert response.status == "error"
        assert response.error == "timeout"
        assert no_leaked_children()


class TestBackpressure:
    def test_saturation_sheds_with_counter_and_retry_hint(self):
        with make_service(shards=1, queue_depth=2) as service:
            shed = []
            for seed in range(6):
                response = service.submit(
                    BeaconRequest(protocol="weak_coin", n=4, seed=seed)
                )
                if response is not None:
                    shed.append(response)
            service.run_until_idle(timeout_s=60)
            counters = service.metrics_dump()["counters"]
        assert len(shed) == 4
        assert all(r.shed for r in shed)
        assert all(r.retry_after_s > 0 for r in shed)
        assert counters["service.shed"] == 4
        assert counters["service.ok"] == 2

    def test_shed_requests_succeed_on_resubmit(self):
        with make_service(shards=1, queue_depth=1) as service:
            report = run_load(
                service,
                build_requests(8, n=4, protocols=("weak_coin",)),
                verify=True,
            )
        assert report.ok == 8
        assert report.shed_events > 0
        assert not report.divergent


class TestShutdown:
    def test_graceful_stop_drains_inflight_work(self):
        service = make_service(shards=1).start()
        requests = [
            BeaconRequest(protocol="weak_coin", n=4, seed=seed)
            for seed in range(4)
        ]
        for request in requests:
            assert service.submit(request) is None
        service.stop(drain=True)
        for request in requests:
            response = service.take_response(request.request_id)
            assert response is not None and response.ok, request.request_id
        assert no_leaked_children()

    def test_hard_stop_surfaces_shutdown_errors(self):
        service = make_service(shards=1).start()
        requests = [
            BeaconRequest(protocol="weak_coin", n=4, seed=seed)
            for seed in range(3)
        ]
        for request in requests:
            service.submit(request)
        service.stop(drain=False)
        statuses = [
            service.take_response(r.request_id) for r in requests
        ]
        assert all(s is not None for s in statuses)
        assert all(s.error == "shutdown" for s in statuses if not s.ok)
        assert any(not s.ok for s in statuses)
        assert no_leaked_children()


class TestChaosLoad:
    """Mini version of the CI chaos gate: load + faults, zero divergence."""

    @pytest.mark.parametrize("fault", ["sigkill", "hang"])
    def test_chaos_load_zero_divergence(self, fault):
        policy = dict(shards=2, queue_depth=32, backoff_base_s=0.01)
        if fault == "hang":
            policy["request_timeout_s"] = 0.75
        with make_service(**policy) as service:
            report = run_load(
                service,
                build_requests(30, n=4, inject=fault, inject_every=6),
                verify=True,
            )
            counters = service.metrics_dump()["counters"]
        assert report.ok == 30, report.to_dict()
        assert not report.divergent
        assert report.availability == 1.0
        assert counters["service.shard_restarts"] >= 1
        assert counters["service.retries"] >= 1
        assert no_leaked_children()
