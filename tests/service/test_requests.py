"""Beacon request/response envelopes: validation, routing, canonical payloads."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.experiments.spec import canonical_json
from repro.service.requests import (
    BeaconRequest,
    BeaconResponse,
    canonical_payload,
    cold_payload,
    resolve_protocol,
)


class TestBeaconRequest:
    def test_coin_alias_resolves_to_coinflip(self):
        request = BeaconRequest(protocol="coin", n=4, seed=1)
        assert request.protocol == "coinflip"
        assert resolve_protocol("coin") == "coinflip"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ServiceError, match="unknown beacon protocol"):
            resolve_protocol("nonsense")
        with pytest.raises(ServiceError):
            BeaconRequest(protocol="nonsense", n=4, seed=1).validate()

    def test_reserved_params_rejected(self):
        request = BeaconRequest(
            protocol="weak_coin", n=4, seed=1, params={"seed": 9}
        )
        with pytest.raises(ServiceError, match="may not override"):
            request.validate()

    def test_unknown_fault_rejected(self):
        request = BeaconRequest(
            protocol="weak_coin", n=4, seed=1, fault={"fault": "gremlin"}
        )
        with pytest.raises(ServiceError, match="unknown fault"):
            request.validate()

    def test_request_ids_autogenerate_uniquely(self):
        a = BeaconRequest(protocol="weak_coin", n=4, seed=1)
        b = BeaconRequest(protocol="weak_coin", n=4, seed=1)
        assert a.request_id and b.request_id and a.request_id != b.request_id

    def test_round_trips_through_dict(self):
        request = BeaconRequest(
            protocol="aba",
            n=4,
            seed=7,
            params={"inputs": {0: 1, 1: 0, 2: 1, 3: 0}},
            request_id="r-1",
            fault={"fault": "sigkill", "params": {"attempts": [0]}},
            attempt=1,
        )
        clone = BeaconRequest.from_dict(request.to_dict())
        assert clone.to_dict() == request.to_dict()

    def test_malformed_dict_raises_service_error(self):
        with pytest.raises(ServiceError, match="malformed"):
            BeaconRequest.from_dict({"protocol": "weak_coin"})

    def test_warm_key_ignores_seed_but_not_params(self):
        a = BeaconRequest(protocol="coinflip", n=4, seed=1, params={"rounds": 2})
        b = BeaconRequest(protocol="coinflip", n=4, seed=999, params={"rounds": 2})
        c = BeaconRequest(protocol="coinflip", n=4, seed=1, params={"rounds": 3})
        assert a.warm_key() == b.warm_key()
        assert a.warm_key() != c.warm_key()

    def test_shard_slot_is_stable_and_in_range(self):
        request = BeaconRequest(protocol="weak_coin", n=4, seed=1)
        slots = {request.shard_slot(4) for _ in range(10)}
        assert len(slots) == 1
        assert 0 <= slots.pop() < 4
        # Same shape -> same slot, whatever the seed.
        other = BeaconRequest(protocol="weak_coin", n=4, seed=12345)
        assert other.shard_slot(4) == request.shard_slot(4)

    def test_cell_defaults_tracing_off(self):
        cell = BeaconRequest(protocol="weak_coin", n=4, seed=3).cell()
        assert cell.params["tracing"] is False
        assert cell.seeds == [3]


class TestPayloads:
    def test_cold_payload_is_deterministic(self):
        request = BeaconRequest(protocol="weak_coin", n=4, seed=11)
        first = cold_payload(request)
        second = cold_payload(
            BeaconRequest(protocol="weak_coin", n=4, seed=11)
        )
        assert canonical_json(first) == canonical_json(second)
        assert set(first) == {"disagreement", "outputs", "steps", "value"}
        assert len(first["outputs"]) == 4

    def test_different_seeds_can_differ(self):
        payloads = {
            canonical_json(
                cold_payload(BeaconRequest(protocol="coinflip", n=4, seed=seed,
                                           params={"rounds": 2}))
            )
            for seed in range(6)
        }
        assert len(payloads) > 1

    def test_canonical_payload_agreed_value(self):
        class FakeResult:
            outputs = {1: 0, 0: 0, 2: 0, 3: 0}
            steps = 42

        payload = canonical_payload(FakeResult())
        assert payload["value"] == "0"
        assert payload["disagreement"] is False
        assert list(payload["outputs"]) == ["0", "1", "2", "3"]

    def test_canonical_payload_disagreement(self):
        class FakeResult:
            outputs = {0: 0, 1: 1}
            steps = 7

        payload = canonical_payload(FakeResult())
        assert payload["value"] is None
        assert payload["disagreement"] is True


class TestBeaconResponse:
    def test_to_dict_drops_absent_fields(self):
        response = BeaconResponse(request_id="r", status="shed", retry_after_s=0.05)
        data = response.to_dict()
        assert data == {
            "request_id": "r",
            "status": "shed",
            "attempts": 0,
            "retry_after_s": 0.05,
        }
        assert response.shed and not response.ok
