"""Beacon service happy paths: warm reuse, byte identity, metrics, shutdown."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.errors import ServiceError
from repro.experiments.spec import canonical_json
from repro.obs.schema import validate_service_metrics
from repro.service import (
    BeaconRequest,
    BeaconService,
    ServicePolicy,
    cold_payload,
)


def make_service(**kwargs) -> BeaconService:
    kwargs.setdefault("shards", 2)
    return BeaconService(ServicePolicy(**kwargs))


def no_leaked_children() -> bool:
    return not multiprocessing.active_children()


class TestHappyPath:
    def test_response_matches_cold_oneshot_byte_for_byte(self):
        request = BeaconRequest(protocol="weak_coin", n=4, seed=21)
        oracle = cold_payload(BeaconRequest(protocol="weak_coin", n=4, seed=21))
        with make_service() as service:
            response = service.call(request, timeout_s=60)
        assert response.ok
        assert canonical_json(response.payload) == canonical_json(oracle)
        assert response.attempts == 1

    def test_second_same_shape_request_is_warm(self):
        with make_service() as service:
            first = service.call(
                BeaconRequest(protocol="weak_coin", n=4, seed=1), timeout_s=60
            )
            second = service.call(
                BeaconRequest(protocol="weak_coin", n=4, seed=2), timeout_s=60
            )
        assert first.ok and second.ok
        assert first.warm is False
        assert second.warm is True

    def test_mixed_protocols_one_service(self):
        with make_service() as service:
            for protocol, params in (
                ("coin", {"rounds": 2}),
                ("weak_coin", {}),
                ("aba", {"inputs": {p: p % 2 for p in range(4)}}),
                ("fba", {"inputs": {p: 1 for p in range(4)},
                         "coinflip_rounds": 1}),
            ):
                request = BeaconRequest(protocol=protocol, n=4, seed=5,
                                        params=dict(params))
                oracle = cold_payload(
                    BeaconRequest(protocol=protocol, n=4, seed=5,
                                  params=dict(params))
                )
                response = service.call(request, timeout_s=60)
                assert response.ok, (protocol, response.to_dict())
                assert canonical_json(response.payload) == canonical_json(oracle)

    def test_same_shape_routes_to_same_shard(self):
        with make_service(shards=2) as service:
            shards = {
                service.call(
                    BeaconRequest(protocol="weak_coin", n=4, seed=seed),
                    timeout_s=60,
                ).shard
                for seed in range(4)
            }
        assert len(shards) == 1


class TestMetrics:
    def test_dump_validates_and_conserves_requests(self):
        with make_service() as service:
            for seed in range(3):
                service.call(
                    BeaconRequest(protocol="weak_coin", n=4, seed=seed),
                    timeout_s=60,
                )
            dump = service.metrics_dump()
        assert validate_service_metrics(dump) == []
        assert dump["counters"]["service.requests"] == 3
        assert dump["counters"]["service.ok"] == 3
        assert dump["latency_ms"]["count"] == 3
        assert dump["latency_ms"]["summary"]["p50"] is not None

    def test_empty_service_dump_still_validates(self):
        with make_service(shards=1) as service:
            dump = service.metrics_dump()
        assert validate_service_metrics(dump) == []


class TestLifecycle:
    def test_submit_before_start_raises(self):
        service = BeaconService(ServicePolicy(shards=1))
        with pytest.raises(ServiceError, match="not running"):
            service.submit(BeaconRequest(protocol="weak_coin", n=4, seed=1))

    def test_submit_after_stop_raises(self):
        service = make_service(shards=1).start()
        service.stop()
        with pytest.raises(ServiceError, match="not running"):
            service.submit(BeaconRequest(protocol="weak_coin", n=4, seed=1))

    def test_stop_is_idempotent_and_leaks_nothing(self):
        service = make_service().start()
        service.call(BeaconRequest(protocol="weak_coin", n=4, seed=1),
                     timeout_s=60)
        service.stop()
        service.stop()
        assert no_leaked_children()

    def test_restart_requires_new_instance(self):
        service = make_service(shards=1).start()
        service.stop()
        with pytest.raises(ServiceError, match="stopped"):
            service.start()

    def test_policy_rejects_nonsense(self):
        with pytest.raises(ServiceError):
            ServicePolicy(shards=0)
        with pytest.raises(ServiceError):
            ServicePolicy(queue_depth=0)
        with pytest.raises(ServiceError):
            ServicePolicy(max_retries=-1)
