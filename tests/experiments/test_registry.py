"""Tests for the runner/behavior/scheduler registries."""

from __future__ import annotations

import pytest

from repro.adversary.behaviors import CrashBehavior
from repro.errors import ExperimentError
from repro.experiments.registry import (
    BEHAVIORS,
    RUNNERS,
    SCHEDULERS,
    Registry,
    build_behavior_factory,
    build_scheduler,
)
from repro.experiments.spec import BehaviorSpec, SchedulerSpec
from repro.net.scheduler import FIFOScheduler, Scheduler


class TestRegistry:
    def test_known_runner_names(self):
        assert {"coinflip", "fba", "fair_choice", "acast", "weak_coin"} <= set(
            RUNNERS.names()
        )

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ExperimentError, match="unknown protocol runner 'nope'"):
            RUNNERS.get("nope")

    def test_contains(self):
        assert "crash" in BEHAVIORS
        assert "fifo" in SCHEDULERS
        assert "nope" not in RUNNERS

    def test_register_decorator_and_override(self):
        registry = Registry("thing")

        @registry.register("x")
        def build():
            return 1

        assert registry.get("x") is build
        registry.add("x", lambda: 2)
        assert registry.get("x")() == 2

    def test_inputs_normalizer_restores_int_keys(self):
        kwargs = RUNNERS.normalize("fba", {"inputs": {"0": "a", "1": "b"}})
        assert kwargs["inputs"] == {0: "a", 1: "b"}
        # Runners without a normalizer pass kwargs through (copied).
        original = {"rounds": 1}
        assert RUNNERS.normalize("coinflip", original) == original
        assert RUNNERS.normalize("coinflip", original) is not original


class TestBuilders:
    def test_build_behavior_factory(self):
        factory = build_behavior_factory(BehaviorSpec("crash"))
        assert isinstance(factory(None), CrashBehavior)

    def test_build_behavior_with_params(self):
        factory = build_behavior_factory(
            BehaviorSpec("silent_after", {"active_deliveries": 2})
        )
        assert factory(None).active_deliveries == 2

    def test_build_scheduler(self):
        assert isinstance(build_scheduler(SchedulerSpec("fifo")), FIFOScheduler)
        assert isinstance(
            build_scheduler(SchedulerSpec("favour_parties", {"favoured": [0, 1]})),
            Scheduler,
        )

    def test_build_scheduler_none_passthrough(self):
        assert build_scheduler(None) is None

    def test_unknown_behavior_raises(self):
        with pytest.raises(ExperimentError, match="unknown adversary behavior"):
            build_behavior_factory(BehaviorSpec("nope"))
