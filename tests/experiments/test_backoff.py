"""The shared deterministic backoff schedule is pinned and single-sourced."""

from __future__ import annotations

import pytest

from repro.experiments import backoff as backoff_module
from repro.experiments import supervisor as supervisor_module
from repro.experiments.backoff import (
    BACKOFF_CAP_S,
    DEFAULT_BACKOFF_BASE_S,
    backoff_delay,
)


def test_default_sequence_is_pinned():
    # base, 2*base, 4*base, ... capped at BACKOFF_CAP_S.  This sequence is
    # relied on by the campaign supervisor and the beacon front-end alike;
    # changing it silently changes chaos-recovery timing everywhere.
    assert [backoff_delay(attempt) for attempt in range(1, 9)] == [
        0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0,
    ]


def test_custom_base_and_cap():
    assert backoff_delay(1, base_s=0.25) == 0.25
    assert backoff_delay(3, base_s=0.25) == 1.0
    assert backoff_delay(10, base_s=0.25) == BACKOFF_CAP_S
    assert backoff_delay(5, base_s=0.0) == 0.0


@pytest.mark.parametrize("attempt", [-3, 0, 1])
def test_attempts_below_one_clamp_to_first_step(attempt):
    assert backoff_delay(attempt) == DEFAULT_BACKOFF_BASE_S


def test_supervisor_and_service_share_one_formula():
    # The supervisor re-exports the shared helper (back-compat import path);
    # the beacon front-end imports it directly.  Identity, not equality:
    # there must be exactly one implementation.
    assert supervisor_module.backoff_delay is backoff_module.backoff_delay
    from repro.service import frontend

    assert frontend.backoff_delay is backoff_module.backoff_delay
