"""Tests for store schema v2: chunk checkpoints, quarantine, locks, recovery."""

from __future__ import annotations

import json

import pytest

from repro.core.results import TrialAggregate
from repro.errors import ExperimentError
from repro.experiments.runner import _run_cell_chunk, run_cell
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import STORE_VERSION, ResultStore


def _cell(seeds=range(5)) -> ExperimentSpec:
    return ExperimentSpec(
        name="bcast",
        protocol="acast",
        n=4,
        seeds=list(seeds),
        params={"value": "v", "sender": 0},
    )


def _aggregate() -> TrialAggregate:
    from repro.core import api

    aggregate = TrialAggregate()
    aggregate.add(api.run_acast(n=4, seed=0, value="v"))
    return aggregate


class TestMigration:
    def test_v1_store_loads_and_rewrites_as_v2(self, tmp_path):
        path = tmp_path / "old.json"
        aggregate = _aggregate()
        v1 = {
            "version": 1,
            "campaign": "legacy",
            "cells": {
                "bcast": {
                    "spec_hash": "abcd",
                    "aggregate": aggregate.to_dict(),
                    "elapsed_s": 1.5,
                }
            },
        }
        path.write_text(json.dumps(v1))

        store = ResultStore.open(path)
        assert store.campaign == "legacy"
        assert store.has_cell("bcast", "abcd")
        assert store.get("bcast").to_dict() == aggregate.to_dict()
        assert store.partial_cells() == {}
        assert store.failures() == {}

        store.save()
        assert json.loads(path.read_text())["version"] == STORE_VERSION

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "cells": {}}))
        with pytest.raises(ExperimentError, match="unsupported store version"):
            ResultStore.open(path)


class TestCorruptRecovery:
    def test_truncated_json_rejected_with_recovery_hint(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"version": 2, "cells": {')
        with pytest.raises(ExperimentError, match="recover-corrupt"):
            ResultStore.open(path)
        assert path.exists()  # rejected, not destroyed

    def test_recover_corrupt_quarantines_and_starts_fresh(self, tmp_path):
        path = tmp_path / "torn.json"
        garbage = '{"version": 2, "cells": {'
        path.write_text(garbage)

        store = ResultStore.open(path, recover_corrupt=True)
        quarantine = path.with_name(path.name + ".corrupt")
        assert store.recovered_from == quarantine
        assert quarantine.read_text() == garbage
        assert not path.exists()  # moved, a fresh save recreates it
        assert store.cell_names() == []

        store.save()
        assert json.loads(path.read_text())["version"] == STORE_VERSION

    def test_wrong_shape_json_also_recoverable(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ExperimentError, match="not a campaign result store"):
            ResultStore.open(path)
        store = ResultStore.open(path, recover_corrupt=True)
        assert store.recovered_from is not None

    def test_healthy_store_sets_no_recovery_marker(self, tmp_path):
        path = tmp_path / "ok.json"
        first = ResultStore.open(path)
        first.save()
        store = ResultStore.open(path, recover_corrupt=True)
        assert store.recovered_from is None


class TestChunkCheckpoints:
    def test_put_chunk_round_trip_with_int_keys(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore.open(path)
        transport = _aggregate().to_transport_dict()
        store.put_chunk("bcast", "hash1", 2, [4, 5], transport)
        store.save()

        reloaded = ResultStore.open(path)
        chunks = reloaded.partial_chunks("bcast", "hash1")
        assert list(chunks) == [2]
        entry = chunks[2]
        assert entry["seeds"] == [4, 5]
        assert "total_elapsed_s" not in entry["aggregate"]  # split out beside it
        assert entry["elapsed_s"] >= 0
        assert reloaded.partial_cells() == {"bcast": 1}

    def test_stale_spec_hash_hides_chunks(self, tmp_path):
        store = ResultStore.open(tmp_path / "results.json")
        store.put_chunk("bcast", "hash1", 0, [0, 1], _aggregate().to_transport_dict())
        assert store.partial_chunks("bcast", "hash1") != {}
        assert store.partial_chunks("bcast", "hash2") == {}

    def test_new_spec_hash_replaces_partial_wholesale(self, tmp_path):
        store = ResultStore.open(tmp_path / "results.json")
        transport = _aggregate().to_transport_dict()
        store.put_chunk("bcast", "hash1", 0, [0, 1], transport)
        store.put_chunk("bcast", "hash1", 1, [2, 3], transport)
        store.put_chunk("bcast", "hash2", 0, [0, 1], transport)
        assert list(store.partial_chunks("bcast", "hash2")) == [0]
        assert store.partial_chunks("bcast", "hash1") == {}

    def test_put_promotes_away_partial_and_failure_state(self, tmp_path):
        store = ResultStore.open(tmp_path / "results.json")
        store.put_chunk("bcast", "hash1", 0, [0, 1], _aggregate().to_transport_dict())
        store.quarantine("bcast", "hash1", {"chunk_index": 1, "attempts": 3})
        store.put("bcast", "hash1", _aggregate())
        assert store.partial_cells() == {}
        assert store.failures() == {}
        assert store.has_cell("bcast", "hash1")

    def test_delete_drops_all_cell_state(self, tmp_path):
        store = ResultStore.open(tmp_path / "results.json")
        store.put_chunk("bcast", "hash1", 0, [0], _aggregate().to_transport_dict())
        store.quarantine("bcast", "hash1", {"chunk_index": 0})
        assert store.delete("bcast")
        assert store.partial_cells() == {}
        assert store.failures() == {}
        assert not store.delete("bcast")


class TestQuarantineRecords:
    def test_quarantine_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore.open(path)
        record = {
            "chunk_index": 1,
            "seeds": [2, 3],
            "kind": "timeout",
            "error": "ChunkTimeout",
            "message": "deadline",
            "traceback": "",
            "attempts": 3,
        }
        store.quarantine("bcast", "hash1", record)
        store.save()

        reloaded = ResultStore.open(path)
        assert reloaded.quarantined_cells() == ["bcast"]
        stored = reloaded.failures()["bcast"]
        assert stored["spec_hash"] == "hash1"
        assert stored["kind"] == "timeout"
        assert stored["attempts"] == 3
        assert reloaded.clear_failure("bcast")
        assert not reloaded.clear_failure("bcast")
        assert reloaded.quarantined_cells() == []


class TestSaveHygiene:
    def test_save_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore.open(path)
        store.put("bcast", "hash1", _aggregate())
        store.save()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_save_is_deterministic(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore.open(path)
        store.put("bcast", "hash1", _aggregate())
        store.save()
        first = path.read_bytes()
        ResultStore.open(path).save()
        assert path.read_bytes() == first


class TestMergeDeterminism:
    def test_out_of_order_chunks_merge_to_sequential_result(self, tmp_path):
        """Checkpoints landing in any order (retries, slow workers) merge --
        sorted by chunk index -- to the exact sequential aggregate."""
        cell = _cell(seeds=range(5))
        expected = run_cell(cell, chunk_trials=2).to_dict()

        cell_dict = cell.to_dict()
        seed_chunks = [[0, 1], [2, 3], [4]]
        path = tmp_path / "results.json"
        store = ResultStore.open(path)
        # Land the chunks out of order, as a chaotic parallel run would.
        for index in (2, 0, 1):
            _, transport = _run_cell_chunk((index, cell_dict, seed_chunks[index]))
            store.put_chunk("bcast", cell.spec_hash(), index, seed_chunks[index], transport)
        store.save()

        reloaded = ResultStore.open(path)
        chunks = reloaded.partial_chunks("bcast", cell.spec_hash())
        merged = TrialAggregate.empty()
        for index in sorted(chunks):
            transport = dict(chunks[index]["aggregate"])
            transport["total_elapsed_s"] = chunks[index]["elapsed_s"]
            merged = merged.merge(TrialAggregate.from_transport_dict(transport))
        assert merged.to_dict() == expected


class TestLockfile:
    def test_acquire_conflict_release_cycle(self, tmp_path):
        path = tmp_path / "results.json"
        first = ResultStore.open(path)
        first.acquire_lock()
        assert first.lock_path.exists()
        first.acquire_lock()  # reacquire by the same holder is a no-op

        second = ResultStore.open(path)
        with pytest.raises(ExperimentError, match="is locked by"):
            second.acquire_lock()

        first.release_lock()
        assert not first.lock_path.exists()
        second.acquire_lock()
        second.release_lock()

    def test_stale_lock_is_stolen(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore.open(path)
        store.lock_path.write_text("999999999")  # dead pid
        store.acquire_lock()
        assert store.lock_path.read_text().strip() != "999999999"
        store.release_lock()

    def test_unreadable_lock_owner_is_conservative(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore.open(path)
        store.lock_path.write_text("not-a-pid")
        with pytest.raises(ExperimentError, match="is locked by"):
            store.acquire_lock()
