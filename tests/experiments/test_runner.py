"""Tests for the campaign orchestrator: determinism, parallelism, resume."""

from __future__ import annotations

import json

import pytest

from repro.core.results import TrialAggregate
from repro.errors import ExperimentError
from repro.experiments.runner import run_campaign, run_cell, run_seeds, run_trial
from repro.experiments.spec import (
    BehaviorSpec,
    CampaignSpec,
    ExperimentSpec,
    SchedulerSpec,
)
from repro.experiments.store import ResultStore


def _acast_cell(name: str = "acast", seeds=range(4), **overrides) -> ExperimentSpec:
    spec = dict(
        name=name,
        protocol="acast",
        n=4,
        seeds=list(seeds),
        params={"value": "v", "sender": 0},
    )
    spec.update(overrides)
    return ExperimentSpec(**spec)


def _campaign() -> CampaignSpec:
    return CampaignSpec(
        name="runner-test",
        cells=[
            _acast_cell("plain"),
            _acast_cell(
                "crash",
                adversary={3: BehaviorSpec("crash")},
                scheduler=SchedulerSpec("fifo"),
            ),
            ExperimentSpec(
                name="coin", protocol="coinflip", n=4, seeds=[0, 1], params={"rounds": 1}
            ),
        ],
    )


class TestTrialAndCell:
    def test_run_trial_resolves_registry_names(self):
        result = run_trial(_acast_cell(), seed=0)
        assert result.agreed_value == "v"

    def test_run_trial_applies_corruptions(self):
        result = run_trial(_acast_cell(adversary={3: BehaviorSpec("crash")}), seed=0)
        assert 3 not in result.outputs

    def test_run_cell_matches_trial_by_trial_execution(self):
        cell = _acast_cell(seeds=range(5))
        stats = run_cell(cell, chunk_trials=2)
        expected = TrialAggregate()
        for seed in cell.seeds:
            expected.add(run_trial(cell, seed))
        assert stats.to_dict() == expected.to_dict()

    def test_unknown_protocol_fails_before_running(self):
        campaign = CampaignSpec(name="bad", cells=[_acast_cell(protocol="nope")])
        with pytest.raises(ExperimentError, match="unknown protocol runner"):
            run_campaign(campaign)


class TestParallelEquality:
    def test_parallel_equals_sequential_statistics(self):
        campaign = _campaign()
        sequential = run_campaign(campaign, workers=1, chunk_trials=2)
        parallel = run_campaign(campaign, workers=3, chunk_trials=2)
        assert set(sequential) == set(parallel)
        for name in sequential:
            assert sequential[name].to_dict() == parallel[name].to_dict()

    def test_parallel_store_bytes_identical(self, tmp_path):
        """Stores are byte-identical across worker counts, except the single
        advisory wall-clock field backing the deliveries/s report column."""
        import json

        campaign = _campaign()
        seq_path, par_path = tmp_path / "seq.json", tmp_path / "par.json"
        run_campaign(campaign, workers=1, store=ResultStore.open(seq_path), chunk_trials=2)
        run_campaign(campaign, workers=3, store=ResultStore.open(par_path), chunk_trials=2)

        def canonical(path):
            data = json.loads(path.read_text())
            timings = []
            for cell in data["cells"].values():
                timings.append(cell.pop("elapsed_s"))
            return json.dumps(data, sort_keys=True), timings

        seq_data, seq_timings = canonical(seq_path)
        par_data, par_timings = canonical(par_path)
        assert seq_data == par_data
        # Timing is present (non-zero) on both sides, merely not identical.
        assert all(t > 0 for t in seq_timings + par_timings)

    def test_chunk_size_does_not_change_statistics(self):
        campaign = CampaignSpec(name="chunks", cells=[_acast_cell(seeds=range(7))])
        by_one = run_campaign(campaign, chunk_trials=1)["acast"]
        by_five = run_campaign(campaign, chunk_trials=5)["acast"]
        assert by_one.to_dict() == by_five.to_dict()


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        campaign = _campaign()
        store = ResultStore.open(tmp_path / "results.json")
        run_campaign(campaign, store=store, chunk_trials=2)
        first_bytes = (tmp_path / "results.json").read_bytes()

        events = []
        run_campaign(
            campaign,
            store=ResultStore.open(tmp_path / "results.json"),
            progress=events.append,
        )
        assert all(event.resumed for event in events)
        assert {event.cell for event in events} == {cell.name for cell in campaign.cells}
        assert (tmp_path / "results.json").read_bytes() == first_bytes

    def test_resume_recomputes_only_deleted_cell(self, tmp_path):
        import json

        campaign = _campaign()
        path = tmp_path / "results.json"
        run_campaign(campaign, store=ResultStore.open(path), chunk_trials=2)

        def canonical(raw):
            data = json.loads(raw)
            for cell in data["cells"].values():
                cell.pop("elapsed_s", None)
            return json.dumps(data, sort_keys=True)

        first = canonical(path.read_bytes())

        store = ResultStore.open(path)
        assert store.delete("crash")
        store.save()

        events = []
        run_campaign(campaign, store=ResultStore.open(path), progress=events.append, chunk_trials=2)
        ran = {event.cell for event in events if not event.resumed}
        assert ran == {"crash"}
        # The recomputed statistics are identical; only the advisory
        # wall-clock field of the recomputed cell may differ.
        assert canonical(path.read_bytes()) == first

    def test_changed_spec_invalidates_stored_cell(self, tmp_path):
        path = tmp_path / "results.json"
        campaign = CampaignSpec(name="c", cells=[_acast_cell(seeds=range(2))])
        run_campaign(campaign, store=ResultStore.open(path))

        changed = CampaignSpec(name="c", cells=[_acast_cell(seeds=range(3))])
        events = []
        results = run_campaign(changed, store=ResultStore.open(path), progress=events.append)
        assert not any(event.resumed for event in events)
        assert results["acast"].trials == 3

    def test_store_campaign_mismatch_rejected(self, tmp_path):
        path = tmp_path / "results.json"
        run_campaign(CampaignSpec(name="a", cells=[_acast_cell(seeds=[0])]),
                     store=ResultStore.open(path))
        with pytest.raises(ExperimentError, match="belongs to campaign"):
            run_campaign(CampaignSpec(name="b", cells=[_acast_cell(seeds=[0])]),
                         store=ResultStore.open(path))


class TestProgress:
    def test_progress_counts_reach_total(self):
        campaign = _campaign()
        events = []
        run_campaign(campaign, progress=events.append, chunk_trials=2)
        assert events[-1].completed == campaign.trials
        assert events[-1].total == campaign.trials
        per_cell = [event for event in events if event.cell == "plain"]
        assert per_cell[-1].cell_completed == 4


class TestRunSeeds:
    def test_run_seeds_parallel_matches_sequential(self):
        from repro.core import api

        sequential = run_seeds(api.run_acast, range(5), workers=1, n=4, value="v")
        parallel = run_seeds(api.run_acast, range(5), workers=2, chunk_trials=2,
                             n=4, value="v")
        assert sequential.to_dict() == parallel.to_dict()
        assert parallel.trials == 5
        assert parallel.frequency("v") == 1.0
