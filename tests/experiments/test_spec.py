"""Tests for campaign/experiment spec serialization and validation."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.spec import (
    BehaviorSpec,
    CampaignSpec,
    ExecutionPolicy,
    ExperimentSpec,
    FaultSpec,
    SchedulerSpec,
)


def _campaign() -> CampaignSpec:
    return CampaignSpec(
        name="demo",
        cells=[
            ExperimentSpec(
                name="plain",
                protocol="coinflip",
                n=4,
                seeds=[0, 1, 2],
                params={"rounds": 1},
            ),
            ExperimentSpec(
                name="attacked",
                protocol="fba",
                n=4,
                seeds=[5, 6],
                params={"inputs": {"0": "a", "1": "b", "2": "c", "3": "d"}},
                adversary={3: BehaviorSpec("crash")},
                scheduler=SchedulerSpec("favour_parties", {"favoured": [3]}),
            ),
        ],
    )


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self):
        campaign = _campaign()
        clone = CampaignSpec.from_json(campaign.to_json())
        assert clone == campaign
        assert clone.to_json() == campaign.to_json()

    def test_save_load(self, tmp_path):
        path = tmp_path / "campaign.json"
        campaign = _campaign()
        campaign.save(path)
        assert CampaignSpec.load(path) == campaign

    def test_adversary_keys_are_ints_after_round_trip(self):
        clone = CampaignSpec.from_json(_campaign().to_json())
        assert list(clone.cell("attacked").adversary) == [3]

    def test_from_dict_accepts_plain_nested_dicts(self):
        cell = ExperimentSpec(
            name="x",
            protocol="coinflip",
            n=4,
            seeds=[0],
            adversary={1: {"behavior": "crash"}},  # type: ignore[dict-item]
            scheduler={"scheduler": "fifo"},  # type: ignore[arg-type]
        )
        assert cell.adversary[1] == BehaviorSpec("crash")
        assert cell.scheduler == SchedulerSpec("fifo")

    def test_malformed_json_raises_experiment_error(self):
        with pytest.raises(ExperimentError):
            CampaignSpec.from_json("{not json")
        with pytest.raises(ExperimentError):
            CampaignSpec.from_json('{"name": "x"}')


class TestValidation:
    def test_valid_campaign_passes(self):
        _campaign().validate()

    def test_duplicate_cell_names_rejected(self):
        campaign = _campaign()
        campaign.cells[1].name = campaign.cells[0].name
        with pytest.raises(ExperimentError, match="duplicate"):
            campaign.validate()

    def test_empty_seeds_rejected(self):
        campaign = _campaign()
        campaign.cells[0].seeds = []
        with pytest.raises(ExperimentError, match="seed list"):
            campaign.validate()

    def test_corrupted_pid_out_of_range_rejected(self):
        campaign = _campaign()
        campaign.cells[1].adversary[7] = BehaviorSpec("crash")
        with pytest.raises(ExperimentError, match="pid 7"):
            campaign.validate()

    def test_reserved_params_rejected(self):
        campaign = _campaign()
        campaign.cells[0].params["seed"] = 7
        with pytest.raises(ExperimentError, match="params may not override seed"):
            campaign.validate()
        campaign.cells[0].params = {"scheduler": "fifo", "rounds": 1}
        with pytest.raises(ExperimentError, match="scheduler"):
            campaign.validate()

    def test_unknown_cell_lookup_raises(self):
        with pytest.raises(ExperimentError, match="no cell"):
            _campaign().cell("missing")


class TestSpecHash:
    def test_hash_ignores_name_but_not_parameters(self):
        cell = _campaign().cells[0]
        renamed = ExperimentSpec.from_dict({**cell.to_dict(), "name": "other"})
        assert renamed.spec_hash() == cell.spec_hash()
        changed = ExperimentSpec.from_dict({**cell.to_dict(), "seeds": [0, 1]})
        assert changed.spec_hash() != cell.spec_hash()

    def test_hash_stable_across_round_trip(self):
        cell = _campaign().cells[1]
        clone = ExperimentSpec.from_dict(cell.to_dict())
        assert clone.spec_hash() == cell.spec_hash()


class TestExecutionPlane:
    def test_policy_and_fault_round_trip(self):
        campaign = _campaign()
        campaign.policy = ExecutionPolicy(
            trial_timeout_s=2.5, max_chunk_retries=1, fail_fast=True
        )
        campaign.cells[0].fault = FaultSpec("sigkill", {"chunks": [1]})
        campaign.cells[0].trial_timeout_s = 0.5
        campaign.cells[0].max_chunk_retries = 4

        clone = CampaignSpec.from_json(campaign.to_json())
        assert clone == campaign
        assert clone.policy == campaign.policy
        assert clone.cells[0].fault == FaultSpec("sigkill", {"chunks": [1]})
        assert clone.cells[0].trial_timeout_s == 0.5
        assert clone.cells[0].max_chunk_retries == 4

    def test_policy_accepts_plain_dicts(self):
        campaign = CampaignSpec(
            name="c",
            cells=_campaign().cells,
            policy={"max_chunk_retries": 3},  # type: ignore[arg-type]
        )
        assert campaign.policy == ExecutionPolicy(max_chunk_retries=3)
        cell = ExperimentSpec(
            name="x",
            protocol="coinflip",
            n=4,
            seeds=[0],
            fault={"fault": "raise"},  # type: ignore[arg-type]
        )
        assert cell.fault == FaultSpec("raise")

    def test_execution_keys_do_not_change_spec_hash(self):
        """Chaos faults and supervision overrides never invalidate stored
        results: they change how trials are supervised, not what they compute."""
        clean = _campaign().cells[0]
        chaotic = ExperimentSpec.from_dict(clean.to_dict())
        chaotic.fault = FaultSpec("sigkill", {"attempts": None})
        chaotic.trial_timeout_s = 0.1
        chaotic.max_chunk_retries = 9
        assert chaotic.spec_hash() == clean.spec_hash()

    def test_policy_validation(self):
        with pytest.raises(ExperimentError, match="trial_timeout_s"):
            ExecutionPolicy(trial_timeout_s=0).validate()
        with pytest.raises(ExperimentError, match="max_chunk_retries"):
            ExecutionPolicy(max_chunk_retries=-1).validate()
        with pytest.raises(ExperimentError, match="backoff_base_s"):
            ExecutionPolicy(backoff_base_s=-0.5).validate()

    def test_cell_execution_field_validation(self):
        campaign = _campaign()
        campaign.cells[0].trial_timeout_s = -1.0
        with pytest.raises(ExperimentError, match="trial_timeout_s"):
            campaign.validate()
        campaign.cells[0].trial_timeout_s = None
        campaign.cells[0].fault = FaultSpec("")
        with pytest.raises(ExperimentError, match="fault"):
            campaign.validate()


class TestGrid:
    def test_grid_expands_cartesian_product(self):
        campaign = CampaignSpec.grid(
            "sweep",
            protocol="coinflip",
            n=[4, 7],
            seeds=range(3),
            axes={"rounds": [1, 3], "epsilon": [0.25]},
        )
        assert len(campaign.cells) == 4
        names = [cell.name for cell in campaign.cells]
        assert "n=4,epsilon=0.25,rounds=1" in names
        by_name = {cell.name: cell for cell in campaign.cells}
        cell = by_name["n=7,epsilon=0.25,rounds=3"]
        assert cell.n == 7
        assert cell.params == {"epsilon": 0.25, "rounds": 3}
        assert cell.seeds == [0, 1, 2]

    def test_grid_single_n_omits_n_label(self):
        campaign = CampaignSpec.grid(
            "sweep", protocol="coinflip", n=4, seeds=[0], axes={"rounds": [1]}
        )
        assert [cell.name for cell in campaign.cells] == ["rounds=1"]

    def test_grid_trials_property(self):
        campaign = CampaignSpec.grid(
            "sweep", protocol="coinflip", n=4, seeds=range(5), axes={"rounds": [1, 3]}
        )
        assert campaign.trials == 10
