"""Tests for the result store and the campaign CLI."""

from __future__ import annotations

import json

import pytest

from repro.core.results import TrialAggregate
from repro.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.spec import CampaignSpec, ExperimentSpec
from repro.experiments.store import ResultStore


def _aggregate(trials: int = 2) -> TrialAggregate:
    stats = TrialAggregate()
    for _ in range(trials):
        stats.trials += 1
        stats.value_counts["'v'"] += 1
        stats.outputs.append("v")
    return stats


class TestResultStore:
    def test_put_save_open_get_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultStore(path)
        store.bind_campaign("c")
        store.put("cell", "hash1", _aggregate())
        store.save()

        reloaded = ResultStore.open(path)
        assert reloaded.campaign == "c"
        assert reloaded.cell_names() == ["cell"]
        assert reloaded.has_cell("cell", "hash1")
        assert not reloaded.has_cell("cell", "other")
        assert reloaded.get("cell").to_dict() == _aggregate().to_dict()

    def test_open_missing_file_is_empty(self, tmp_path):
        store = ResultStore.open(tmp_path / "absent.json")
        assert store.cell_names() == []

    def test_get_missing_cell_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no cell"):
            ResultStore(tmp_path / "x.json").get("cell")

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text("{broken")
        with pytest.raises(ExperimentError, match="cannot read"):
            ResultStore.open(path)
        path.write_text(json.dumps({"version": 99, "cells": {}}))
        with pytest.raises(ExperimentError, match="version"):
            ResultStore.open(path)

    def test_delete(self, tmp_path):
        store = ResultStore(tmp_path / "x.json")
        store.put("cell", "h", _aggregate())
        assert store.delete("cell")
        assert not store.delete("cell")

    def test_save_is_deterministic(self, tmp_path):
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (path_a, path_b):
            store = ResultStore(path)
            store.bind_campaign("c")
            store.put("z", "h", _aggregate())
            store.put("a", "h", _aggregate())
            store.save()
        assert path_a.read_bytes() == path_b.read_bytes()


@pytest.fixture
def campaign_path(tmp_path):
    campaign = CampaignSpec(
        name="cli-test",
        cells=[
            ExperimentSpec(
                name="acast",
                protocol="acast",
                n=4,
                seeds=[0, 1],
                params={"value": "v", "sender": 0},
            )
        ],
    )
    path = tmp_path / "campaign.json"
    campaign.save(path)
    return path


class TestCli:
    def test_run_writes_default_results_path(self, campaign_path, capsys):
        assert main(["run", str(campaign_path), "--quiet"]) == 0
        out_path = campaign_path.with_name("campaign.results.json")
        assert out_path.exists()
        store = ResultStore.open(out_path)
        assert store.campaign == "cli-test"
        assert store.get("acast").trials == 2

    def test_run_resumes_then_fresh_recomputes(self, campaign_path, capsys):
        out = str(campaign_path.parent / "out.json")
        assert main(["run", str(campaign_path), "--out", out]) == 0
        capsys.readouterr()
        assert main(["run", str(campaign_path), "--out", out]) == 0
        assert "resumed 2/2" in capsys.readouterr().out
        assert main(["run", str(campaign_path), "--out", out, "--fresh"]) == 0
        assert "ran 2/2" in capsys.readouterr().out

    def test_report_and_drop(self, campaign_path, capsys):
        out = str(campaign_path.parent / "out.json")
        main(["run", str(campaign_path), "--out", out, "--quiet"])
        capsys.readouterr()

        assert main(["report", out]) == 0
        output = capsys.readouterr().out
        assert "cli-test" in output and "acast" in output

        assert main(["report", out, "--drop", "acast"]) == 0
        assert ResultStore.open(out).cell_names() == []
        assert main(["report", out, "--drop", "acast"]) == 1

    def test_validate(self, campaign_path, tmp_path, capsys):
        assert main(["validate", str(campaign_path)]) == 0
        assert "ok" in capsys.readouterr().out

        bad = CampaignSpec.load(campaign_path)
        bad.cells[0].protocol = "nope"
        bad_path = tmp_path / "bad.json"
        bad.save(bad_path)
        assert main(["validate", str(bad_path)]) == 1
        assert "unknown protocol" in capsys.readouterr().err

    def test_missing_campaign_file_errors_cleanly(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err
