"""Chaos tests for the supervised execution plane.

Every fault here is injected through the ``FAULTS`` registry hook in the
worker entrypoint -- the same mechanism the ``runner-chaos`` CI job uses --
and every recovery assertion is a byte-identity check against an undisturbed
sequential run: supervision may retry, kill and re-dispatch, but it may never
change the statistics.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.errors import ExperimentError, FaultInjectionError
from repro.experiments import (
    CampaignInterrupted,
    CampaignSpec,
    ExecutionPolicy,
    ExperimentSpec,
    FaultSpec,
    ResultStore,
    run_campaign,
    run_seeds,
)
from repro.experiments.registry import FAULTS, inject_fault
from repro.experiments.supervisor import BACKOFF_CAP_S, backoff_delay
from repro.obs.metrics import MetricsRegistry


def _cells(fault=None):
    """Two cheap cells; with chunk_trials=2 the first spans three chunks."""
    return [
        ExperimentSpec(
            name="bcast",
            protocol="acast",
            n=4,
            seeds=list(range(6)),
            params={"value": "v", "sender": 0},
            fault=fault,
        ),
        ExperimentSpec(
            name="coin",
            protocol="coinflip",
            n=4,
            seeds=list(range(4)),
            params={"rounds": 1},
            fault=fault,
        ),
    ]


def _campaign(fault=None) -> CampaignSpec:
    return CampaignSpec(name="chaos", cells=_cells(fault))


def _canonical(path):
    """Store bytes minus the advisory wall-clock field."""
    data = json.loads(path.read_text())
    for cell in data["cells"].values():
        cell.pop("elapsed_s", None)
    return json.dumps(data, sort_keys=True)


def _metrics() -> MetricsRegistry:
    return MetricsRegistry(queue_depth_every=0, completion_steps=False)


@pytest.fixture()
def baseline(tmp_path):
    """Sequential fault-free store to diff chaos runs against."""
    path = tmp_path / "baseline.json"
    run_campaign(_campaign(), workers=1, chunk_trials=2, store=ResultStore.open(path))
    return _canonical(path)


class TestBackoff:
    def test_deterministic_exponential_schedule(self):
        assert backoff_delay(1, 0.05) == 0.05
        assert backoff_delay(2, 0.05) == 0.1
        assert backoff_delay(3, 0.05) == 0.2
        assert [backoff_delay(k, 0.05) for k in range(1, 4)] == [
            backoff_delay(k, 0.05) for k in range(1, 4)
        ]

    def test_capped(self):
        assert backoff_delay(50, 1.0) == BACKOFF_CAP_S


class TestInjectFault:
    def test_no_spec_is_a_noop(self):
        inject_fault(None, chunk_index=0, attempt=0)
        inject_fault({}, chunk_index=3, attempt=7)

    def test_chunk_selector(self):
        spec = FaultSpec("raise", {"chunks": [1, 3]}).to_dict()
        inject_fault(spec, chunk_index=0, attempt=0)  # not selected
        with pytest.raises(FaultInjectionError):
            inject_fault(spec, chunk_index=1, attempt=0)

    def test_attempts_default_to_first_dispatch_only(self):
        spec = FaultSpec("raise").to_dict()
        with pytest.raises(FaultInjectionError):
            inject_fault(spec, chunk_index=0, attempt=0)
        inject_fault(spec, chunk_index=0, attempt=1)  # retry recovers

    def test_attempts_none_hits_every_dispatch(self):
        spec = FaultSpec("raise", {"attempts": None}).to_dict()
        for attempt in range(3):
            with pytest.raises(FaultInjectionError):
                inject_fault(spec, chunk_index=0, attempt=attempt)

    def test_unknown_fault_name_raises(self):
        with pytest.raises(ExperimentError, match="unknown chaos fault"):
            inject_fault({"fault": "nope"}, chunk_index=0, attempt=0)

    def test_registry_lists_all_faults(self):
        for name in ("raise", "hang", "exit", "sigkill"):
            assert FAULTS.get(name) is not None


class TestChaosRecovery:
    """Faults on the first dispatch; bounded retries must recover
    byte-identically to the sequential baseline."""

    def _chaos_store(self, tmp_path, fault_name, params, metrics, **kwargs):
        path = tmp_path / f"{fault_name}.json"
        fault = FaultSpec(fault_name, params)
        run_campaign(
            _campaign(fault),
            workers=2,
            chunk_trials=2,
            store=ResultStore.open(path),
            metrics=metrics,
            **kwargs,
        )
        return path

    def test_raise_fault_retries_to_identical_store(self, tmp_path, baseline):
        metrics = _metrics()
        path = self._chaos_store(
            tmp_path, "raise", {"chunks": [1], "attempts": [0]}, metrics
        )
        assert _canonical(path) == baseline
        assert metrics.counter_values()["runner.retries"] >= 1

    def test_sigkill_fault_restarts_worker_and_recovers(self, tmp_path, baseline):
        metrics = _metrics()
        path = self._chaos_store(
            tmp_path, "sigkill", {"chunks": [1], "attempts": [0]}, metrics
        )
        assert _canonical(path) == baseline
        counters = metrics.counter_values()
        assert counters["runner.worker_restarts"] >= 1
        assert counters["runner.retries"] >= 1

    def test_exit_fault_counts_as_worker_death(self, tmp_path, baseline):
        metrics = _metrics()
        path = self._chaos_store(
            tmp_path, "exit", {"code": 7, "chunks": [0], "attempts": [0]}, metrics
        )
        assert _canonical(path) == baseline
        assert metrics.counter_values()["runner.worker_restarts"] >= 1

    def test_hang_fault_times_out_and_recovers(self, tmp_path, baseline):
        metrics = _metrics()
        path = self._chaos_store(
            tmp_path,
            "hang",
            {"seconds": 30, "chunks": [0], "attempts": [0]},
            metrics,
            policy=ExecutionPolicy(trial_timeout_s=0.2),
        )
        assert _canonical(path) == baseline
        counters = metrics.counter_values()
        assert counters["runner.timeouts"] >= 1
        assert counters["runner.worker_restarts"] >= 1

    def test_no_leaked_workers(self, tmp_path):
        run_campaign(
            _campaign(FaultSpec("sigkill", {"chunks": [1], "attempts": [0]})),
            workers=2,
            chunk_trials=2,
        )
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()


class TestQuarantine:
    def _poison(self):
        """A fault that hits chunk 1 of every cell on *every* attempt."""
        return FaultSpec("raise", {"chunks": [1], "attempts": None})

    @pytest.mark.parametrize("workers", [1, 2])
    def test_poison_chunk_quarantines_cell_healthy_chunks_survive(
        self, tmp_path, workers
    ):
        path = tmp_path / "poison.json"
        metrics = _metrics()
        failures = {}
        # Poison only the first cell; the second must still complete.
        cells = _cells()
        cells[0].fault = self._poison()
        results = run_campaign(
            CampaignSpec(name="chaos", cells=cells),
            workers=workers,
            chunk_trials=2,
            store=ResultStore.open(path),
            policy=ExecutionPolicy(max_chunk_retries=1),
            metrics=metrics,
            failures=failures,
        )
        assert set(results) == {"coin"}
        assert set(failures) == {"bcast"}
        failure = failures["bcast"]
        assert failure.kind == "exception"
        assert failure.error == "FaultInjectionError"
        assert failure.attempts == 2  # first dispatch + one retry
        assert metrics.counter_values()["runner.quarantined_cells"] == 1

        store = ResultStore.open(path)
        record = store.failures()["bcast"]
        assert record["chunk_index"] == 1
        assert record["seeds"] == [2, 3]
        assert record["attempts"] == 2
        assert "FaultInjectionError" in record["traceback"]
        # Healthy chunk checkpoints of the quarantined cell are kept.
        assert store.partial_cells().get("bcast", 0) >= 1
        assert "bcast" not in store.cell_names()
        assert "coin" in store.cell_names()

    def test_fail_fast_aborts_campaign(self, tmp_path):
        cells = _cells()
        cells[0].fault = self._poison()
        with pytest.raises(ExperimentError, match="fail_fast"):
            run_campaign(
                CampaignSpec(name="chaos", cells=cells),
                workers=1,
                chunk_trials=2,
                store=ResultStore.open(tmp_path / "ff.json"),
                policy=ExecutionPolicy(max_chunk_retries=0, fail_fast=True),
            )

    def test_rerun_without_fault_clears_quarantine(self, tmp_path, baseline):
        path = tmp_path / "poison.json"
        run_campaign(
            _campaign(self._poison()),
            workers=1,
            chunk_trials=2,
            store=ResultStore.open(path),
            policy=ExecutionPolicy(max_chunk_retries=0),
        )
        assert ResultStore.open(path).quarantined_cells() == ["bcast", "coin"]

        events = []
        run_campaign(
            _campaign(),
            workers=1,
            chunk_trials=2,
            store=ResultStore.open(path),
            progress=events.append,
        )
        store = ResultStore.open(path)
        assert store.failures() == {}
        assert store.partial_cells() == {}
        assert _canonical(path) == baseline
        # The healthy checkpoints were resumed, not recomputed.
        assert any(event.resumed for event in events)

    def test_per_cell_retry_override_beats_policy(self, tmp_path):
        cell = _cells()[1]
        cell.fault = FaultSpec("raise", {"attempts": None})
        cell.max_chunk_retries = 0
        failures = {}
        run_campaign(
            CampaignSpec(name="chaos", cells=[cell]),
            workers=1,
            chunk_trials=2,
            policy=ExecutionPolicy(max_chunk_retries=5),
            failures=failures,
        )
        assert failures["coin"].attempts == 1


class TestInterrupt:
    def test_ctrl_c_flushes_checkpoints_and_resumes(self, tmp_path, baseline):
        path = tmp_path / "interrupted.json"
        campaign = _campaign()

        seen = []

        def interrupt_after_two(event):
            seen.append(event)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(
                campaign,
                workers=1,
                chunk_trials=2,
                store=ResultStore.open(path),
                progress=interrupt_after_two,
            )
        assert isinstance(excinfo.value, KeyboardInterrupt)
        assert excinfo.value.checkpointed_trials == 4  # two chunks of two
        assert excinfo.value.total_trials == campaign.trials

        # Completed chunks are on disk, no temp/lock residue.
        assert not path.with_name(path.name + ".tmp").exists()
        assert not path.with_name(path.name + ".lock").exists()
        store = ResultStore.open(path)
        assert sum(store.partial_cells().values()) >= 1 or store.cell_names()

        # Resume completes the campaign to the byte-identical artifact.
        events = []
        run_campaign(
            campaign,
            workers=1,
            chunk_trials=2,
            store=ResultStore.open(path),
            progress=events.append,
        )
        assert _canonical(path) == baseline
        assert any(event.resumed for event in events)

    def test_parallel_interrupt_leaks_no_workers(self, tmp_path):
        path = tmp_path / "interrupted.json"

        def interrupt_immediately(event):
            raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted):
            run_campaign(
                _campaign(),
                workers=2,
                chunk_trials=2,
                store=ResultStore.open(path),
                progress=interrupt_immediately,
            )
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()
        assert not path.with_name(path.name + ".lock").exists()


class TestLock:
    def test_concurrent_run_on_same_store_fails_fast(self, tmp_path):
        path = tmp_path / "results.json"
        lock = path.with_name(path.name + ".lock")
        lock.write_text(str(os.getpid()))  # a live owner
        with pytest.raises(ExperimentError, match="is locked by"):
            run_campaign(_campaign(), chunk_trials=2, store=ResultStore.open(path))
        lock.unlink()

    def test_stale_lock_from_dead_process_is_stolen(self, tmp_path):
        path = tmp_path / "results.json"
        lock = path.with_name(path.name + ".lock")
        lock.write_text("999999999")  # no such pid
        results = run_campaign(
            _campaign(), chunk_trials=2, store=ResultStore.open(path)
        )
        assert set(results) == {"bcast", "coin"}
        assert not lock.exists()  # released after the run


# ----------------------------------------------------------------------
# run_seeds rides the same supervisor
def _boom_runner(seed, **kwargs):
    raise ValueError(f"boom on seed {seed}")


def _sleepy_runner(seed, **kwargs):
    if seed == 0:
        time.sleep(30)
    from repro.core import api

    return api.run_acast(n=4, seed=seed, value="v")


class TestRunSeedsSupervised:
    def test_exhausted_retries_raise(self):
        with pytest.raises(ExperimentError, match="failed after 1 attempt"):
            run_seeds(
                _boom_runner,
                range(4),
                workers=2,
                chunk_trials=2,
                max_chunk_retries=0,
            )

    def test_timeout_kills_hung_chunk(self):
        with pytest.raises(ExperimentError, match="timeout"):
            run_seeds(
                _sleepy_runner,
                range(4),
                workers=2,
                chunk_trials=1,
                trial_timeout_s=0.2,
                max_chunk_retries=0,
            )
