"""Structured reports and the ablate/report CLI surfaces."""

from __future__ import annotations

import json

import pytest

from repro.analysis.ablation import build_ablation_campaign
from repro.experiments.cli import main
from repro.experiments.report import (
    build_report,
    histogram_summaries,
    render_report,
    render_report_markdown,
    render_report_text,
)
from repro.experiments.runner import run_campaign
from repro.experiments.store import ResultStore
from repro.obs.schema import validate_report


@pytest.fixture(scope="module")
def campaign():
    return build_ablation_campaign(
        "report-test",
        "coinflip",
        4,
        [1, 2, 3],
        factors=[],
        base_params={"rounds": 1},
    )


@pytest.fixture(scope="module")
def results(campaign):
    return run_campaign(campaign, workers=1)


class TestBuildReport:
    def test_payload_validates_against_schema(self, campaign, results):
        from repro.analysis.claims import evaluate_claims

        payload = build_report(
            campaign.name, results, claims=evaluate_claims(campaign, results)
        )
        assert validate_report(payload) == []
        assert payload["campaign"] == "report-test"
        assert set(payload["cells"]) == {"baseline"}

    def test_payload_is_json_serializable_and_versioned(self, campaign, results):
        payload = build_report(campaign.name, results)
        parsed = json.loads(render_report(payload, "json"))
        assert parsed["report_version"] == 1
        assert validate_report(parsed) == []

    def test_histogram_summaries_expose_percentiles(self, results):
        summaries = histogram_summaries(results)
        assert "baseline" in summaries
        metrics = summaries["baseline"]
        # The metrics registry records completion steps and queue depth.
        assert any(name.startswith("completion_step") for name in metrics)
        assert "queue_depth" in metrics
        for summary in metrics.values():
            assert set(summary) == {"count", "mean", "p50", "p90", "p99", "max"}
            assert summary["count"] > 0

    def test_text_and_markdown_renderings_cover_sections(self, campaign, results):
        from repro.analysis.claims import evaluate_claims

        payload = build_report(
            campaign.name, results, claims=evaluate_claims(campaign, results)
        )
        text = render_report_text(payload)
        assert "campaign: report-test" in text
        assert "histogram percentiles" in text
        assert "claims:" in text
        markdown = render_report_markdown(payload)
        assert markdown.startswith("## Campaign `report-test`")
        assert "### Histogram percentiles" in markdown
        assert "### Claims" in markdown

    def test_unknown_format_rejected(self, campaign, results):
        payload = build_report(campaign.name, results)
        with pytest.raises(ValueError, match="unknown report format"):
            render_report(payload, "yaml")


class TestValidateReport:
    def test_rejects_malformed_payloads(self):
        assert validate_report([]) == ["report is not a JSON object"]
        problems = validate_report({"report_version": 2, "cells": {}})
        assert any("report_version" in problem for problem in problems)
        problems = validate_report(
            {"report_version": 1, "cells": {"c": {"trials": -1}}}
        )
        assert any("non-negative" in problem for problem in problems)
        problems = validate_report(
            {
                "report_version": 1,
                "cells": {},
                "claims": {"passed": "yes", "claims": [{"status": "meh"}]},
            }
        )
        assert any("passed" in problem for problem in problems)
        assert any("status" in problem for problem in problems)


class TestReportCli:
    @pytest.fixture()
    def results_path(self, tmp_path, campaign):
        path = tmp_path / "report-test.results.json"
        store = ResultStore.open(path)
        run_campaign(campaign, workers=1, store=store)
        return path

    def test_report_json_round_trips(self, results_path, capsys):
        assert main(["report", str(results_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_report(payload) == []
        assert payload["campaign"] == "report-test"

    def test_report_markdown(self, results_path, capsys):
        assert main(["report", str(results_path), "--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("## Campaign")

    def test_report_with_campaign_evaluates_claims(
        self, results_path, tmp_path, campaign, capsys
    ):
        spec_path = tmp_path / "campaign.json"
        campaign.save(spec_path)
        assert main(
            ["report", str(results_path), "--campaign", str(spec_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "[PASS] coin_bias" in out


class TestAblateCli:
    def test_quick_shape_honest_run_passes(self, tmp_path, capsys):
        json_path = tmp_path / "ablation.json"
        code = main(
            [
                "ablate",
                "--n", "4",
                "--seeds", "3",
                "--rounds", "1",
                "--factors", "gc_pause,metering",
                "--quiet",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert validate_report(payload) == []
        assert set(payload["cells"]) == {"baseline", "no-gc_pause", "no-metering"}
        contribution = {row["cell"]: row for row in payload["contribution"]}
        assert contribution["no-gc_pause"]["stats_identical"] is True
        assert payload["claims"]["passed"] is True
        out = capsys.readouterr().out
        assert "per-factor contribution" in out

    def test_biased_run_fails_the_claims_gate(self, capsys):
        code = main(
            ["ablate", "--n", "4", "--seeds", "3", "--rounds", "1", "--biased",
             "--quiet"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "refuted" in captured.err
        assert "[FAIL] coin_bias" in captured.out

    def test_unknown_factor_is_a_usage_error(self, capsys):
        code = main(["ablate", "--factors", "warp_drive", "--quiet"])
        assert code == 2
        assert "unknown factor" in capsys.readouterr().err

    def test_results_store_resumes(self, tmp_path, capsys):
        out_path = tmp_path / "ablation.results.json"
        args = [
            "ablate",
            "--n", "4",
            "--seeds", "2",
            "--rounds", "1",
            "--factors", "gc_pause",
            "--out", str(out_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "ran 2/2 trials" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "resumed 2/2" in second
