"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolParams
from repro.crypto.field import Field


@pytest.fixture
def params4() -> ProtocolParams:
    """Four parties, one fault: the paper's canonical configuration."""
    return ProtocolParams.for_parties(4)


@pytest.fixture
def params7() -> ProtocolParams:
    """Seven parties, two faults."""
    return ProtocolParams.for_parties(7)


@pytest.fixture
def small_field() -> Field:
    """A small prime field used by crypto unit tests."""
    return Field(101)


@pytest.fixture
def big_field() -> Field:
    """The default protocol field."""
    return Field(2_147_483_647)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic randomness source for crypto tests."""
    return random.Random(12345)
