"""Tests for the Appendix-D bias analysis."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.binomial import (
    bias_bound_row,
    central_band_bound,
    coinflip_iterations,
    exact_tail_probability,
    fair_choice_bits,
    fair_choice_epsilon,
    minimum_iterations_for_bias,
    monte_carlo_tail,
    paper_tail_lower_bound,
)


class TestIterationFormula:
    def test_matches_paper_expression(self):
        epsilon, n = 0.25, 4
        expected = 4 * math.ceil((math.e / (epsilon * math.pi)) ** 2 * n**4)
        assert coinflip_iterations(epsilon, n) == expected

    def test_monotone_in_epsilon(self):
        assert coinflip_iterations(0.1, 4) > coinflip_iterations(0.2, 4)

    def test_monotone_in_n(self):
        assert coinflip_iterations(0.2, 7) > coinflip_iterations(0.2, 4)

    def test_scales_as_n_fourth(self):
        small = coinflip_iterations(0.2, 4)
        large = coinflip_iterations(0.2, 8)
        assert large / small == pytest.approx(16, rel=0.05)

    @pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0, -0.1])
    def test_rejects_bad_epsilon(self, epsilon):
        with pytest.raises(ValueError):
            coinflip_iterations(epsilon, 4)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            coinflip_iterations(0.2, 0)


class TestFairChoiceParameters:
    @pytest.mark.parametrize("m,expected_bits", [(3, 5), (4, 5), (5, 6), (8, 7)])
    def test_bits_smallest_power_of_two_at_least_2m2(self, m, expected_bits):
        bits = fair_choice_bits(m)
        assert bits == expected_bits
        assert 2 ** bits >= 2 * m * m
        assert 2 ** (bits - 1) < 2 * m * m

    def test_epsilon_formula(self):
        assert fair_choice_epsilon(4) == pytest.approx(1.0 / (100 * 4 * 2))

    def test_epsilon_rejects_m_below_2(self):
        with pytest.raises(ValueError):
            fair_choice_epsilon(1)


class TestTailProbabilities:
    def test_exact_tail_symmetric_coin(self):
        # Bin(4, 1/2): P[X > 2] = (4 + 1) / 16
        assert exact_tail_probability(4, 2) == pytest.approx(5 / 16)

    def test_exact_tail_edge_cases(self):
        assert exact_tail_probability(10, 10) == 0.0
        assert exact_tail_probability(10, -1) == 1.0

    def test_exact_tail_matches_monte_carlo(self):
        k, threshold = 40, 24
        exact = exact_tail_probability(k, threshold)
        estimate = monte_carlo_tail(k, threshold, samples=4000, rng=random.Random(0))
        assert estimate == pytest.approx(exact, abs=0.03)

    def test_paper_bound_is_conservative(self):
        """The paper's closed-form bound never exceeds the exact probability."""
        for n in (2, 3):
            k = coinflip_iterations(0.3, n)
            # exact computation is feasible only for small k; sub-sample n
            if k > 200_000:
                continue
            exact = exact_tail_probability(k, k // 2 + n * n)
            assert paper_tail_lower_bound(k, n) <= exact + 1e-9

    def test_paper_bound_hits_half_minus_epsilon(self):
        for n, epsilon in [(4, 0.25), (7, 0.1)]:
            k = coinflip_iterations(epsilon, n)
            assert paper_tail_lower_bound(k, n) >= 0.5 - epsilon - 1e-9

    def test_central_band_bound_positive(self):
        assert central_band_bound(1000, 2) > 0


class TestRows:
    def test_bias_bound_row_with_override(self):
        row = bias_bound_row(2, 0.3, k_override=64)
        assert row.k == 64
        assert 0 <= row.exact_probability <= 1

    def test_bias_bound_row_full_k_satisfies_claim(self):
        row = bias_bound_row(2, 0.3)
        assert row.satisfies_claim

    def test_minimum_iterations_much_smaller_than_paper(self):
        """The paper's constant is very conservative; the exact threshold is far lower."""
        n, epsilon = 3, 0.25
        minimal = minimum_iterations_for_bias(n, epsilon)
        assert minimal < coinflip_iterations(epsilon, n)


@settings(max_examples=30, deadline=None)
@given(k=st.integers(2, 200), threshold=st.integers(0, 220))
def test_tail_probability_is_a_probability(k, threshold):
    value = exact_tail_probability(k, threshold)
    assert 0.0 <= value <= 1.0


@settings(max_examples=20, deadline=None)
@given(k=st.integers(4, 120))
def test_tail_probability_monotone_in_threshold(k):
    values = [exact_tail_probability(k, threshold) for threshold in range(0, k, max(1, k // 7))]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
