"""Tests for the message-complexity predictions (experiment E8 support)."""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    ComplexityRow,
    acast_messages,
    aba_expected_messages,
    coinflip_expected_messages,
    coinflip_theoretical_messages,
    common_subset_expected_messages,
    fba_expected_messages,
    predictions_for,
    svss_rec_messages,
    svss_share_messages,
)
from repro.core import api


class TestClosedForms:
    def test_acast_quadratic(self):
        assert acast_messages(4) == 4 + 32
        assert acast_messages(8) / acast_messages(4) > 3

    def test_svss_quadratic(self):
        assert svss_share_messages(4) == 4 + 12 + 16
        assert svss_rec_messages(4) == 16

    def test_common_subset_is_n_times_ba(self):
        assert common_subset_expected_messages(4) == 4 * aba_expected_messages(4)

    def test_coinflip_linear_in_rounds(self):
        one = coinflip_expected_messages(4, 1)
        three = coinflip_expected_messages(4, 3)
        assert three > 2.5 * one - aba_expected_messages(4)

    def test_theoretical_coinflip_is_enormous(self):
        """The paper-scale iteration count dwarfs any simulation-scale run."""
        assert coinflip_theoretical_messages(4, 0.25) > 1e6
        assert coinflip_theoretical_messages(7, 0.1) > 1e8

    def test_fba_prediction_positive(self):
        assert fba_expected_messages(4, 1) > 0

    def test_predictions_dict_keys(self):
        predictions = predictions_for(4, 2)
        assert {"acast", "svss_share", "aba", "common_subset", "coinflip", "fba"} <= set(
            predictions
        )

    def test_complexity_row_ratio(self):
        row = ComplexityRow(protocol="acast", n=4, predicted=100.0, measured=50.0)
        assert row.ratio == 0.5


class TestPredictionsAgainstSimulator:
    def test_acast_prediction_is_upper_bound(self):
        result = api.run_acast(4, "x", sender=0, seed=0)
        assert result.trace.messages_sent <= acast_messages(4)

    def test_svss_share_prediction_within_factor_two(self):
        result = api.run_svss(4, 5, dealer=0, seed=0)
        predicted = svss_share_messages(4) + svss_rec_messages(4)
        assert result.trace.messages_sent <= 2 * predicted

    def test_coinflip_measured_within_factor_three(self):
        rounds = 2
        result = api.run_coinflip(4, seed=0, rounds=rounds)
        predicted = coinflip_expected_messages(4, rounds)
        assert result.trace.messages_sent <= 3 * predicted
