"""Machine-checked paper claims on known-good and deliberately-broken data."""

from __future__ import annotations

from collections import Counter

from repro.analysis.claims import (
    FAIL,
    PASS,
    SKIP,
    ClaimReport,
    ClaimResult,
    avss_lower_bound_claim,
    check_agreement,
    check_coin_bias,
    check_corruption_tolerance,
    check_message_complexity,
    check_message_lower_bound,
    check_output_domain,
    check_termination,
    evaluate_claims,
)
from repro.core.results import TrialAggregate
from repro.experiments.spec import CampaignSpec, ExperimentSpec


def make_aggregate(
    trials: int,
    ones: int = 0,
    zeros: int = 0,
    disagreements: int = 0,
    messages: int = 0,
    steps: int = 0,
    director_actions=None,
    extra_values=None,
) -> TrialAggregate:
    agg = TrialAggregate()
    agg.trials = trials
    agg.disagreements = disagreements
    agg.value_counts = Counter({"1": ones, "0": zeros})
    if extra_values:
        agg.value_counts.update(extra_values)
    agg.total_messages = messages
    agg.total_steps = steps
    agg.director_actions = Counter(director_actions or {})
    return agg


def campaign_of(*cells: ExperimentSpec) -> CampaignSpec:
    return CampaignSpec(name="claims-test", cells=list(cells))


def coin_cell(name="coin", n=4, seeds=10, **params) -> ExperimentSpec:
    return ExperimentSpec(
        name=name, protocol="coinflip", n=n, seeds=list(range(seeds)), params=params
    )


class TestCoinBias:
    def test_balanced_honest_coin_passes(self):
        campaign = campaign_of(coin_cell())
        result = check_coin_bias(campaign, {"coin": make_aggregate(10, ones=5, zeros=5)})
        assert result.status == PASS
        assert result.cells == ("coin",)

    def test_one_sided_small_sample_is_not_refuted(self):
        # 10/10 on one side cannot statistically refute Pr >= 0.25 at 95%:
        # the Wilson upper bound for 0/10 is ~0.28.
        campaign = campaign_of(coin_cell())
        result = check_coin_bias(campaign, {"coin": make_aggregate(10, ones=10)})
        assert result.status == PASS

    def test_rigged_coin_fails(self):
        # 20/20 on one side: the other bit's 95% UCB is ~0.16 < 0.25.
        campaign = campaign_of(coin_cell(seeds=20))
        result = check_coin_bias(campaign, {"coin": make_aggregate(20, ones=20)})
        assert result.status == FAIL
        assert "refutes bound" in result.detail

    def test_uses_cell_epsilon(self):
        # With a looser epsilon = 0.45 the bound is 0.05, which 20 one-sided
        # trials cannot refute.
        campaign = campaign_of(coin_cell(seeds=20, epsilon=0.45))
        result = check_coin_bias(campaign, {"coin": make_aggregate(20, ones=20)})
        assert result.status == PASS

    def test_adversarial_and_foreign_cells_are_skipped(self):
        scenario_cell = ExperimentSpec(
            name="attack", protocol="coinflip", n=4, seeds=[0], scenario="dealer-ambush"
        )
        campaign = campaign_of(scenario_cell)
        result = check_coin_bias(campaign, {"attack": make_aggregate(1, ones=1)})
        assert result.status == SKIP


class TestCorruptionTolerance:
    def test_within_budget_passes(self):
        cell = ExperimentSpec(
            name="attack", protocol="weak_coin", n=4, seeds=[0, 1], scenario="x"
        )
        agg = make_aggregate(2, director_actions={"corrupt": 2})
        result = check_corruption_tolerance(campaign_of(cell), {"attack": agg})
        assert result.status == PASS

    def test_director_overrun_fails(self):
        cell = ExperimentSpec(
            name="attack", protocol="weak_coin", n=4, seeds=[0, 1], scenario="x"
        )
        agg = make_aggregate(2, director_actions={"corrupt": 3})  # t=1, trials=2
        result = check_corruption_tolerance(campaign_of(cell), {"attack": agg})
        assert result.status == FAIL

    def test_static_adversary_overrun_fails(self):
        cell = ExperimentSpec(
            name="attack",
            protocol="weak_coin",
            n=4,
            seeds=[0],
            # Two static corruptions exceed t = 1 for n = 4.
            adversary={0: {"behavior": "silent"}, 1: {"behavior": "silent"}},
        )
        result = check_corruption_tolerance(
            campaign_of(cell), {"attack": make_aggregate(1)}
        )
        assert result.status == FAIL

    def test_honest_campaign_skips(self):
        campaign = campaign_of(coin_cell())
        result = check_corruption_tolerance(campaign, {"coin": make_aggregate(10)})
        assert result.status == SKIP


class TestAgreement:
    def test_zero_disagreements_pass(self):
        cell = ExperimentSpec(name="aba", protocol="aba", n=4, seeds=[0, 1])
        result = check_agreement(
            campaign_of(cell), {"aba": make_aggregate(2, ones=2)}
        )
        assert result.status == PASS

    def test_disagreement_fails(self):
        cell = ExperimentSpec(name="aba", protocol="aba", n=4, seeds=[0, 1])
        result = check_agreement(
            campaign_of(cell), {"aba": make_aggregate(2, ones=1, disagreements=1)}
        )
        assert result.status == FAIL

    def test_weak_coin_is_exempt(self):
        cell = ExperimentSpec(name="wc", protocol="weak_coin", n=4, seeds=[0])
        result = check_agreement(
            campaign_of(cell), {"wc": make_aggregate(1, disagreements=1)}
        )
        assert result.status == SKIP


class TestOutputDomain:
    def test_bits_pass(self):
        cell = coin_cell()
        result = check_output_domain(
            campaign_of(cell), {"coin": make_aggregate(10, ones=4, zeros=6)}
        )
        assert result.status == PASS

    def test_stray_value_fails(self):
        cell = coin_cell()
        agg = make_aggregate(10, ones=9, extra_values={"2": 1})
        result = check_output_domain(campaign_of(cell), {"coin": agg})
        assert result.status == FAIL
        assert "'2'" in result.detail


class TestMessageComplexity:
    def test_within_envelope_passes(self):
        cell = coin_cell(rounds=2)
        agg = make_aggregate(10, ones=5, zeros=5, messages=10 * 1300)
        result = check_message_complexity(campaign_of(cell), {"coin": agg})
        assert result.status == PASS

    def test_blowup_fails(self):
        cell = coin_cell(rounds=2)
        agg = make_aggregate(10, ones=5, zeros=5, messages=10 * 100000)
        result = check_message_complexity(campaign_of(cell), {"coin": agg})
        assert result.status == FAIL
        assert "x the predicted" in result.detail

    def test_meterless_cells_are_skipped(self):
        cell = coin_cell(rounds=2)
        agg = make_aggregate(10, ones=5, zeros=5, messages=0)
        result = check_message_complexity(campaign_of(cell), {"coin": agg})
        assert result.status == SKIP


class TestTermination:
    # For a 2-round coinflip at n=4 the envelope is max(120 * 16,
    # 3 * 1360) = 4080 delivered messages per trial.
    def test_within_bound_passes(self):
        agg = make_aggregate(10, ones=5, zeros=5, steps=10 * 1000)
        result = check_termination(campaign_of(coin_cell(rounds=2)), {"coin": agg})
        assert result.status == PASS

    def test_runaway_fails(self):
        agg = make_aggregate(10, ones=5, zeros=5, steps=10 * 5000)
        result = check_termination(campaign_of(coin_cell(rounds=2)), {"coin": agg})
        assert result.status == FAIL

    def test_flat_envelope_applies_without_a_prediction(self):
        cell = ExperimentSpec(name="wc", protocol="nonesuch", n=4, seeds=[0])
        agg = make_aggregate(1, steps=5000)  # default_step_bound(4) = 1920
        result = check_termination(campaign_of(cell), {"wc": agg})
        assert result.status == FAIL


class TestMessageLowerBound:
    def test_honest_cell_above_floor_passes(self):
        # n=4 -> t=1 -> floor n-t=3; 10 trials x 1300 msgs is far above.
        campaign = campaign_of(coin_cell(rounds=2))
        agg = make_aggregate(10, ones=5, zeros=5, messages=13000)
        result = check_message_lower_bound(campaign, {"coin": agg})
        assert result.status == PASS
        assert "n-t=3" in result.detail

    def test_impossibly_cheap_cell_fails(self):
        # 10 trials, 10 messages total: mean 1 < n-t = 3.  No real protocol
        # run can be this cheap; the accounting must be broken.
        campaign = campaign_of(coin_cell(rounds=2))
        agg = make_aggregate(10, ones=5, zeros=5, messages=10)
        result = check_message_lower_bound(campaign, {"coin": agg})
        assert result.status == FAIL
        assert "below the n-t=3 lower bound" in result.detail

    def test_skips_without_message_stats(self):
        campaign = campaign_of(coin_cell(rounds=2))
        agg = make_aggregate(10, ones=5, zeros=5, messages=0)
        result = check_message_lower_bound(campaign, {"coin": agg})
        assert result.status == SKIP

    def test_skips_adversarial_cells(self):
        cell = ExperimentSpec(
            name="attack", protocol="coinflip", n=4, seeds=[0], scenario="x"
        )
        agg = make_aggregate(1, ones=1, messages=100)
        result = check_message_lower_bound(campaign_of(cell), {"attack": agg})
        assert result.status == SKIP


class TestAvssLowerBoundClaim:
    @staticmethod
    def row(secrecy=True, termination=1.0, wrong=0.5, none=0.0):
        from repro.lowerbound.experiment import LowerBoundRow

        return LowerBoundRow(
            candidate="x",
            secrecy_a=secrecy,
            secrecy_b=secrecy,
            termination_rate=termination,
            claim1_split_rate_given_guess=1.0,
            claim1_guess_rate=0.5,
            claim2_wrong_output_rate=wrong,
            claim2_no_output_rate=none,
        )

    def test_attack_breaking_correctness_is_consistent(self):
        result = avss_lower_bound_claim({"masked": self.row(wrong=0.5)})
        assert result.status == PASS
        assert "attacks break correctness" in result.detail

    def test_candidate_without_secrecy_is_consistent(self):
        result = avss_lower_bound_claim({"echo": self.row(secrecy=False, wrong=0.0)})
        assert result.status == PASS
        assert "secrecy already fails" in result.detail

    def test_refuting_candidate_fails_the_claim(self):
        # Secrecy and termination hold, yet the attack stays inside the 1/3
        # budget: such a candidate would disprove Theorem 2.2.
        result = avss_lower_bound_claim({"magic": self.row(wrong=0.1)})
        assert result.status == FAIL
        assert "refute the theorem" in result.detail

    def test_empty_rows_skip(self):
        assert avss_lower_bound_claim({}).status == SKIP

    def test_real_experiment_rows_pass(self):
        from repro.lowerbound.experiment import run_experiment

        rows = run_experiment(trials=60, seed=3)
        assert avss_lower_bound_claim(rows).status == PASS


class TestEvaluateClaims:
    def test_known_good_campaign_passes_everything_applicable(self):
        campaign = campaign_of(coin_cell(rounds=2))
        agg = make_aggregate(10, ones=5, zeros=5, messages=13000, steps=12000)
        report = evaluate_claims(campaign, {"coin": agg})
        assert report.passed
        statuses = {result.claim: result.status for result in report.results}
        assert statuses == {
            "coin_bias": PASS,
            "corruption_tolerance": SKIP,
            "agreement": SKIP,
            "output_domain": PASS,
            "message_complexity": PASS,
            "message_lower_bound": PASS,
            "termination": PASS,
        }

    def test_single_failure_fails_the_report(self):
        campaign = campaign_of(coin_cell(seeds=20, rounds=2))
        agg = make_aggregate(20, ones=20, messages=26000, steps=24000)
        report = evaluate_claims(campaign, {"coin": agg})
        assert not report.passed
        assert report.counts[FAIL] == 1

    def test_report_renderings_and_dict_shape(self):
        campaign = campaign_of(coin_cell(rounds=2))
        agg = make_aggregate(10, ones=5, zeros=5, messages=13000, steps=12000)
        report = evaluate_claims(campaign, {"coin": agg})
        text = report.render_text()
        assert "[PASS] coin_bias" in text
        assert text.endswith("skipped\n")
        markdown = report.render_markdown()
        assert markdown.startswith("### Claims:")
        assert "| pass | `coin_bias` |" in markdown
        payload = report.to_dict()
        assert payload["passed"] is True
        assert payload["counts"][PASS] == 5
        assert [entry["claim"] for entry in payload["claims"]] == [
            "coin_bias",
            "corruption_tolerance",
            "agreement",
            "output_domain",
            "message_complexity",
            "message_lower_bound",
            "termination",
        ]

    def test_claim_result_round_trips_through_dict(self):
        result = ClaimResult(
            claim="x", statement="s", status=PASS, detail="d", cells=("a", "b")
        )
        data = result.to_dict()
        rebuilt = ClaimResult(**{**data, "cells": tuple(data["cells"])})
        assert rebuilt == result

    def test_empty_report_passes_vacuously(self):
        assert ClaimReport(campaign="empty").passed
