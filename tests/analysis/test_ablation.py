"""Ablation harness: factor registry, grid builders, tables, sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.ablation import (
    BASELINE_CELL,
    DEFAULT_BASE_PARAMS,
    OPTIMISATION_FACTORS,
    Factor,
    build_ablation_campaign,
    build_attack_sweep,
    cache_hit_rate,
    contribution_table,
    factorial_cells,
    format_contribution_rows,
    format_sweep_rows,
    one_factor_out_cells,
    predicted_messages,
    render_table,
    scenario_factors,
    sweep_table,
)
from repro.analysis.complexity import coinflip_expected_messages
from repro.core.results import TrialAggregate
from repro.errors import ExperimentError
from repro.experiments.runner import run_campaign
from repro.experiments.spec import CampaignSpec, ExperimentSpec

TUNING_A = Factor("tune_a", "a", ablated={"tuning": {"pause_gc": False}})
TUNING_B = Factor("tune_b", "b", ablated={"tuning": {"group_mode": False}})
PARAM_C = Factor("param_c", "c", ablated={"metering": False}, stats_preserving=False)


class TestFactorRegistry:
    def test_optimisation_factor_names_unique_and_cover_the_stack(self):
        names = [factor.name for factor in OPTIMISATION_FACTORS]
        assert len(names) == len(set(names))
        # The issue's factor list: EvalPlan, group mode, metering, GC pause,
        # interned sessions, tracing.
        assert set(names) == {
            "eval_plan",
            "group_queue",
            "gc_pause",
            "interned_sessions",
            "trace_free",
            "metering",
        }

    def test_scenario_factors_cover_every_component(self):
        assert [factor.scenario_component for factor in scenario_factors()] == [
            "scheduler",
            "corruption",
            "timeline",
            "tamper",
        ]
        assert all(not factor.stats_preserving for factor in scenario_factors())

    def test_pure_optimisations_are_marked_stats_preserving(self):
        by_name = {factor.name: factor for factor in OPTIMISATION_FACTORS}
        assert by_name["eval_plan"].stats_preserving
        assert by_name["group_queue"].stats_preserving
        assert not by_name["metering"].stats_preserving


class TestGridExpansion:
    def test_one_factor_out_matches_hand_built_cells(self):
        cells = one_factor_out_cells(
            "coinflip", 4, [1, 2], [TUNING_A, PARAM_C], base_params={"rounds": 2}
        )
        base = {"tracing": False, "metrics": True, "rounds": 2}
        expected = [
            ExperimentSpec(
                name=BASELINE_CELL, protocol="coinflip", n=4, seeds=[1, 2], params=base
            ),
            ExperimentSpec(
                name="no-tune_a",
                protocol="coinflip",
                n=4,
                seeds=[1, 2],
                params={**base, "tuning": {"pause_gc": False}},
            ),
            ExperimentSpec(
                name="no-param_c",
                protocol="coinflip",
                n=4,
                seeds=[1, 2],
                params={**base, "metering": False},
            ),
        ]
        assert [cell.to_dict() for cell in cells] == [
            cell.to_dict() for cell in expected
        ]

    def test_factorial_grid_composes_tuning_overlays(self):
        cells = factorial_cells("coinflip", 4, [0], [TUNING_A, TUNING_B])
        by_name = {cell.name: cell for cell in cells}
        assert set(by_name) == {
            BASELINE_CELL,
            "no-tune_a",
            "no-tune_b",
            "no-tune_a+no-tune_b",
        }
        both = by_name["no-tune_a+no-tune_b"].params["tuning"]
        assert both == {"pause_gc": False, "group_mode": False}

    def test_factorial_cap(self):
        factors = [Factor(f"f{i}", "x", ablated={}) for i in range(9)]
        with pytest.raises(ExperimentError, match="cap is 8"):
            factorial_cells("coinflip", 4, [0], factors)

    def test_base_params_are_not_mutated_by_overlays(self):
        base = {"tuning": {"pause_gc": True}}
        cells = one_factor_out_cells("coinflip", 4, [0], [TUNING_A], base_params=base)
        assert base == {"tuning": {"pause_gc": True}}
        assert cells[1].params["tuning"]["pause_gc"] is False
        assert cells[0].params["tuning"]["pause_gc"] is True

    def test_scenario_component_factor_requires_scenario(self):
        scheduler_factor = scenario_factors()[0]
        with pytest.raises(ExperimentError, match="no scenario"):
            one_factor_out_cells("coinflip", 4, [0], [scheduler_factor])

    def test_scenario_component_factor_builds_variant_cell(self):
        cells = one_factor_out_cells(
            "weak_coin",
            4,
            [0],
            list(scenario_factors()),
            scenario="dealer-ambush",
        )
        variants = {cell.name: cell.scenario for cell in cells}
        assert variants[BASELINE_CELL] == "dealer-ambush"
        assert variants["no-scenario_scheduler"] == "dealer-ambush~no-scheduler"
        assert variants["no-scenario_tamper"] == "dealer-ambush~no-tamper"

    def test_campaign_serialization_round_trip_is_hash_stable(self):
        campaign = build_ablation_campaign(
            "abl", "coinflip", 4, [1, 2, 3], base_params={"rounds": 2}
        )
        reloaded = CampaignSpec.from_dict(campaign.to_dict())
        assert [cell.spec_hash() for cell in reloaded.cells] == [
            cell.spec_hash() for cell in campaign.cells
        ]
        assert reloaded.to_dict() == campaign.to_dict()

    def test_build_ablation_campaign_rejects_unknown_mode(self):
        with pytest.raises(ExperimentError, match="one-out"):
            build_ablation_campaign("abl", "coinflip", 4, [0], mode="bogus")

    def test_default_base_params_run_trace_free_with_metrics(self):
        assert DEFAULT_BASE_PARAMS == {"tracing": False, "metrics": True}


class TestCampaignExecution:
    @pytest.fixture(scope="class")
    def campaign(self):
        return build_ablation_campaign(
            "abl-exec",
            "coinflip",
            4,
            [1, 2, 3, 4],
            factors=[TUNING_A, PARAM_C],
            base_params={"rounds": 1},
        )

    @pytest.fixture(scope="class")
    def results(self, campaign):
        return run_campaign(campaign, workers=1)

    def test_parallel_equals_sequential_aggregates(self, campaign, results):
        parallel = run_campaign(campaign, workers=2, chunk_trials=2)
        assert {name: agg.to_dict() for name, agg in parallel.items()} == {
            name: agg.to_dict() for name, agg in results.items()
        }

    def test_contribution_table_flags_stats_identity(self, results):
        rows = contribution_table(results, [TUNING_A, PARAM_C])
        by_cell = {row.cell: row for row in rows}
        assert by_cell[BASELINE_CELL].factor is None
        assert by_cell["no-tune_a"].stats_identical is True
        # Metering off drops the message stats, so identity is not expected
        # (and not evaluated).
        assert by_cell["no-param_c"].stats_identical is None
        assert not by_cell["no-param_c"].stats_expected_identical

    def test_contribution_table_reports_cache_hits_and_throughput(self, results):
        rows = contribution_table(results, [TUNING_A])
        for row in rows:
            assert row.trials == 4
            assert row.deliveries_per_s is None or row.deliveries_per_s > 0
        assert rows[0].cache_hit_rate is not None
        assert 0.0 <= rows[0].cache_hit_rate <= 1.0

    def test_contribution_table_requires_baseline(self, results):
        partial = {k: v for k, v in results.items() if k != BASELINE_CELL}
        with pytest.raises(ExperimentError, match="baseline"):
            contribution_table(partial, [TUNING_A])

    def test_contribution_table_skips_missing_cells(self, results):
        rows = contribution_table(results, [TUNING_A, TUNING_B])
        assert [row.cell for row in rows] == [BASELINE_CELL, "no-tune_a"]

    def test_render_helpers_are_total(self, results):
        rows = contribution_table(results, [TUNING_A, PARAM_C])
        formatted = format_contribution_rows(rows)
        text = render_table(("a",) * len(formatted[0]), formatted)
        assert text.endswith("\n")
        assert BASELINE_CELL in text


class TestAttackSweep:
    def test_build_attack_sweep_resolves_protocols(self):
        campaign = build_attack_sweep(
            "sweep", ["dealer-ambush", "rushing-coalition"], [4, 8], [0, 1]
        )
        names = [cell.name for cell in campaign.cells]
        assert names == [
            "dealer-ambush|n=4",
            "dealer-ambush|n=8",
            "rushing-coalition|n=4",
            "rushing-coalition|n=8",
        ]
        for cell in campaign.cells:
            assert cell.scenario in ("dealer-ambush", "rushing-coalition")
            assert cell.params["tracing"] is False

    def test_sweep_table_computes_wilson_intervals(self):
        campaign = build_attack_sweep("sweep", ["dealer-ambush"], [4], [0, 1, 2, 3])
        agg = TrialAggregate()
        agg.trials = 4
        agg.disagreements = 1
        agg.value_counts["1"] = 3
        agg.total_messages = 600
        agg.total_steps = 500
        rows = sweep_table(campaign, {"dealer-ambush|n=4": agg})
        assert len(rows) == 1
        row = rows[0]
        assert row.n == 4 and row.trials == 4
        assert row.disagreement_rate == 0.25
        low, high = row.disagreement_ci
        assert 0.0 <= low < 0.25 < high <= 1.0
        assert row.bias == 0.75 and row.bias_ci is not None
        assert row.message_ratio is not None and row.message_ratio > 0
        formatted = format_sweep_rows(rows)
        assert formatted[0][0] == "dealer-ambush|n=4"

    def test_sweep_table_skips_absent_cells(self):
        campaign = build_attack_sweep("sweep", ["dealer-ambush"], [4, 8], [0])
        assert sweep_table(campaign, {}) == []


class TestPredictedMessages:
    def test_known_protocols(self):
        assert predicted_messages("acast", 4, {}) > 0
        assert predicted_messages("svss", 4, {}) > 0
        assert predicted_messages("aba", 4, {}) > 0
        assert predicted_messages("common_subset", 4, {}) > 0
        assert predicted_messages("weak_coin", 4, {}) > 0
        assert predicted_messages("fba", 4, {}) > 0
        assert predicted_messages("fair_choice", 4, {"m": 3}) > 0

    def test_coinflip_uses_rounds_param(self):
        assert predicted_messages("coinflip", 4, {"rounds": 2}) == float(
            coinflip_expected_messages(4, 2)
        )

    def test_unknown_protocol_and_missing_params_return_none(self):
        assert predicted_messages("nonesuch", 4, {}) is None
        assert predicted_messages("fair_choice", 4, {}) is None


class TestCacheHitRate:
    def test_pools_plane_counters(self):
        agg = TrialAggregate()
        agg.metric_counters["crypto.plane.row_hits"] = 30
        agg.metric_counters["crypto.plane.row_misses"] = 10
        agg.metric_counters["crypto.plane.eval_hits"] = 10
        agg.metric_counters["crypto.plane.eval_misses"] = 0
        assert cache_hit_rate(agg) == 0.8

    def test_none_without_plane_counters(self):
        assert cache_hit_rate(TrialAggregate()) is None
