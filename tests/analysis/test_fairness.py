"""Tests for the Appendix-E FairChoice validity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.fairness import (
    exact_validity_probability,
    fairness_row,
    fba_fair_validity_bound,
    paper_validity_lower_bound,
    worst_case_probability,
)


class TestPaperBound:
    @pytest.mark.parametrize("m", [3, 4, 5, 8, 16, 64])
    def test_bound_exceeds_half(self, m):
        """Appendix E: the closed-form bound is strictly above 1/2 for every m >= 3."""
        assert paper_validity_lower_bound(m) > 0.5

    def test_bound_decreases_towards_half(self):
        values = [paper_validity_lower_bound(m) for m in (3, 5, 9, 17, 65)]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] > 0.5

    def test_rejects_m_below_3(self):
        with pytest.raises(ValueError):
            paper_validity_lower_bound(2)


class TestExactProbabilities:
    @pytest.mark.parametrize("m", [3, 4, 5, 6])
    def test_ideal_probability_close_to_subset_fraction(self, m):
        subset = list(range(m // 2 + 1))
        probability = exact_validity_probability(m, subset)
        assert probability == pytest.approx(len(subset) / m, abs=2 / (2 * m * m))

    def test_full_target_has_probability_one(self):
        assert exact_validity_probability(4, [0, 1, 2, 3]) == 1.0

    def test_empty_target_has_probability_zero(self):
        assert exact_validity_probability(4, []) == 0.0

    @pytest.mark.parametrize("m", [3, 4, 5, 6, 7])
    def test_worst_case_probability_above_half_for_majorities(self, m):
        """Theorem 4.3 reproduced numerically: majority subsets win with prob > 1/2
        even when every coin is adversarially biased by epsilon."""
        subset = list(range(m // 2 + 1))
        assert worst_case_probability(m, subset) > 0.5

    def test_worst_case_below_ideal(self):
        subset = [0, 1]
        assert worst_case_probability(3, subset) <= exact_validity_probability(3, subset)


class TestRows:
    def test_row_contents(self):
        row = fairness_row(4)
        assert row.m == 4
        assert row.subset_size == 3
        assert row.satisfies_claim
        assert row.paper_bound > 0.5
        assert row.worst_case > 0.5
        assert row.ideal_probability > row.worst_case - 1e-9

    def test_row_rejects_minority_subset(self):
        with pytest.raises(ValueError):
            fairness_row(5, subset_size=2)

    @pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3)])
    def test_fba_bound_above_half(self, n, t):
        assert fba_fair_validity_bound(n, t) > 0.5
