"""Quickstart: flip one strong common coin and run one fair agreement.

This script exercises the library's one-call API end to end:

1. flip the paper's strong common coin (``CoinFlip``, Algorithm 1) among four
   parties, one of which has crashed,
2. run fair Byzantine agreement (``FBA``, Algorithm 3) with divergent inputs,
3. print the message statistics the simulator collected.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.adversary import CrashBehavior
from repro.core import api


def flip_a_coin() -> None:
    """One strong common coin flip with a crashed party."""
    result = api.run_coinflip(
        n=4,
        seed=2024,
        epsilon=0.25,
        rounds=3,  # simulation-scale override of the paper's huge k
        corruptions={3: CrashBehavior.factory()},
    )
    print("== CoinFlip(0.25), n=4, party 3 crashed ==")
    print(f"  coin value agreed by every honest party: {result.agreed_value}")
    print(f"  messages sent: {result.trace.messages_sent}")
    print(f"  deliveries:    {result.steps}")
    print()


def agree_fairly() -> None:
    """Fair Byzantine agreement with divergent honest inputs."""
    inputs = {0: "ship-feature", 1: "fix-bugs", 2: "write-docs", 3: "refactor"}
    result = api.run_fba(n=4, inputs=inputs, seed=7, coinflip_rounds=1)
    print("== FBA, n=4, all inputs different ==")
    print(f"  inputs:  {inputs}")
    print(f"  output:  {result.agreed_value!r} (same at every honest party)")
    print(f"  honest parties agreeing: {sorted(result.outputs)}")
    print(f"  messages sent: {result.trace.messages_sent}")
    print()


def main() -> None:
    flip_a_coin()
    agree_fairly()


if __name__ == "__main__":
    main()
