"""Fair Byzantine agreement while under active attack.

The FBA protocol (Algorithm 3) promises two things beyond ordinary agreement:

* if every honest party proposes the same value, that value wins, no matter
  what the Byzantine parties do;
* if honest proposals diverge, the output is still some *honest* party's
  proposal with probability at least 1/2 -- the adversary cannot reliably
  force its own value through.

This example measures both claims against an adversary that (a) injects its
own value and (b) is favoured by the scheduler (its messages are delivered
first).  It also shows reliable broadcast defeating an equivocating sender.

Run with::

    python examples/fair_agreement_under_attack.py
"""

from __future__ import annotations

from collections import Counter

from repro.adversary import EquivocatingACastSender, FBAValueInjector, favour_parties
from repro.core import api

TRIALS = 15
ADVERSARY = 3
ADVERSARY_VALUE = "evil-value"


def unanimous_honest_inputs() -> None:
    """Claim 1: unanimous honest inputs always win."""
    inputs = {0: "honest-plan", 1: "honest-plan", 2: "honest-plan", 3: ADVERSARY_VALUE}
    wins = 0
    for trial in range(TRIALS):
        result = api.run_fba(
            n=4,
            inputs=inputs,
            seed=500 + trial,
            coinflip_rounds=1,
            corruptions={ADVERSARY: FBAValueInjector.factory(ADVERSARY_VALUE)},
            scheduler=favour_parties([ADVERSARY]),
        )
        if result.agreed_value == "honest-plan":
            wins += 1
    print("== FBA with unanimous honest inputs and a value-injecting adversary ==")
    print(f"  honest value won {wins}/{TRIALS} times (must be all of them)")
    print()


def divergent_honest_inputs() -> None:
    """Claim 2: with divergent inputs, honest values win at least half the time."""
    inputs = {0: "alpha", 1: "beta", 2: "gamma", 3: ADVERSARY_VALUE}
    winners: Counter = Counter()
    for trial in range(TRIALS):
        result = api.run_fba(
            n=4,
            inputs=inputs,
            seed=900 + trial,
            coinflip_rounds=1,
            corruptions={ADVERSARY: FBAValueInjector.factory(ADVERSARY_VALUE)},
        )
        winners[result.agreed_value] += 1
    honest_wins = sum(count for value, count in winners.items() if value != ADVERSARY_VALUE)
    print("== FBA with divergent honest inputs and a value-injecting adversary ==")
    for value, count in winners.most_common():
        print(f"  {value!r}: {count}")
    print(
        f"  honest values won {honest_wins}/{TRIALS} times "
        f"(Theorem 4.5 guarantees at least half in expectation)"
    )
    print()


def equivocating_broadcast() -> None:
    """Reliable broadcast never lets honest parties deliver different values.

    With the sender split half/half, no value can gather an ``n - t`` echo
    quorum, so the honest parties deliver *nothing* -- which is exactly what
    the Correctness property allows.  We therefore run the network to
    quiescence instead of waiting for completion.
    """
    from repro.core.config import ProtocolParams
    from repro.net.runtime import Simulation
    from repro.protocols.acast import ACast

    sim = Simulation(params=ProtocolParams.for_parties(4), seed=11)
    sim.corrupt(ADVERSARY, EquivocatingACastSender.factory(("acast",), "left", "right"))
    network = sim.build_network()
    for process in network.processes:
        if not process.is_corrupted:
            process.create_protocol(("acast",), ACast.factory(ADVERSARY)).start()
    network.run_to_quiescence()
    outputs = network.honest_outputs(("acast",))
    print("== A-Cast with an equivocating sender ==")
    print(f"  honest deliveries: {outputs or 'none (no value reached a quorum)'}")
    print("  (honest parties never deliver conflicting values)")


def main() -> None:
    unanimous_honest_inputs()
    divergent_honest_inputs()
    equivocating_broadcast()


if __name__ == "__main__":
    main()
