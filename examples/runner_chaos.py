"""Runner chaos harness: kill, hang and poison the campaign execution plane.

The protocols under test tolerate ``t < n/3`` Byzantine parties; this script
checks that the harness *measuring* them tolerates a SIGKILL.  It runs one
small campaign four ways -- sequentially (the baseline artifact), under a
SIGKILLed worker, under a hung worker with a deadline, and with a poison
chunk that quarantines its cell and is healed on resume -- and asserts after
every recovery that the persisted store is byte-identical to the baseline
(modulo the single advisory wall-clock field).

This is the script behind the ``runner-chaos`` CI job.  Exit code 0 means
every chaos flow converged to the baseline bytes; any mismatch or unexpected
failure exits non-zero.

Run with::

    PYTHONPATH=src python examples/runner_chaos.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.experiments import (
    CampaignSpec,
    ExecutionPolicy,
    ExperimentSpec,
    FaultSpec,
    ResultStore,
    run_campaign,
)
from repro.obs.metrics import MetricsRegistry

CHUNK_TRIALS = 2  # three chunks for the six-seed cells: room for targeted chaos


def build_campaign(fault_by_cell=None) -> CampaignSpec:
    """The smoke campaign's cheap cells, with optional per-cell chaos."""
    faults = fault_by_cell or {}
    return CampaignSpec(
        name="runner-chaos",
        cells=[
            ExperimentSpec(
                name="coin-fair",
                protocol="coinflip",
                n=4,
                seeds=list(range(6)),
                params={"rounds": 1},
                fault=faults.get("coin-fair"),
            ),
            ExperimentSpec(
                name="coin-crash",
                protocol="coinflip",
                n=4,
                seeds=list(range(6)),
                params={"rounds": 1},
                adversary={3: {"behavior": "crash"}},
                fault=faults.get("coin-crash"),
            ),
            ExperimentSpec(
                name="acast-delayed",
                protocol="acast",
                n=4,
                seeds=list(range(3)),
                params={"value": "hello", "sender": 0},
                fault=faults.get("acast-delayed"),
            ),
        ],
    )


def canonical(path: Path) -> str:
    """Store contents minus the advisory per-cell wall-clock field."""
    data = json.loads(path.read_text())
    for cell in data["cells"].values():
        cell.pop("elapsed_s", None)
    return json.dumps(data, sort_keys=True, indent=1)


def metrics() -> MetricsRegistry:
    return MetricsRegistry(queue_depth_every=0, completion_steps=False)


def check(label: str, condition: bool, detail: str = "") -> bool:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}" + (f" -- {detail}" if detail else ""))
    return condition


def main() -> int:
    out = Path(tempfile.mkdtemp(prefix="runner-chaos-"))
    ok = True

    print("baseline: sequential, fault-free")
    base_path = out / "baseline.json"
    run_campaign(
        build_campaign(),
        workers=1,
        chunk_trials=CHUNK_TRIALS,
        store=ResultStore.open(base_path),
    )
    baseline = canonical(base_path)

    print("chaos 1: SIGKILL the worker holding chunk 1 of every cell")
    kill_path = out / "sigkill.json"
    registry = metrics()
    run_campaign(
        build_campaign(
            {
                name: FaultSpec("sigkill", {"chunks": [1], "attempts": [0]})
                for name in ("coin-fair", "coin-crash")
            }
        ),
        workers=2,
        chunk_trials=CHUNK_TRIALS,
        store=ResultStore.open(kill_path),
        metrics=registry,
    )
    counters = registry.counter_values()
    ok &= check(
        "store byte-identical to baseline", canonical(kill_path) == baseline
    )
    ok &= check(
        "workers were restarted",
        counters.get("runner.worker_restarts", 0) >= 1,
        f"counters={counters}",
    )

    print("chaos 2: hang a worker past its deadline (trial_timeout_s=0.2)")
    hang_path = out / "hang.json"
    registry = metrics()
    run_campaign(
        build_campaign(
            {"coin-fair": FaultSpec("hang", {"seconds": 60, "chunks": [0], "attempts": [0]})}
        ),
        workers=2,
        chunk_trials=CHUNK_TRIALS,
        store=ResultStore.open(hang_path),
        policy=ExecutionPolicy(trial_timeout_s=0.2),
        metrics=registry,
    )
    counters = registry.counter_values()
    ok &= check(
        "store byte-identical to baseline", canonical(hang_path) == baseline
    )
    ok &= check(
        "deadline fired",
        counters.get("runner.timeouts", 0) >= 1,
        f"counters={counters}",
    )

    print("chaos 3: poison chunk quarantines its cell; resume heals it")
    poison_path = out / "poison.json"
    failures: dict = {}
    results = run_campaign(
        build_campaign(
            {"coin-crash": FaultSpec("raise", {"chunks": [1], "attempts": None})}
        ),
        workers=2,
        chunk_trials=CHUNK_TRIALS,
        store=ResultStore.open(poison_path),
        policy=ExecutionPolicy(max_chunk_retries=1),
        failures=failures,
    )
    store = ResultStore.open(poison_path)
    ok &= check(
        "healthy cells completed", set(results) == {"coin-fair", "acast-delayed"}
    )
    ok &= check(
        "poison cell quarantined with a structured record",
        store.quarantined_cells() == ["coin-crash"]
        and store.failures()["coin-crash"]["attempts"] == 2,
    )
    ok &= check(
        "healthy chunks of the poison cell checkpointed",
        store.partial_cells().get("coin-crash", 0) >= 1,
    )

    # Resume without the fault: the quarantined cell reruns its poison chunk,
    # reuses its healthy checkpoints, and the store converges to baseline.
    run_campaign(
        build_campaign(),
        workers=2,
        chunk_trials=CHUNK_TRIALS,
        store=ResultStore.open(poison_path),
    )
    store = ResultStore.open(poison_path)
    ok &= check("resume converges to baseline bytes", canonical(poison_path) == baseline)
    ok &= check("quarantine record cleared", store.failures() == {})
    ok &= check("no partial chunks left", store.partial_cells() == {})

    print("runner-chaos:", "all flows converged" if ok else "MISMATCH (see above)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
