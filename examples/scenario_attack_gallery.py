"""Run the whole named-scenario catalogue and print a survival report.

Every scenario in :mod:`repro.scenarios.library` is a declarative attack --
a corruption plan (static or adaptive, budgeted at the resilience bound
``t < n/3``), a fault timeline, and a hostile scheduler -- addressed by
predicates instead of pid lists, so the same definitions run here at any
size.  This gallery runs each attack over a handful of seeds at two scales
and reports how the protocol under test held up: how many parties the
adversary actually corrupted, whether honest parties still agreed, and how
much the attack inflated the delivery count versus an unattacked run.

Run with::

    python examples/scenario_attack_gallery.py [n] [trials]
"""

from __future__ import annotations

import sys
from statistics import mean

from repro.core.config import max_faults
from repro.experiments.registry import RUNNERS
from repro.scenarios import ScenarioRuntime, get_scenario, scenario_names


def run_gallery(n: int, trials: int) -> None:
    t = max_faults(n)
    print(f"scenario gallery at n={n} (t={t}), {trials} seeds each\n")
    header = f"{'scenario':<26} {'corrupted':>9} {'agreement':>9} {'steps':>8} {'honest steps':>12}"
    print(header)
    print("-" * len(header))
    for name in scenario_names():
        spec = get_scenario(name)
        runtime = ScenarioRuntime(spec, n=n)
        runner = RUNNERS.get(spec.protocol)
        baseline_kwargs = runtime.runner_kwargs()
        if runtime.prime is not None:
            baseline_kwargs["prime"] = runtime.prime

        corrupted, agreements, steps, honest_steps = [], 0, [], []
        for seed in range(trials):
            director = runtime.build_director()
            result = runner(
                n=n,
                seed=seed,
                scheduler=runtime.build_scheduler(),
                corruptions=runtime.static_corruptions() or None,
                director=director,
                **RUNNERS.normalize(spec.protocol, baseline_kwargs),
            )
            corrupted.append(len(director.corrupted))
            agreements += not result.disagreement
            steps.append(result.steps)
            # The unattacked reference run for the same seed and protocol.
            honest = runner(
                n=n, seed=seed, **RUNNERS.normalize(spec.protocol, baseline_kwargs)
            )
            honest_steps.append(honest.steps)
        assert all(count <= t for count in corrupted), "budget violated!"
        print(
            f"{name:<26} {max(corrupted):>7}/{t:<1} "
            f"{agreements:>5}/{trials:<3} {mean(steps):>8.0f} {mean(honest_steps):>12.0f}"
        )
    print(
        "\n'corrupted' is the worst case over seeds -- never above t, however "
        "greedy the scenario's rules are."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    run_gallery(n, trials)
