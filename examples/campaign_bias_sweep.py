"""Campaign demo: sweep the strong coin's bias, honestly and under attack.

Builds a declarative campaign over ``CoinFlip`` grid points (iteration counts
crossed with an honest run vs. a bit-rigging Byzantine dealer), runs it on a
worker pool, persists the aggregates to JSON, then reloads the artifact and
prints the measured coin bias per cell.

The point of the subsystem: the whole sweep below is *data*.  Saved with
``campaign.save(...)`` it can be re-run, resumed or extended from the CLI::

    python -m repro.experiments run bias_sweep.json --workers 4

Run with::

    PYTHONPATH=src python examples/campaign_bias_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments import (
    BehaviorSpec,
    CampaignSpec,
    ExperimentSpec,
    ResultStore,
    run_campaign,
)

TRIALS = 20


def build_campaign() -> CampaignSpec:
    cells = []
    for rounds in (1, 3):
        for attack in (None, "rigged-dealer"):
            adversary = (
                {3: BehaviorSpec("deterministic_value_dealer", {"value": 0})}
                if attack
                else {}
            )
            cells.append(
                ExperimentSpec(
                    name=f"rounds={rounds},{attack or 'honest'}",
                    protocol="coinflip",
                    n=4,
                    seeds=list(range(TRIALS)),
                    params={"rounds": rounds, "epsilon": 0.25},
                    adversary=adversary,
                )
            )
    return CampaignSpec(name="coin-bias-sweep", cells=cells)


def main() -> None:
    campaign = build_campaign()
    out_path = Path(tempfile.mkdtemp(prefix="bias-sweep-")) / "results.json"
    store = ResultStore.open(out_path)

    print(f"== {campaign.name}: {len(campaign.cells)} cells x {TRIALS} trials, 2 workers ==")
    run_campaign(
        campaign,
        workers=2,
        store=store,
        progress=lambda event: print(
            f"  [{event.completed}/{event.total}] {event.cell}"
        ),
    )

    # Reload from the persisted artifact (what the CLI `report` would read).
    reloaded = ResultStore.open(out_path)
    print(f"\nresults persisted to {out_path}\n")
    print(f"{'cell':<28} {'P[coin=0]':>10} {'P[coin=1]':>10} {'bias':>8}")
    for name in reloaded.cell_names():
        stats = reloaded.get(name)
        p0, p1 = stats.frequency(0), stats.frequency(1)
        print(f"{name:<28} {p0:>10.2f} {p1:>10.2f} {abs(p0 - 0.5):>8.2f}")
    print(
        "\nThe rigged dealer cannot push the XOR-combined coin off balance:\n"
        "hiding means its constant bits are independent of the honest bits\n"
        "(Theorem 3.4's bias bound epsilon covers exactly this adversary)."
    )


if __name__ == "__main__":
    main()
