"""Per-factor ablation study of two attacks, with a machine-checked verdict.

This is the :mod:`repro.analysis.ablation` harness driven as a library, the
way a paper-style factor study would use it:

1. A one-factor-out ablation of the ``dealer-ambush`` scenario at the
   smallest scale -- every engine optimisation (EvalPlan, group queue, GC
   pause, interned sessions, tracing, metering) and every scenario
   component (scheduler, corruption plan, timeline, tamper rules) is
   switched off in turn, and the per-factor contribution table reports what
   each one buys (wall time, deliveries/s, cache hit rate) and whether
   removing it left the protocol statistics byte-identical.
2. An attack sweep pitting ``dealer-ambush`` against ``rushing-coalition``
   across scales, with Wilson 95% confidence intervals on disagreement and
   output bias and measured-vs-predicted message ratios.
3. The claims report: the paper's guarantees (corruption budget ``t <
   n/3``, agreement, binary outputs, message-complexity envelope,
   termination) machine-checked over every cell that ran.  The script
   exits non-zero if any claim is refuted.

Run with::

    python examples/ablation_factor_study.py [ns] [seeds]

e.g. ``python examples/ablation_factor_study.py 4,16 3``.
"""

from __future__ import annotations

import sys

from repro.analysis.ablation import (
    CONTRIBUTION_HEADER,
    OPTIMISATION_FACTORS,
    SWEEP_HEADER,
    build_ablation_campaign,
    build_attack_sweep,
    contribution_table,
    format_contribution_rows,
    format_sweep_rows,
    render_table,
    scenario_factors,
    sweep_table,
)
from repro.analysis.claims import evaluate_claims
from repro.experiments.runner import run_campaign
from repro.experiments.spec import CampaignSpec
from repro.scenarios import get_scenario

FOCUS_SCENARIO = "dealer-ambush"
SWEEP_SCENARIOS = ("dealer-ambush", "rushing-coalition")


def run_study(ns, seeds_count) -> int:
    seeds = list(range(seeds_count))

    # 1. One-factor-out ablation of the focus attack at the smallest scale.
    n_ablate = min(ns)
    campaign = build_ablation_campaign(
        f"factor-study-{FOCUS_SCENARIO}-n{n_ablate}",
        protocol=get_scenario(FOCUS_SCENARIO).protocol,
        n=n_ablate,
        seeds=seeds,
        scenario=FOCUS_SCENARIO,
    )
    print(
        f"one-factor-out ablation of {FOCUS_SCENARIO} at n={n_ablate} "
        f"({len(campaign.cells)} cells x {seeds_count} seeds)"
    )
    results = run_campaign(campaign, workers=2)
    factors = list(OPTIMISATION_FACTORS) + list(scenario_factors())
    rows = contribution_table(results, factors)
    print(render_table(CONTRIBUTION_HEADER, format_contribution_rows(rows)))

    # 2. Attack sweep: both scenarios across every requested scale.
    sweep = build_attack_sweep("factor-study-sweep", SWEEP_SCENARIOS, ns, seeds)
    print(
        f"attack sweep: {' vs '.join(SWEEP_SCENARIOS)} at "
        f"n={','.join(str(n) for n in ns)}"
    )
    sweep_results = run_campaign(sweep, workers=2)
    sweep_rows = sweep_table(sweep, sweep_results)
    print(render_table(SWEEP_HEADER, format_sweep_rows(sweep_rows)))

    # 3. Machine-check the paper claims over everything that ran.
    combined = CampaignSpec(
        name="factor-study", cells=list(campaign.cells) + list(sweep.cells)
    )
    report = evaluate_claims(combined, {**results, **sweep_results})
    print(report.render_text())
    return 0 if report.passed else 1


if __name__ == "__main__":
    ns = [int(tok) for tok in (sys.argv[1] if len(sys.argv) > 1 else "4,16").split(",")]
    seeds_count = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    sys.exit(run_study(ns, seeds_count))
