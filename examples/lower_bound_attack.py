"""Demonstration of the Theorem 2.2 lower-bound attacks.

The paper's main contribution is a rigorous proof that no almost-surely
terminating ``(2/3 + eps)``-correct AVSS exists with ``n <= 4t``.  The proof
is constructive: it describes exactly how a faulty dealer splits the honest
parties' views (Claim 1), and how a faulty participant later re-simulates that
split to make an honest party output the wrong value (Claim 2).

This example runs both attacks against two candidate AVSS protocols:

* ``masked-xor`` keeps the secret hidden (Secrecy holds), so the attacks
  apply -- and the measured wrong-output rate blows through the ``1/3 - eps``
  budget that a ``(2/3+eps)``-correct AVSS would allow.
* ``echo-checked`` cross-checks shares during reconstruction, which defeats
  the attack -- but the enumeration engine shows its share phase leaks the
  secret, so it is not actually an AVSS.  You cannot have both, which is the
  content of the theorem.

The run is gated: the aggregated rows are evaluated through the machine-
checked claims plane (:func:`repro.analysis.claims.avss_lower_bound_claim`)
and the script exits non-zero when any candidate is inconsistent with the
theorem -- CI can run it as a refutation check, not just a demo.

Run with::

    python examples/lower_bound_attack.py
"""

from __future__ import annotations

import sys

from repro.analysis.claims import avss_lower_bound_claim
from repro.lowerbound import (
    DealerSplitAttack,
    ReconstructionAttack,
    format_report,
    masked_xor_avss,
    run_experiment,
)


def detailed_attack_trace() -> None:
    """Show a handful of individual attack executions against masked-xor."""
    import random

    candidate = masked_xor_avss()
    dealer_attack = DealerSplitAttack(candidate)
    rec_attack = ReconstructionAttack(candidate)
    rng = random.Random(42)

    print("== Claim 1: dealer view-splitting attack (5 sample executions) ==")
    for index in range(5):
        outcome = dealer_attack.execute(rng)
        print(
            f"  run {index}: guessed randomness={outcome.guessed_randomness} "
            f"A completed={outcome.a_completed} B completed={outcome.b_completed} "
            f"A sees secret 0={outcome.a_view_consistent_with_zero} "
            f"B sees secret 1={outcome.b_view_consistent_with_one}"
        )
    print()

    print("== Claim 2: reconstruction attack (5 sample executions, dealer shared 0) ==")
    for index in range(5):
        outcome = rec_attack.execute(rng)
        print(
            f"  run {index}: honest A output={outcome.a_output} "
            f"(wrong={outcome.a_output_wrong}), honest C output={outcome.c_output}"
        )
    print()


def full_report() -> int:
    """Aggregate statistics over many attack executions for every candidate.

    Returns the process exit status: 0 when every candidate is consistent
    with Theorem 2.2, 1 when the claim is refuted.
    """
    rows = run_experiment(trials=400, seed=1)
    print(format_report(list(rows.values())))
    print()
    claim = avss_lower_bound_claim(rows)
    print(f"[{claim.status.upper()}] {claim.claim}: {claim.statement}")
    print(f"       {claim.detail}")
    if claim.status == "fail":
        print("error: lower-bound claim refuted by the measured rows",
              file=sys.stderr)
        return 1
    return 0


def main() -> int:
    detailed_attack_trace()
    return full_report()


if __name__ == "__main__":
    sys.exit(main())
