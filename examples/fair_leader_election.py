"""Fair leader election / distributed lottery on top of FairChoice.

The paper motivates its fair-validity notion with settings where the chosen
value should not be controllable by the adversary.  A classic instance is
*leader election*: ``n`` replicas must agree on a leader, and a Byzantine
minority should not be able to force one of its own into the seat much more
often than chance.

This example elects a leader among the parties many times using
``FairChoice(m)`` over the agreed candidate set and reports how often each
candidate wins.  With the paper's guarantee, any majority coalition of honest
candidates wins at least half the time.

Run with::

    python examples/fair_leader_election.py
"""

from __future__ import annotations

from collections import Counter

from repro.core import api

ELECTIONS = 20
PARTIES = 4
CANDIDATES = 4  # one candidate slot per party


def run_elections() -> Counter:
    """Run repeated FairChoice elections and tally the winners."""
    tally: Counter = Counter()
    for election in range(ELECTIONS):
        result = api.run_fair_choice(
            n=PARTIES,
            m=CANDIDATES,
            seed=1000 + election,
            coinflip_rounds=1,
        )
        winner = result.agreed_value
        tally[winner] += 1
    return tally


def main() -> None:
    tally = run_elections()
    print(f"== Fair leader election: {ELECTIONS} rounds, {CANDIDATES} candidates ==")
    for candidate in range(CANDIDATES):
        wins = tally.get(candidate, 0)
        bar = "#" * wins
        print(f"  candidate {candidate}: {wins:3d} wins  {bar}")
    honest_majority = set(range(CANDIDATES // 2 + 1))
    majority_wins = sum(tally.get(c, 0) for c in honest_majority)
    print(
        f"  any majority subset (e.g. {sorted(honest_majority)}) won "
        f"{majority_wins}/{ELECTIONS} elections "
        f"(Theorem 4.3 guarantees at least half in expectation)"
    )


if __name__ == "__main__":
    main()
