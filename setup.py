"""Packaging for the PODC 2020 Abraham-Dolev-Stern reproduction.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so editable
installs work in offline environments whose setuptools lacks the PEP 660
editable-wheel path (no ``wheel`` package available).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single-source the version from the package itself.
VERSION = re.search(
    r'^__version__ = "(.+?)"',
    (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-podc-abrahamds20",
    version=VERSION,
    description=(
        "Reproduction of 'Revisiting Asynchronous Fault Tolerant Computation "
        "with Optimal Resilience' (Abraham, Dolev, Stern; PODC 2020): "
        "asynchronous network simulator, SVSS/CoinFlip/FBA protocol stack, "
        "lower-bound attacks and a parallel experiment-campaign harness."
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
        ]
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Distributed Computing",
    ],
)
