"""Deterministic observability plane: metering, metrics, streaming sinks.

Three tiers, each composing with every execution mode of the simulator:

1. **Metered group mode** (:mod:`repro.obs.meter`) -- aggregate message
   counters maintained at :class:`~repro.net.queues.FanoutEntry` granularity
   on the send/drop paths, so campaigns keep the lazy-materialisation
   group-mode fast path *and* still report ``Trace.summary()``-equivalent
   numbers.  Engaged automatically whenever tracing is off (pass
   ``metering=False`` to opt out); never touches the scheduler RNG, so the
   delivery order is byte-identical with metering on or off.
2. **Structured metrics registry** (:mod:`repro.obs.metrics`) -- cheap
   counters/gauges/histograms (completion-step latencies per session root,
   queue depth over time, crypto-plane cache hit rates, evaluation-plan
   dispatch counts) recorded through pre-bound hooks in the same rebinding
   style :class:`~repro.net.tracing.Trace` uses.  Opt-in per simulation
   (``metrics=True``); snapshots land on ``SimulationResult.metrics``.
3. **Streaming trace sinks** (:mod:`repro.obs.sinks`,
   :mod:`repro.obs.timeline`) -- pluggable per-event consumers replacing the
   all-or-nothing ``keep_events`` list: a bounded ring buffer, a JSONL file
   writer (schema in :mod:`repro.obs.schema`) and a session-timeline builder
   rendering per-party phase/round timelines as text or Chrome
   ``chrome://tracing`` JSON.  Sinks require tracing (they consume trace
   events) and observe without perturbing determinism.

``python -m repro.obs`` validates emitted JSONL traces and renders timelines
offline.
"""

from repro.obs.meter import GroupMeter
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import (
    REPORT_VERSION,
    event_to_jsonable,
    validate_jsonl,
    validate_report,
)
from repro.obs.sinks import JsonlSink, RingBufferSink, TraceSink
from repro.obs.timeline import TimelineBuilder

__all__ = [
    "GroupMeter",
    "MetricsRegistry",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "TimelineBuilder",
    "event_to_jsonable",
    "validate_jsonl",
    "REPORT_VERSION",
    "validate_report",
]
