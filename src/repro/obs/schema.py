"""JSONL trace schema: event serialisation and validation.

One :class:`~repro.net.tracing.TraceEvent` maps to one JSON object (one line
in a ``.jsonl`` file) with the envelope ``{"step", "kind", "party", ...}``
plus kind-specific fields:

========== ==========================================================
kind        extra fields
========== ==========================================================
send        sender, receiver, session, msg_kind, seq
deliver     sender, receiver, session, msg_kind, seq
drop        reason, sender, receiver, session, msg_kind, seq
complete    session, value
shun        shunned, session
corrupt     --
phase       session, phase
session_open  session
director    action, detail
note        detail
========== ==========================================================

Sessions serialise as lists (JSON has no tuples); payload values and
free-form details pass through :func:`_jsonable`, which falls back to
``repr`` for anything JSON cannot carry, so writing never fails mid-run.
:func:`validate_jsonl` is the consumer-side check used by the CI smoke job
and ``python -m repro.obs validate``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.net.message import Message
from repro.net.tracing import TraceEvent

#: Event kinds a conforming JSONL trace may contain.
EVENT_KINDS = frozenset(
    [
        "send",
        "deliver",
        "drop",
        "complete",
        "shun",
        "corrupt",
        "phase",
        "session_open",
        "director",
        "note",
    ]
)

#: Required extra fields per event kind (the envelope step/kind/party is
#: always required; party may be null).
_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "send": ("sender", "receiver", "session", "msg_kind", "seq"),
    "deliver": ("sender", "receiver", "session", "msg_kind", "seq"),
    "drop": ("reason", "sender", "receiver", "session", "msg_kind", "seq"),
    "complete": ("session", "value"),
    "shun": ("shunned", "session"),
    "corrupt": (),
    "phase": ("session", "phase"),
    "session_open": ("session",),
    "director": ("action", "detail"),
    "note": ("detail",),
}


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to a JSON-compatible value (repr fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(repr(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return repr(value)


def _message_fields(message: Message) -> Dict[str, Any]:
    return {
        "sender": message.sender,
        "receiver": message.receiver,
        "session": _jsonable(message.session),
        "msg_kind": _jsonable(message.kind),
        "seq": message.seq,
    }


def event_to_jsonable(event: TraceEvent) -> Dict[str, Any]:
    """Convert one trace event to its JSON-object (dict) form."""
    data: Dict[str, Any] = {
        "step": event.step,
        "kind": event.kind,
        "party": event.party,
    }
    kind = event.kind
    detail = event.detail
    if kind in ("send", "deliver"):
        data.update(_message_fields(detail))
    elif kind == "drop":
        reason, message = detail
        data["reason"] = reason
        data.update(_message_fields(message))
    elif kind == "complete":
        session, value = detail
        data["session"] = _jsonable(session)
        data["value"] = _jsonable(value)
    elif kind == "shun":
        shunned, session = detail
        data["shunned"] = shunned
        data["session"] = _jsonable(session)
    elif kind == "phase":
        session, phase = detail
        data["session"] = _jsonable(session)
        data["phase"] = phase
    elif kind == "session_open":
        data["session"] = _jsonable(detail)
    elif kind == "director":
        action, extra = detail
        data["action"] = action
        data["detail"] = _jsonable(extra)
    elif kind == "corrupt":
        pass
    else:  # note and any future free-form kinds
        data["detail"] = _jsonable(detail)
    return data


def validate_event(data: Any, lineno: int = 0) -> List[str]:
    """Schema-check one parsed event object; return a list of problems."""
    where = f"line {lineno}: " if lineno else ""
    if not isinstance(data, dict):
        return [f"{where}event is not a JSON object"]
    problems = []
    kind = data.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(f"{where}unknown event kind {kind!r}")
        return problems
    step = data.get("step")
    if not isinstance(step, int) or step < 0:
        problems.append(f"{where}step must be a non-negative integer, got {step!r}")
    party = data.get("party")
    if party is not None and not isinstance(party, int):
        problems.append(f"{where}party must be an integer or null, got {party!r}")
    for field in _REQUIRED_FIELDS[kind]:
        if field not in data:
            problems.append(f"{where}{kind} event missing field {field!r}")
    if "session" in data and "session" in _REQUIRED_FIELDS[kind]:
        if not isinstance(data.get("session"), list):
            problems.append(f"{where}session must be a list")
    return problems


def validate_events(
    lines: Iterable[str], max_problems: int = 20
) -> Tuple[int, List[str]]:
    """Validate an iterable of JSONL lines.

    Returns ``(event_count, problems)``; validation stops collecting after
    ``max_problems`` issues (the count keeps going).  Steps must be
    non-decreasing -- the trace is recorded in execution order.
    """
    count = 0
    problems: List[str] = []
    last_step = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        if len(problems) >= max_problems:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        problems.extend(validate_event(data, lineno))
        step = data.get("step") if isinstance(data, dict) else None
        if isinstance(step, int):
            if step < last_step:
                problems.append(
                    f"line {lineno}: step {step} went backwards (previous {last_step})"
                )
            last_step = step
    return count, problems


def validate_jsonl(path: Any, max_problems: int = 20) -> Tuple[int, List[str]]:
    """Validate the JSONL trace file at ``path``; see :func:`validate_events`."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_events(handle, max_problems=max_problems)
