"""JSONL trace schema: event serialisation and validation.

One :class:`~repro.net.tracing.TraceEvent` maps to one JSON object (one line
in a ``.jsonl`` file) with the envelope ``{"step", "kind", "party", ...}``
plus kind-specific fields:

========== ==========================================================
kind        extra fields
========== ==========================================================
send        sender, receiver, session, msg_kind, seq
deliver     sender, receiver, session, msg_kind, seq
drop        reason, sender, receiver, session, msg_kind, seq
complete    session, value
shun        shunned, session
corrupt     --
phase       session, phase
session_open  session
director    action, detail
note        detail
========== ==========================================================

Sessions serialise as lists (JSON has no tuples); payload values and
free-form details pass through :func:`_jsonable`, which falls back to
``repr`` for anything JSON cannot carry, so writing never fails mid-run.
:func:`validate_jsonl` is the consumer-side check used by the CI smoke job
and ``python -m repro.obs validate``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.net.message import Message
from repro.net.tracing import TraceEvent

#: Event kinds a conforming JSONL trace may contain.
EVENT_KINDS = frozenset(
    [
        "send",
        "deliver",
        "drop",
        "complete",
        "shun",
        "corrupt",
        "phase",
        "session_open",
        "director",
        "note",
    ]
)

#: Required extra fields per event kind (the envelope step/kind/party is
#: always required; party may be null).
_REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "send": ("sender", "receiver", "session", "msg_kind", "seq"),
    "deliver": ("sender", "receiver", "session", "msg_kind", "seq"),
    "drop": ("reason", "sender", "receiver", "session", "msg_kind", "seq"),
    "complete": ("session", "value"),
    "shun": ("shunned", "session"),
    "corrupt": (),
    "phase": ("session", "phase"),
    "session_open": ("session",),
    "director": ("action", "detail"),
    "note": ("detail",),
}


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to a JSON-compatible value (repr fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(repr(item) for item in value)
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return repr(value)


def _message_fields(message: Message) -> Dict[str, Any]:
    return {
        "sender": message.sender,
        "receiver": message.receiver,
        "session": _jsonable(message.session),
        "msg_kind": _jsonable(message.kind),
        "seq": message.seq,
    }


def event_to_jsonable(event: TraceEvent) -> Dict[str, Any]:
    """Convert one trace event to its JSON-object (dict) form."""
    data: Dict[str, Any] = {
        "step": event.step,
        "kind": event.kind,
        "party": event.party,
    }
    kind = event.kind
    detail = event.detail
    if kind in ("send", "deliver"):
        data.update(_message_fields(detail))
    elif kind == "drop":
        reason, message = detail
        data["reason"] = reason
        data.update(_message_fields(message))
    elif kind == "complete":
        session, value = detail
        data["session"] = _jsonable(session)
        data["value"] = _jsonable(value)
    elif kind == "shun":
        shunned, session = detail
        data["shunned"] = shunned
        data["session"] = _jsonable(session)
    elif kind == "phase":
        session, phase = detail
        data["session"] = _jsonable(session)
        data["phase"] = phase
    elif kind == "session_open":
        data["session"] = _jsonable(detail)
    elif kind == "director":
        action, extra = detail
        data["action"] = action
        data["detail"] = _jsonable(extra)
    elif kind == "corrupt":
        pass
    else:  # note and any future free-form kinds
        data["detail"] = _jsonable(detail)
    return data


def validate_event(data: Any, lineno: int = 0) -> List[str]:
    """Schema-check one parsed event object; return a list of problems."""
    where = f"line {lineno}: " if lineno else ""
    if not isinstance(data, dict):
        return [f"{where}event is not a JSON object"]
    problems = []
    kind = data.get("kind")
    if kind not in EVENT_KINDS:
        problems.append(f"{where}unknown event kind {kind!r}")
        return problems
    step = data.get("step")
    if not isinstance(step, int) or step < 0:
        problems.append(f"{where}step must be a non-negative integer, got {step!r}")
    party = data.get("party")
    if party is not None and not isinstance(party, int):
        problems.append(f"{where}party must be an integer or null, got {party!r}")
    for field in _REQUIRED_FIELDS[kind]:
        if field not in data:
            problems.append(f"{where}{kind} event missing field {field!r}")
    if "session" in data and "session" in _REQUIRED_FIELDS[kind]:
        if not isinstance(data.get("session"), list):
            problems.append(f"{where}session must be a list")
    return problems


def validate_events(
    lines: Iterable[str], max_problems: int = 20
) -> Tuple[int, List[str]]:
    """Validate an iterable of JSONL lines.

    Returns ``(event_count, problems)``; validation stops collecting after
    ``max_problems`` issues (the count keeps going).  Steps must be
    non-decreasing -- the trace is recorded in execution order.
    """
    count = 0
    problems: List[str] = []
    last_step = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        if len(problems) >= max_problems:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        problems.extend(validate_event(data, lineno))
        step = data.get("step") if isinstance(data, dict) else None
        if isinstance(step, int):
            if step < last_step:
                problems.append(
                    f"line {lineno}: step {step} went backwards (previous {last_step})"
                )
            last_step = step
    return count, problems


def validate_jsonl(path: Any, max_problems: int = 20) -> Tuple[int, List[str]]:
    """Validate the JSONL trace file at ``path``; see :func:`validate_events`."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_events(handle, max_problems=max_problems)


# ----------------------------------------------------------------------
# Structured campaign reports
#
# ``repro-experiments report --format json`` and ``ablate --json`` emit one
# JSON object per campaign with this shape (top-level keys marked (opt) are
# present only when the corresponding analysis ran):
#
#     {
#       "report_version": 1,
#       "campaign": "<campaign name>" | null,
#       "cells": {                     # per-cell TrialAggregate.summary()
#         "<cell>": {
#           "trials": int,
#           "disagreement_rate": float,
#           "value_counts": {"<repr(value)>": int, ...},
#           "mean_messages": float,
#           "mean_steps": float,
#           "mean_shun_events": float,
#           "mean_dropped": float,
#           "director_actions": {"<action>": int, ...},
#           "sent_by_kind": {"<kind>": int, ...},
#           "deliveries_per_s": int | null
#         }, ...
#       },
#       "histograms": {                # (opt) per-cell metric percentiles
#         "<cell>": {"<metric>": {"count": int, "mean": float|null,
#                                  "p50": float|null, "p90": float|null,
#                                  "p99": float|null, "max": float|null}}
#       },
#       "contribution": [...],         # (opt) ablation ContributionRow.to_dict()
#       "sweep": [...],                # (opt) attack-sweep SweepRow.to_dict()
#       "claims": {...},               # (opt) claims ClaimReport.to_dict()
#       "failures": {"<cell>": {...}}  # (opt) quarantine records
#     }
#
# The payload is deterministic for a given campaign + seeds (no timestamps;
# the advisory deliveries_per_s column is the only wall-clock-derived field).

#: Version tag of the structured campaign-report payload.
REPORT_VERSION = 1

#: Cell-summary keys every report must carry (older optional columns are
#: allowed to be absent so archived stores keep validating).
_SUMMARY_REQUIRED = (
    "trials",
    "disagreement_rate",
    "value_counts",
    "mean_messages",
    "mean_steps",
)

_CLAIM_STATUSES = frozenset({"pass", "fail", "skip"})


def validate_report(data: Any) -> List[str]:
    """Schema-check a structured campaign report; return a list of problems.

    Mirrors :func:`validate_event` in spirit: purely structural, no
    dependency on how the payload was produced, usable from CI on a JSON
    file that just crossed a process boundary.
    """
    if not isinstance(data, dict):
        return ["report is not a JSON object"]
    problems: List[str] = []
    version = data.get("report_version")
    if version != REPORT_VERSION:
        problems.append(
            f"report_version must be {REPORT_VERSION}, got {version!r}"
        )
    campaign = data.get("campaign")
    if campaign is not None and not isinstance(campaign, str):
        problems.append(f"campaign must be a string or null, got {campaign!r}")
    cells = data.get("cells")
    if not isinstance(cells, dict):
        problems.append("cells must be an object of per-cell summaries")
        cells = {}
    for name, summary in cells.items():
        if not isinstance(summary, dict):
            problems.append(f"cell {name!r}: summary is not an object")
            continue
        for key in _SUMMARY_REQUIRED:
            if key not in summary:
                problems.append(f"cell {name!r}: summary missing {key!r}")
        trials = summary.get("trials")
        if trials is not None and (not isinstance(trials, int) or trials < 0):
            problems.append(
                f"cell {name!r}: trials must be a non-negative integer"
            )
    histograms = data.get("histograms")
    if histograms is not None:
        if not isinstance(histograms, dict):
            problems.append("histograms must be an object keyed by cell")
        else:
            for cell, metrics in histograms.items():
                if not isinstance(metrics, dict):
                    problems.append(f"histograms[{cell!r}] is not an object")
                    continue
                for metric, summary in metrics.items():
                    if not isinstance(summary, dict) or "count" not in summary:
                        problems.append(
                            f"histograms[{cell!r}][{metric!r}] needs a 'count'"
                        )
    for key in ("contribution", "sweep"):
        rows = data.get(key)
        if rows is None:
            continue
        if not isinstance(rows, list):
            problems.append(f"{key} must be a list of row objects")
            continue
        for index, row in enumerate(rows):
            if not isinstance(row, dict) or "cell" not in row:
                problems.append(f"{key}[{index}] must be an object with 'cell'")
    claims = data.get("claims")
    if claims is not None:
        if not isinstance(claims, dict):
            problems.append("claims must be an object")
        else:
            if not isinstance(claims.get("passed"), bool):
                problems.append("claims.passed must be a boolean")
            entries = claims.get("claims")
            if not isinstance(entries, list):
                problems.append("claims.claims must be a list")
            else:
                for index, entry in enumerate(entries):
                    status = entry.get("status") if isinstance(entry, dict) else None
                    if status not in _CLAIM_STATUSES:
                        problems.append(
                            f"claims.claims[{index}].status must be one of "
                            f"{sorted(_CLAIM_STATUSES)}, got {status!r}"
                        )
    failures = data.get("failures")
    if failures is not None and not isinstance(failures, dict):
        problems.append("failures must be an object keyed by cell")
    return problems


# ----------------------------------------------------------------------
# Beacon-service metrics dumps
#
# ``BeaconService.metrics_dump()`` (and ``repro-experiments serve
# --metrics-json``) emits one JSON object with this shape:
#
#     {
#       "schema": "repro.service.metrics/v1",
#       "policy": {"shards": int, "queue_depth": int, ...},
#       "counters": {"service.requests": int, "service.ok": int,
#                    "service.errors": int, "service.shed": int,
#                    "service.retries": int, "service.timeouts": int,
#                    "service.shard_restarts": int,
#                    "service.heartbeat_failures": int, ...},
#       "latency_ms": {<Histogram.to_dict()> + "summary": {...}},
#       "pending": int,
#       "uptime_s": float,          (opt)
#       "requests_per_s": float     (opt)
#     }

#: Schema tag of the beacon-service metrics payload.
SERVICE_METRICS_SCHEMA = "repro.service.metrics/v1"

#: Counters every service metrics dump must carry.
_SERVICE_COUNTERS_REQUIRED = (
    "service.requests",
    "service.ok",
    "service.errors",
    "service.shed",
    "service.retries",
    "service.timeouts",
    "service.shard_restarts",
    "service.heartbeat_failures",
)


def validate_service_metrics(data: Any) -> List[str]:
    """Schema-check a beacon-service metrics dump; return a problem list.

    Purely structural (like :func:`validate_report`): usable from the CI
    ``beacon-smoke`` job on a JSON file that just crossed a process boundary.
    Beyond shape, the only semantic check is conservation: every accepted
    request must be accounted for as ok, error, shed or still pending.
    """
    if not isinstance(data, dict):
        return ["service metrics dump is not a JSON object"]
    problems: List[str] = []
    schema = data.get("schema")
    if schema != SERVICE_METRICS_SCHEMA:
        problems.append(
            f"schema must be {SERVICE_METRICS_SCHEMA!r}, got {schema!r}"
        )
    counters = data.get("counters")
    if not isinstance(counters, dict):
        problems.append("counters must be an object")
        counters = {}
    for name in _SERVICE_COUNTERS_REQUIRED:
        value = counters.get(name)
        if not isinstance(value, int) or value < 0:
            problems.append(
                f"counters[{name!r}] must be a non-negative integer, got {value!r}"
            )
    latency = data.get("latency_ms")
    if not isinstance(latency, dict) or "count" not in latency:
        problems.append("latency_ms must be a histogram object with 'count'")
    elif not isinstance(latency.get("summary"), dict):
        problems.append("latency_ms.summary must be an object")
    pending = data.get("pending")
    if not isinstance(pending, int) or pending < 0:
        problems.append(f"pending must be a non-negative integer, got {pending!r}")
    if not problems:
        accounted = (
            counters["service.ok"]
            + counters["service.errors"]
            + counters["service.shed"]
            + pending
        )
        if accounted != counters["service.requests"]:
            problems.append(
                f"request conservation violated: requests="
                f"{counters['service.requests']} but ok+errors+shed+pending="
                f"{accounted}"
            )
    return problems
