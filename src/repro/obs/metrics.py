"""Structured metrics: cheap counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is attached to one simulation (``metrics=True`` on
:class:`~repro.net.runtime.Simulation` or the :mod:`repro.core.api` runners).
The network drives it through two pre-bound hooks -- completion steps per
session root and periodic queue-depth samples -- and the registry's snapshot
additionally gathers the crypto-plane cache statistics and evaluation-plan
dispatch counts (:mod:`repro.crypto.kernels`).

Determinism: every recorded value is a function of the deterministic
execution (steps, queue depths, cache traffic), never of wall-clock time, and
:meth:`MetricsRegistry.snapshot` emits keys in sorted order -- two runs of
the same seed produce byte-identical snapshots.  Attaching a registry never
changes delivery order; it only selects step-accurate delivery loops (the
group-mode fast path keeps its delivery *sequence*, the step counter is
simply maintained eagerly).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

#: Default bucket bounds for completion-step histograms (deliveries).
STEP_BUCKETS: Tuple[int, ...] = (64, 256, 1024, 4096, 16384, 65536, 262144)
#: Default bucket bounds for queue-depth histograms (in-flight messages).
DEPTH_BUCKETS: Tuple[int, ...] = (16, 64, 256, 1024, 4096, 16384)


class CounterMetric:
    """A monotone integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins numeric value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = None

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """A fixed-bound bucket histogram with count/sum/max aggregates.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket catches
    everything above the last bound.  Buckets are fixed at construction so
    recording is one bisect plus three integer updates.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "max_value")

    def __init__(self, bounds: Sequence[int]) -> None:
        self.bounds: Tuple[int, ...] = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.max_value: Optional[int] = None

    def observe(self, value: int) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def to_dict(self) -> Dict[str, Any]:
        buckets = {f"<={bound}": count for bound, count in zip(self.bounds, self.bucket_counts)}
        buckets[f">{self.bounds[-1]}"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max_value,
            "mean": round(self.total / self.count, 2) if self.count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Named metrics for one simulated execution.

    Args:
        queue_depth_every: sample the in-flight queue depth every k-th
            delivery (0 disables sampling; sampling routes the run through a
            step-accurate delivery loop).
        completion_steps: record a per-session-root histogram of the step at
            which each party completed each session.
    """

    def __init__(self, queue_depth_every: int = 64, completion_steps: bool = True) -> None:
        self.queue_depth_every = int(queue_depth_every)
        self.completion_steps = completion_steps
        self._counters: Dict[str, CounterMetric] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._crypto: Optional[Dict[str, Any]] = None
        self._plan_baseline: Optional[Dict[str, int]] = None
        self._lagrange_baseline: Tuple[int, int] = (0, 0)

    # ------------------------------------------------------------------
    # Metric accessors (get-or-create).
    # ------------------------------------------------------------------
    def counter(self, name: str) -> CounterMetric:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = CounterMetric()
        return metric

    def inc(self, name: str, amount: int = 1) -> None:
        """Increment the named counter (get-or-create convenience)."""
        self.counter(name).inc(amount)

    def counter_values(self) -> Dict[str, int]:
        """Current counter values by name, sorted (no full snapshot needed).

        The campaign runner uses a registry for its supervision counters --
        ``runner.retries``, ``runner.timeouts``, ``runner.worker_restarts``,
        ``runner.quarantined_cells`` -- which the CLI reads back through
        this accessor.
        """
        return {name: metric.value for name, metric in sorted(self._counters.items())}

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str, bounds: Sequence[int] = STEP_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    # ------------------------------------------------------------------
    # Network hooks (pre-bound by Network at construction).
    # ------------------------------------------------------------------
    def on_complete(self, step: int, pid: int, session: Any) -> None:
        """Record the delivery step at which ``pid`` completed ``session``."""
        root = session[0] if session else None
        self.histogram(f"completion_step.{root}", STEP_BUCKETS).observe(step)
        self.counter("completions").inc()

    def on_queue_depth(self, step: int, depth: int) -> None:
        """Record one in-flight queue-depth sample."""
        self.histogram("queue_depth", DEPTH_BUCKETS).observe(depth)
        self.gauge("queue_depth_last").set(depth)
        self.counter("queue_depth_samples").inc()

    # ------------------------------------------------------------------
    # Crypto-plane statistics (process-wide tables need a baseline delta).
    # ------------------------------------------------------------------
    def capture_baseline(self, network: Any) -> None:
        """Snapshot process-wide crypto counters before the run starts.

        The evaluation plan and the Lagrange-basis LRU are shared across
        trials of one process, so per-trial numbers are deltas against this
        baseline.  Building the plan here is deterministic (pure tables, no
        RNG) and is exactly what the first SVSS row would have done.
        """
        from repro.crypto.kernels import get_eval_plan, lagrange_cache_info

        params = network.params
        plan = get_eval_plan(params.prime, params.n)
        self._plan_baseline = dict(plan.stats)
        info = lagrange_cache_info()
        self._lagrange_baseline = (info.hits, info.misses)

    def finalize(self, network: Any) -> Dict[str, Any]:
        """Gather end-of-run crypto statistics and return the full snapshot."""
        from repro.crypto.kernels import get_eval_plan, lagrange_cache_info

        params = network.params
        plan = get_eval_plan(params.prime, params.n)
        baseline = self._plan_baseline or {}
        crypto: Dict[str, Any] = {
            "plan_mode": plan.mode,
            "plan_dispatch": {
                key: value - baseline.get(key, 0)
                for key, value in sorted(plan.stats.items())
            },
        }
        info = lagrange_cache_info()
        base_hits, base_misses = self._lagrange_baseline
        crypto["lagrange_cache"] = {
            "hits": info.hits - base_hits,
            "misses": info.misses - base_misses,
        }
        # The plane (per-network, hence per-trial) carries absolute counters.
        plane = getattr(network, "_crypto_plane", None)
        if plane is not None:
            crypto["plane_cache"] = {
                **{key: value for key, value in sorted(plane.stats.items())},
                "row_cache_size": len(plane.row_cache),
                "eval_cache_size": len(plane.eval_cache),
                "weight_cache_size": len(plane.weight_cache),
            }
        self._crypto = crypto
        return self.snapshot()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All metrics as a JSON-compatible dict with deterministic key order."""
        data: Dict[str, Any] = {
            "counters": {
                name: metric.value for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.to_dict()
                for name, metric in sorted(self._histograms.items())
            },
        }
        if self._crypto is not None:
            data["crypto"] = self._crypto
        return data


# ----------------------------------------------------------------------
# Aggregation helpers over serialized Histogram.to_dict() payloads.  The
# campaign layer carries histograms across process boundaries (and across
# trials) in exactly that shape, so merging and quantile extraction operate
# on the dict form rather than on live Histogram objects.
def _bucket_bound(label: str) -> float:
    """Sort key for a bucket label: ``"<=64"`` -> 64, ``">262144"`` -> +inf."""
    if label.startswith("<="):
        return float(label[2:])
    return math.inf


def merge_histogram_dicts(
    target: Optional[Mapping[str, Any]], incoming: Mapping[str, Any]
) -> Dict[str, Any]:
    """Combine two :meth:`Histogram.to_dict` payloads (bucketwise sums).

    ``target`` may be None (returns a copy of ``incoming``).  Both payloads
    must share bucket bounds -- they do by construction, since every
    histogram of a given metric name uses the same fixed bounds.  The
    ``mean`` is recomputed from the merged count/sum, so merging is
    associative and order-independent.
    """
    if target is None:
        merged = dict(incoming)
        merged["buckets"] = dict(incoming.get("buckets", {}))
        return merged
    buckets = dict(target.get("buckets", {}))
    for label, count in incoming.get("buckets", {}).items():
        buckets[label] = buckets.get(label, 0) + count
    count = target.get("count", 0) + incoming.get("count", 0)
    total = target.get("sum", 0) + incoming.get("sum", 0)
    maxes = [m for m in (target.get("max"), incoming.get("max")) if m is not None]
    return {
        "count": count,
        "sum": total,
        "max": max(maxes) if maxes else None,
        "mean": round(total / count, 2) if count else None,
        "buckets": buckets,
    }


def histogram_quantile(hist: Mapping[str, Any], q: float) -> Optional[float]:
    """Conservative q-quantile from a bucketed payload (upper bucket edge).

    Returns the inclusive upper bound of the first bucket whose cumulative
    count reaches ``q * count`` -- an upper estimate, exact to bucket
    granularity.  For the overflow bucket the recorded ``max`` is returned.
    None when the histogram is empty.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must lie in (0, 1], got {q}")
    count = hist.get("count") or 0
    if not count:
        return None
    target = math.ceil(q * count)
    cumulative = 0
    buckets = sorted(hist.get("buckets", {}).items(), key=lambda kv: _bucket_bound(kv[0]))
    for label, bucket_count in buckets:
        cumulative += bucket_count
        if cumulative >= target:
            bound = _bucket_bound(label)
            if math.isinf(bound):
                break
            return bound
    maximum = hist.get("max")
    return float(maximum) if maximum is not None else None


def summarize_histogram(hist: Mapping[str, Any]) -> Dict[str, Any]:
    """Headline percentiles for reporting: count, mean, p50/p90/p99, max."""
    return {
        "count": hist.get("count", 0),
        "mean": hist.get("mean"),
        "p50": histogram_quantile(hist, 0.50),
        "p90": histogram_quantile(hist, 0.90),
        "p99": histogram_quantile(hist, 0.99),
        "max": hist.get("max"),
    }
