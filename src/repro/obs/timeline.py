"""Session timelines: per-party phase/round lanes built from trace events.

A :class:`TimelineBuilder` consumes the JSON form of trace events (see
:mod:`repro.obs.schema`) either live -- attached to a trace as a sink -- or
offline from a previously written JSONL file.  It keys one *lane* per
``(party, session)`` pair from ``session_open`` / ``phase`` / ``complete``
events (SVSS row->ready phases, ABA ``round-k``, coin ``iter-k``) and
renders the result as an aligned text report or as Chrome
``chrome://tracing`` / Perfetto JSON where the time axis is the
deterministic delivery-step counter, not wall-clock time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.net.tracing import TraceEvent
from repro.obs.schema import event_to_jsonable
from repro.obs.sinks import TraceSink

LaneKey = Tuple[int, Tuple[str, ...]]


class _Lane:
    """One (party, session) timeline lane."""

    __slots__ = ("open_step", "phases", "complete_step", "value")

    def __init__(self) -> None:
        self.open_step: Optional[int] = None
        self.phases: List[Tuple[int, str]] = []
        self.complete_step: Optional[int] = None
        self.value: Any = None


class TimelineBuilder(TraceSink):
    """Builds per-party session timelines from trace events.

    Usable directly as a trace sink (``trace.add_sink(TimelineBuilder())``)
    or rebuilt offline with :meth:`from_jsonl`.  Only lifecycle events
    (``session_open``, ``phase``, ``complete``) create lanes; sends and
    deliveries only advance the observed step horizon, so attaching the
    builder to a full trace stays cheap.
    """

    def __init__(self) -> None:
        self._lanes: Dict[LaneKey, _Lane] = {}
        self.max_step = 0
        self.events_seen = 0
        self.marks: List[Tuple[int, str, Optional[int], Any]] = []

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        self.add(event_to_jsonable(event))

    def add(self, data: Dict[str, Any]) -> None:
        """Ingest one event in its JSON-object form."""
        self.events_seen += 1
        step = data.get("step", 0)
        if step > self.max_step:
            self.max_step = step
        kind = data.get("kind")
        party = data.get("party")
        if kind == "session_open":
            self._lane(party, data["session"]).open_step = step
        elif kind == "phase":
            self._lane(party, data["session"]).phases.append((step, data["phase"]))
        elif kind == "complete":
            lane = self._lane(party, data["session"])
            lane.complete_step = step
            lane.value = data.get("value")
        elif kind in ("shun", "corrupt", "director"):
            detail = data.get("action") if kind == "director" else data.get("shunned")
            self.marks.append((step, kind, party, detail))

    def _lane(self, party: Any, session: Any) -> _Lane:
        key = (party, tuple(str(part) for part in session))
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = _Lane()
        return lane

    @classmethod
    def from_jsonl(cls, path: Any) -> "TimelineBuilder":
        """Rebuild a timeline from a JSONL trace file."""
        builder = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    builder.add(json.loads(line))
        return builder

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def _sorted_lanes(self) -> List[Tuple[LaneKey, _Lane]]:
        return sorted(self._lanes.items(), key=lambda item: (item[0][1], item[0][0]))

    def render_text(self) -> str:
        """An aligned, deterministic text report of every session lane."""
        lines = [
            f"timeline: {self.events_seen} events, "
            f"{len(self._lanes)} lanes, steps 0..{self.max_step}"
        ]
        current_session: Optional[Tuple[str, ...]] = None
        for (party, session), lane in self._sorted_lanes():
            if session != current_session:
                current_session = session
                lines.append(f"session {'/'.join(session)}:")
            parts = []
            if lane.open_step is not None:
                parts.append(f"open@{lane.open_step}")
            parts.extend(f"{phase}@{step}" for step, phase in lane.phases)
            if lane.complete_step is not None:
                done = f"done@{lane.complete_step}"
                if lane.value is not None:
                    done += f"={lane.value}"
                parts.append(done)
            lines.append(f"  party {party}: " + (" ".join(parts) or "(no milestones)"))
        for step, kind, party, detail in sorted(
            self.marks, key=lambda mark: (mark[0], mark[1], str(mark[2]))
        ):
            lines.append(f"mark @{step}: {kind} party={party} {detail}")
        return "\n".join(lines) + "\n"

    def to_chrome_json(self) -> Dict[str, Any]:
        """Chrome ``chrome://tracing`` / Perfetto trace-event JSON.

        ``pid`` is the party, ``tid`` indexes the session lane, and ``ts`` /
        ``dur`` are measured in delivery steps (the simulator's deterministic
        clock), not microseconds.  Each phase becomes an ``X`` complete event
        spanning until the next phase (or completion / end of run); shun,
        corrupt and director actions become ``i`` instant events.
        """
        events: List[Dict[str, Any]] = []
        session_tids: Dict[Tuple[str, ...], int] = {}
        named_pids = set()
        for (party, session), lane in self._sorted_lanes():
            tid = session_tids.setdefault(session, len(session_tids))
            pid = party if party is not None else -1
            if pid not in named_pids:
                named_pids.add(pid)
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "name": "process_name",
                        "args": {"name": f"party {pid}"},
                    }
                )
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": "/".join(session)},
                }
            )
            milestones: List[Tuple[int, str]] = []
            if lane.open_step is not None:
                milestones.append((lane.open_step, "open"))
            milestones.extend(lane.phases)
            end = lane.complete_step if lane.complete_step is not None else self.max_step
            for index, (step, phase) in enumerate(milestones):
                next_step = (
                    milestones[index + 1][0] if index + 1 < len(milestones) else end
                )
                events.append(
                    {
                        "name": phase,
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "ts": step,
                        "dur": max(next_step - step, 0),
                        "cat": "phase",
                    }
                )
            if lane.complete_step is not None:
                events.append(
                    {
                        "name": "complete",
                        "ph": "i",
                        "pid": pid,
                        "tid": tid,
                        "ts": lane.complete_step,
                        "s": "t",
                        "cat": "lifecycle",
                        "args": {"value": lane.value},
                    }
                )
        for step, kind, party, detail in sorted(
            self.marks, key=lambda mark: (mark[0], mark[1], str(mark[2]))
        ):
            events.append(
                {
                    "name": f"{kind}:{detail}" if detail is not None else kind,
                    "ph": "i",
                    "pid": party if party is not None else -1,
                    "tid": 0,
                    "ts": step,
                    "s": "g",
                    "cat": "fault",
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"time_axis": "delivery steps"},
        }
