"""Streaming trace sinks: per-event consumers attached to an enabled Trace.

A sink observes every :class:`~repro.net.tracing.TraceEvent` as it is
recorded (``Trace.add_sink``), independent of the trace's retention policy --
a JSONL writer can stream a run whose trace keeps nothing in memory.  Sinks
must never mutate events or touch simulation state: they are observers, and
the determinism tests (``tests/obs/test_determinism.py``) lock in that
attaching one does not change delivery order.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Any, Deque, List, Optional

from repro.net.tracing import TraceEvent
from repro.obs.schema import event_to_jsonable


class TraceSink:
    """Base class for streaming event consumers.

    Subclasses override :meth:`emit`; :meth:`close` flushes/releases any
    resources and must be idempotent (the runtime closes sinks after the run,
    and CLI wrappers may close them again defensively).
    """

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events plus per-kind totals.

    Useful as a post-mortem flight recorder on long runs: total counts stay
    exact while memory stays bounded.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.events_seen = 0
        self.counts_by_kind: Counter = Counter()

    @property
    def events_dropped(self) -> int:
        """Events evicted from the ring (seen minus retained)."""
        return self.events_seen - len(self.events)

    def emit(self, event: TraceEvent) -> None:
        self.events_seen += 1
        self.counts_by_kind[event.kind] += 1
        self.events.append(event)

    def tail(self, count: int = 20) -> List[TraceEvent]:
        """The last ``count`` retained events, oldest first."""
        if count <= 0:
            return []
        return list(self.events)[-count:]


class JsonlSink(TraceSink):
    """Writes one JSON object per event to a ``.jsonl`` file.

    Serialisation goes through :func:`repro.obs.schema.event_to_jsonable`
    (schema documented there; ``repr`` fallback for exotic payloads, so
    writing never fails mid-run).  Lines are written with sorted keys, making
    the file byte-identical across runs of the same seed.
    """

    def __init__(self, path: Any) -> None:
        self.path = path
        self._handle: Optional[Any] = open(path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        handle = self._handle
        if handle is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        json.dump(event_to_jsonable(event), handle, sort_keys=True, default=repr)
        handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
