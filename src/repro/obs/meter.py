"""Aggregate message metering for trace-free (group-mode) executions.

A :class:`GroupMeter` gives the group-mode fast path the headline numbers a
:class:`~repro.net.tracing.Trace` would have collected -- sends, deliveries,
drops, shun events, per-kind and per-root send counts -- without requiring
Message objects at send time.  The network updates it *once per fan-out*
(:class:`~repro.net.queues.FanoutEntry` granularity: a broadcast of ``n``
copies is one counter bump of ``n``), and the process layer counts drops on
the unmaterialised delivery path.  Deliveries are not counted at all: every
network step delivers exactly one message, so the delivered total is read off
``Network.step_count`` at snapshot time.

The meter never touches the scheduler RNG or the queue, so delivery order is
byte-identical with metering on or off (locked by the golden-fingerprint
determinism tests in ``tests/obs/test_determinism.py``).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict


class GroupMeter:
    """Message counters for one network, maintained on the send/drop paths."""

    __slots__ = (
        "messages_sent",
        "messages_dropped",
        "shun_events",
        "sent_by_kind",
        "sent_by_root",
        "dropped_by_reason",
    )

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_dropped = 0
        self.shun_events = 0
        self.sent_by_kind: Counter = Counter()
        self.sent_by_root: Counter = Counter()
        self.dropped_by_reason: Counter = Counter()

    # ------------------------------------------------------------------
    def count_send(self, kind: Any, root: Any, count: int) -> None:
        """Count ``count`` copies of one logical send (fan-out granularity)."""
        self.messages_sent += count
        self.sent_by_kind[kind] += count
        self.sent_by_root[root] += count

    def count_drop(self, reason: str) -> None:
        """Count one dropped delivery (e.g. a shunned sender's message)."""
        self.messages_dropped += 1
        self.dropped_by_reason[reason] += 1

    def count_shun(self) -> None:
        """Count one shunning event."""
        self.shun_events += 1

    # ------------------------------------------------------------------
    def summary(self, messages_delivered: int) -> Dict[str, Any]:
        """``Trace.summary()``-shaped headline metrics.

        ``messages_delivered`` is the network's step count: one step is one
        delivery, so the meter never pays a per-delivery update for it.
        """
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": messages_delivered,
            "messages_dropped": self.messages_dropped,
            "shun_events": self.shun_events,
            "sent_by_root": dict(self.sent_by_root),
            "sent_by_kind": dict(self.sent_by_kind),
            "dropped_by_reason": dict(self.dropped_by_reason),
        }
