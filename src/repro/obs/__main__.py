"""Offline tools for emitted traces: ``python -m repro.obs``.

Subcommands:

* ``validate TRACE.jsonl`` -- schema-check an emitted JSONL trace (exit 1 on
  problems); used by the CI observability smoke job.
* ``timeline TRACE.jsonl [--format text|chrome] [--out PATH]`` -- rebuild the
  session timeline from a JSONL trace and render it as a text report or
  Chrome ``chrome://tracing`` JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.schema import validate_jsonl
from repro.obs.timeline import TimelineBuilder


def _cmd_validate(args: argparse.Namespace) -> int:
    count, problems = validate_jsonl(args.trace, max_problems=args.max_problems)
    for problem in problems:
        print(f"{args.trace}: {problem}", file=sys.stderr)
    if problems:
        print(f"{args.trace}: INVALID ({count} events, {len(problems)} problems)")
        return 1
    print(f"{args.trace}: OK ({count} events)")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    builder = TimelineBuilder.from_jsonl(args.trace)
    if args.format == "chrome":
        rendered = json.dumps(builder.to_chrome_json(), indent=2, sort_keys=True)
    else:
        rendered = builder.render_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            if not rendered.endswith("\n"):
                handle.write("\n")
        print(f"wrote {args.format} timeline to {args.out}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate and render JSONL traces emitted by the simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="schema-check a JSONL trace")
    validate.add_argument("trace", help="path to the .jsonl trace file")
    validate.add_argument(
        "--max-problems", type=int, default=20, help="stop reporting after this many"
    )
    validate.set_defaults(func=_cmd_validate)

    timeline = sub.add_parser("timeline", help="render a session timeline")
    timeline.add_argument("trace", help="path to the .jsonl trace file")
    timeline.add_argument(
        "--format", choices=("text", "chrome"), default="text", help="output format"
    )
    timeline.add_argument("--out", help="write to this file instead of stdout")
    timeline.set_defaults(func=_cmd_timeline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
