"""Ablation harness: per-factor contribution tables and attack sweeps.

The simulator has accumulated a stack of independent optimisations (vectorised
evaluation plans, the group-mode fan-out queue, GC pausing, session interning,
trace-free metering) and a library of attack scenarios composed from four
components (corruption plan, fault timeline, hostile scheduler, tamper
transitions).  This module makes each of them a *factor* that can be toggled
declaratively and measured in isolation:

* a :class:`Factor` registry describing every toggle as a campaign-cell
  parameter overlay (optimisations ride the ``tuning`` runner kwarg; scenario
  components ride the ``<base>~no-<component>`` variant syntax of
  :func:`repro.scenarios.library.get_scenario`);
* grid builders expanding factors into ordinary
  :class:`~repro.experiments.spec.ExperimentSpec` cells -- one-factor-out by
  default, full factorial on request -- which run on the existing
  fault-tolerant campaign runner (parallel, resumable, quarantine-aware for
  free) and therefore serialize, hash and resume like any other campaign;
* :func:`contribution_table`, aggregating the resulting
  :class:`~repro.core.results.TrialAggregate` per cell into per-factor rows
  (wall time, deliveries/s, sends-by-kind, crypto cache hit rates, and a
  statistics-identity check against the baseline for the semantics-preserving
  toggles);
* :func:`build_attack_sweep` / :func:`sweep_table`, reporting bias /
  disagreement probability / message complexity *as a function of the
  scenario* across ``n`` and seeds, with Wilson binomial confidence
  intervals (:func:`repro.analysis.binomial.wilson_interval`).

The machine-checked paper-claims layer on top lives in
:mod:`repro.analysis.claims`; the ``repro-experiments ablate`` CLI mode wires
both together.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.binomial import wilson_interval
from repro.analysis.complexity import (
    acast_messages,
    aba_expected_messages,
    coinflip_expected_messages,
    common_subset_expected_messages,
    fair_choice_expected_messages,
    fba_expected_messages,
    svss_rec_messages,
    svss_share_messages,
)
from repro.errors import ExperimentError

if TYPE_CHECKING:  # heavy layers; imported lazily at runtime because
    # ``protocols.coinflip`` imports this package during ``repro.core.api``'s
    # own initialisation (analysis must stay a leaf of the import graph).
    from repro.core.results import TrialAggregate
    from repro.experiments.spec import CampaignSpec, ExperimentSpec

#: Parameters every ablation cell shares unless overridden: the campaign
#: throughput configuration (tracing off, so the group-mode fast path and the
#: meter are engaged) plus the structured-metrics registry, which supplies
#: the cache-hit-rate and histogram columns of the contribution table.
DEFAULT_BASE_PARAMS: Dict[str, Any] = {"tracing": False, "metrics": True}

#: Name of the all-factors-on cell in every ablation campaign.
BASELINE_CELL = "baseline"


@dataclass(frozen=True)
class Factor:
    """One independently-toggleable factor of the system under ablation.

    Attributes:
        name: registry key; the one-factor-out cell is named ``no-<name>``.
        description: one-line human description of what the factor buys.
        ablated: cell-parameter overlay applied when the factor is *off*
            (merged over the base params; the ``tuning`` sub-dict merges
            keywise so several factors compose in factorial grids).
        scenario_component: when set, ablating the factor swaps the cell's
            scenario for its ``~no-<component>`` variant instead of touching
            params (see :data:`repro.scenarios.library.SCENARIO_COMPONENTS`).
        stats_preserving: the ablated configuration is expected to produce
            byte-identical per-seed statistics (outputs, message counts,
            steps) -- true for every pure optimisation, false when the toggle
            changes what is measured (metering off) or what the adversary
            does (scenario components).
    """

    name: str
    description: str
    ablated: Mapping[str, Any] = field(default_factory=dict)
    scenario_component: Optional[str] = None
    stats_preserving: bool = True


#: The optimisation factors, one per independent fast path.  Ablating
#: ``trace_free`` re-enables full tracing, which also forfeits group mode
#: (trace hooks need materialised messages) -- that composite cost is the
#: honest price of tracing and is reported as such.
OPTIMISATION_FACTORS: Tuple[Factor, ...] = (
    Factor(
        "eval_plan",
        "vectorised EvalPlan crypto kernels (vs forced scalar)",
        ablated={"tuning": {"eval_plan": "scalar"}},
    ),
    Factor(
        "group_queue",
        "group-mode fan-out delivery queue (vs flat per-message queue)",
        ablated={"tuning": {"group_mode": False}},
    ),
    Factor(
        "gc_pause",
        "cyclic GC paused during the delivery loop (vs live collector)",
        ablated={"tuning": {"pause_gc": False}},
    ),
    Factor(
        "interned_sessions",
        "network-wide session-tuple interning (vs per-caller allocation)",
        ablated={"tuning": {"intern_sessions": False}},
    ),
    Factor(
        "trace_free",
        "trace hooks disabled, metered group mode (vs full tracing)",
        ablated={"tracing": True},
    ),
    Factor(
        "metering",
        "aggregate message meter on trace-free runs (vs no meter)",
        ablated={"metering": False},
        stats_preserving=False,
    ),
)


def scenario_factors() -> Tuple[Factor, ...]:
    """Factors toggling each attack-scenario component independently."""
    from repro.scenarios.library import SCENARIO_COMPONENTS

    return tuple(
        Factor(
            f"scenario_{component}",
            f"attack scenario component: {component}",
            scenario_component=component,
            stats_preserving=False,
        )
        for component in SCENARIO_COMPONENTS
    )


def factor_names(factors: Iterable[Factor]) -> List[str]:
    return [factor.name for factor in factors]


# ----------------------------------------------------------------------
# Grid expansion
def _merge_params(
    base: Mapping[str, Any], overlay: Mapping[str, Any]
) -> Dict[str, Any]:
    """Overlay ``overlay`` onto ``base``; the ``tuning`` sub-dict merges keywise."""
    merged: Dict[str, Any] = {
        key: dict(value) if isinstance(value, dict) else value
        for key, value in base.items()
    }
    for key, value in overlay.items():
        if key == "tuning" and isinstance(merged.get("tuning"), dict):
            merged["tuning"] = {**merged["tuning"], **value}
        else:
            merged[key] = dict(value) if isinstance(value, dict) else value
    return merged


def _ablated_cell(
    name: str,
    protocol: str,
    n: int,
    seeds: Sequence[int],
    base: Mapping[str, Any],
    off_factors: Sequence[Factor],
    scenario: Optional[str],
) -> "ExperimentSpec":
    from repro.experiments.spec import ExperimentSpec

    params: Dict[str, Any] = _merge_params(base, {})
    cell_scenario = scenario
    dropped_components: List[str] = []
    for factor in off_factors:
        if factor.scenario_component is not None:
            if scenario is None:
                raise ExperimentError(
                    f"factor {factor.name!r} ablates a scenario component but "
                    f"the ablation has no scenario"
                )
            dropped_components.append(f"no-{factor.scenario_component}")
        else:
            params = _merge_params(params, factor.ablated)
    if dropped_components:
        cell_scenario = f"{scenario}~{','.join(dropped_components)}"
    return ExperimentSpec(
        name=name,
        protocol=protocol,
        n=n,
        seeds=list(seeds),
        params=params,
        scenario=cell_scenario,
    )


def one_factor_out_cells(
    protocol: str,
    n: int,
    seeds: Sequence[int],
    factors: Sequence[Factor],
    base_params: Optional[Mapping[str, Any]] = None,
    scenario: Optional[str] = None,
) -> List[ExperimentSpec]:
    """The baseline cell plus one ``no-<factor>`` cell per factor."""
    base = _merge_params(DEFAULT_BASE_PARAMS, base_params or {})
    cells = [
        _ablated_cell(BASELINE_CELL, protocol, n, seeds, base, (), scenario)
    ]
    for factor in factors:
        cells.append(
            _ablated_cell(
                f"no-{factor.name}", protocol, n, seeds, base, (factor,), scenario
            )
        )
    return cells


#: Factorial grids double per factor; more than this many factors is almost
#: certainly a mistake (256 cells), so the builder refuses.
MAX_FACTORIAL_FACTORS = 8


def factorial_cells(
    protocol: str,
    n: int,
    seeds: Sequence[int],
    factors: Sequence[Factor],
    base_params: Optional[Mapping[str, Any]] = None,
    scenario: Optional[str] = None,
) -> List[ExperimentSpec]:
    """The full ``2^k`` factorial grid over ``factors``.

    Cell names list the ablated factors (``no-a+no-b``); the all-on corner
    keeps the :data:`BASELINE_CELL` name so contribution tables and claims
    find it under either expansion mode.
    """
    if len(factors) > MAX_FACTORIAL_FACTORS:
        raise ExperimentError(
            f"factorial grid over {len(factors)} factors would need "
            f"{2 ** len(factors)} cells; cap is {MAX_FACTORIAL_FACTORS} factors"
        )
    base = _merge_params(DEFAULT_BASE_PARAMS, base_params or {})
    cells = []
    for bits in itertools.product((False, True), repeat=len(factors)):
        off = [factor for factor, is_off in zip(factors, bits) if is_off]
        name = "+".join(f"no-{factor.name}" for factor in off) or BASELINE_CELL
        cells.append(
            _ablated_cell(name, protocol, n, seeds, base, off, scenario)
        )
    return cells


def build_ablation_campaign(
    name: str,
    protocol: str,
    n: int,
    seeds: Sequence[int],
    factors: Optional[Sequence[Factor]] = None,
    mode: str = "one-out",
    base_params: Optional[Mapping[str, Any]] = None,
    scenario: Optional[str] = None,
) -> CampaignSpec:
    """Expand a factor set into a validated, hash-stable campaign spec.

    ``mode`` is ``"one-out"`` (baseline + one cell per factor, the default)
    or ``"factorial"`` (the full ``2^k`` grid).  When ``scenario`` is given,
    :func:`scenario_factors` are appended to the default factor set, so the
    attack's components are ablated alongside the optimisations.
    """
    if factors is None:
        factors = list(OPTIMISATION_FACTORS)
        if scenario is not None:
            factors += list(scenario_factors())
    if mode == "one-out":
        cells = one_factor_out_cells(
            protocol, n, seeds, factors, base_params, scenario
        )
    elif mode == "factorial":
        cells = factorial_cells(protocol, n, seeds, factors, base_params, scenario)
    else:
        raise ExperimentError(
            f'ablation mode must be "one-out" or "factorial", got {mode!r}'
        )
    from repro.experiments.spec import CampaignSpec

    campaign = CampaignSpec(name=name, cells=cells)
    campaign.validate()
    return campaign


# ----------------------------------------------------------------------
# Contribution tables
def _stats_signature(aggregate: TrialAggregate) -> Tuple[Any, ...]:
    """The deterministic statistics a pure optimisation must not change."""
    return (
        aggregate.trials,
        aggregate.disagreements,
        tuple(sorted(aggregate.value_counts.items())),
        aggregate.total_messages,
        aggregate.total_steps,
        aggregate.total_shun_events,
        aggregate.total_dropped,
        tuple(sorted(aggregate.sent_by_kind.items())),
    )


def cache_hit_rate(aggregate: TrialAggregate) -> Optional[float]:
    """Crypto-plane cache hit rate over the aggregate's trials (or None).

    Pools the row/eval/weight caches (``crypto.plane.*`` counters folded by
    :meth:`TrialAggregate.add`); None when the cells ran without a metrics
    registry or never touched the plane.
    """
    hits = misses = 0
    for key, value in aggregate.metric_counters.items():
        if key.startswith("crypto.plane.") and key.endswith("_hits"):
            hits += value
        elif key.startswith("crypto.plane.") and key.endswith("_misses"):
            misses += value
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


@dataclass
class ContributionRow:
    """One row of the per-factor contribution table.

    The ``baseline`` row carries the all-factors-on measurements; every
    ``no-<factor>`` row reports the same columns for the ablated run plus the
    relative wall-time delta (positive = removing the factor made trials
    slower, i.e. the factor contributes that much) and, for
    statistics-preserving factors, whether the deterministic statistics
    stayed byte-identical to the baseline.
    """

    cell: str
    factor: Optional[str]
    description: str
    trials: int
    wall_s_per_trial: Optional[float]
    deliveries_per_s: Optional[float]
    wall_delta_pct: Optional[float]
    mean_messages: float
    mean_steps: float
    sent_by_kind: Dict[str, int]
    cache_hit_rate: Optional[float]
    stats_expected_identical: bool
    stats_identical: Optional[bool]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell,
            "factor": self.factor,
            "description": self.description,
            "trials": self.trials,
            "wall_s_per_trial": self.wall_s_per_trial,
            "deliveries_per_s": self.deliveries_per_s,
            "wall_delta_pct": self.wall_delta_pct,
            "mean_messages": self.mean_messages,
            "mean_steps": self.mean_steps,
            "sent_by_kind": dict(self.sent_by_kind),
            "cache_hit_rate": self.cache_hit_rate,
            "stats_expected_identical": self.stats_expected_identical,
            "stats_identical": self.stats_identical,
        }


def _row_for(
    cell: str,
    factor: Optional[Factor],
    aggregate: TrialAggregate,
    baseline: Optional[TrialAggregate],
) -> ContributionRow:
    trials = aggregate.trials
    wall = aggregate.total_elapsed_s / trials if trials and aggregate.total_elapsed_s else None
    delta = None
    identical = None
    if baseline is not None and factor is not None:
        base_wall = (
            baseline.total_elapsed_s / baseline.trials
            if baseline.trials and baseline.total_elapsed_s
            else None
        )
        if wall is not None and base_wall:
            delta = 100.0 * (wall - base_wall) / base_wall
        if factor.stats_preserving:
            identical = _stats_signature(aggregate) == _stats_signature(baseline)
    return ContributionRow(
        cell=cell,
        factor=factor.name if factor else None,
        description=factor.description if factor else "all factors on",
        trials=trials,
        wall_s_per_trial=wall,
        deliveries_per_s=aggregate.deliveries_per_s,
        wall_delta_pct=delta,
        mean_messages=aggregate.mean_messages,
        mean_steps=aggregate.mean_steps,
        sent_by_kind=dict(aggregate.sent_by_kind),
        cache_hit_rate=cache_hit_rate(aggregate),
        stats_expected_identical=factor.stats_preserving if factor else True,
        stats_identical=identical,
    )


def contribution_table(
    results: Mapping[str, TrialAggregate],
    factors: Sequence[Factor],
) -> List[ContributionRow]:
    """Per-factor contribution rows from one-factor-out campaign results.

    ``results`` maps cell names to aggregates and must contain the
    :data:`BASELINE_CELL`; a factor whose ``no-<name>`` cell is missing
    (e.g. quarantined) is skipped rather than failing the whole table.
    """
    if BASELINE_CELL not in results:
        raise ExperimentError(
            f"contribution table needs a {BASELINE_CELL!r} cell; "
            f"got {sorted(results)}"
        )
    baseline = results[BASELINE_CELL]
    rows = [_row_for(BASELINE_CELL, None, baseline, None)]
    for factor in factors:
        cell = f"no-{factor.name}"
        aggregate = results.get(cell)
        if aggregate is None:
            continue
        rows.append(_row_for(cell, factor, aggregate, baseline))
    return rows


CONTRIBUTION_HEADER = (
    "cell",
    "trials",
    "wall s/trial",
    "deliveries/s",
    "Δwall vs base",
    "msgs/trial",
    "cache hit",
    "stats",
)


def format_contribution_rows(rows: Sequence[ContributionRow]) -> List[Tuple[str, ...]]:
    """Human-readable cells for :data:`CONTRIBUTION_HEADER` (CLI/examples)."""
    formatted = []
    for row in rows:
        if row.stats_identical is None:
            stats = "-" if row.stats_expected_identical else "n/a"
        else:
            stats = "identical" if row.stats_identical else "DIVERGED"
        formatted.append(
            (
                row.cell,
                str(row.trials),
                "-" if row.wall_s_per_trial is None else f"{row.wall_s_per_trial:.4f}",
                "-" if row.deliveries_per_s is None else f"{row.deliveries_per_s:,.0f}".replace(",", "_"),
                "-" if row.wall_delta_pct is None else f"{row.wall_delta_pct:+.1f}%",
                f"{row.mean_messages:.1f}",
                "-" if row.cache_hit_rate is None else f"{100.0 * row.cache_hit_rate:.1f}%",
                stats,
            )
        )
    return formatted


# ----------------------------------------------------------------------
# Attack sweeps
def build_attack_sweep(
    name: str,
    scenarios: Sequence[str],
    ns: Sequence[int],
    seeds: Sequence[int],
    base_params: Optional[Mapping[str, Any]] = None,
) -> CampaignSpec:
    """A campaign sweeping the named scenarios across party counts.

    One cell per ``(scenario, n)`` named ``<scenario>|n=<n>``; each cell's
    protocol comes from the scenario itself, and every cell runs in the
    trace-free metered configuration so sweeps stay on the fast path.
    """
    from repro.experiments.spec import CampaignSpec, ExperimentSpec
    from repro.scenarios.library import get_scenario

    base = _merge_params({"tracing": False}, base_params or {})
    cells = []
    for scenario in scenarios:
        protocol = get_scenario(scenario).protocol
        for n in ns:
            cells.append(
                ExperimentSpec(
                    name=f"{scenario}|n={n}",
                    protocol=protocol,
                    n=n,
                    seeds=list(seeds),
                    params=dict(base),
                    scenario=scenario,
                )
            )
    campaign = CampaignSpec(name=name, cells=cells)
    campaign.validate()
    return campaign


def predicted_messages(
    protocol: str, n: int, params: Mapping[str, Any]
) -> Optional[float]:
    """Closed-form honest-execution message prediction for one cell (or None).

    Wraps :mod:`repro.analysis.complexity` with the registry's protocol names
    and each runner's iteration-count parameters; protocols without a
    closed-form prediction (``weak_coin``'s single flip is modelled as one
    CoinFlip iteration without the final BA) return a best-effort figure,
    unknown protocols return None.
    """
    try:
        if protocol == "acast":
            return float(acast_messages(n))
        if protocol == "svss":
            return float(svss_share_messages(n) + svss_rec_messages(n))
        if protocol == "aba":
            return aba_expected_messages(n)
        if protocol == "common_subset":
            return common_subset_expected_messages(n)
        if protocol == "coinflip":
            rounds = int(params.get("rounds", 5))
            return coinflip_expected_messages(n, rounds)
        if protocol == "weak_coin":
            t = (n - 1) // 3
            return (
                n * svss_share_messages(n)
                + common_subset_expected_messages(n)
                + (n - t) * svss_rec_messages(n)
            )
        if protocol == "fair_choice":
            m = int(params["m"])
            rounds = int(params.get("coinflip_rounds", 1))
            return fair_choice_expected_messages(n, m, rounds)
        if protocol == "fba":
            rounds = int(params.get("coinflip_rounds", 1))
            return fba_expected_messages(n, rounds)
    except (KeyError, ValueError):
        return None
    return None


@dataclass
class SweepRow:
    """One ``(scenario, n)`` point of an attack sweep.

    ``bias`` is the empirical frequency of output ``1`` over all trials (for
    binary-output protocols), with a Wilson interval; ``disagreement`` is the
    honest-disagreement probability with its interval; ``message_ratio`` is
    measured mean messages over the closed-form honest prediction -- the
    attack's message-complexity amplification.
    """

    cell: str
    scenario: str
    n: int
    trials: int
    disagreement_rate: float
    disagreement_ci: Tuple[float, float]
    ones: int
    bias: Optional[float]
    bias_ci: Optional[Tuple[float, float]]
    mean_messages: float
    predicted_messages: Optional[float]
    message_ratio: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell,
            "scenario": self.scenario,
            "n": self.n,
            "trials": self.trials,
            "disagreement_rate": self.disagreement_rate,
            "disagreement_ci": list(self.disagreement_ci),
            "ones": self.ones,
            "bias": self.bias,
            "bias_ci": None if self.bias_ci is None else list(self.bias_ci),
            "mean_messages": self.mean_messages,
            "predicted_messages": self.predicted_messages,
            "message_ratio": self.message_ratio,
        }


def sweep_table(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> List[SweepRow]:
    """Sweep rows for every campaign cell present in ``results``."""
    from repro.scenarios.invariants import BINARY_OUTPUT_PROTOCOLS

    rows = []
    for cell in campaign.cells:
        aggregate = results.get(cell.name)
        if aggregate is None or aggregate.trials == 0:
            continue
        trials = aggregate.trials
        scenario = cell.scenario or "-"
        disagreement_ci = wilson_interval(aggregate.disagreements, trials)
        bias = bias_ci = None
        ones = aggregate.value_counts.get("1", 0)
        if cell.protocol in BINARY_OUTPUT_PROTOCOLS:
            bias = ones / trials
            bias_ci = wilson_interval(ones, trials)
        predicted = predicted_messages(cell.protocol, cell.n, cell.params)
        ratio = (
            aggregate.mean_messages / predicted
            if predicted
            else None
        )
        rows.append(
            SweepRow(
                cell=cell.name,
                scenario=scenario,
                n=cell.n,
                trials=trials,
                disagreement_rate=aggregate.disagreement_rate,
                disagreement_ci=disagreement_ci,
                ones=ones,
                bias=bias,
                bias_ci=bias_ci,
                mean_messages=aggregate.mean_messages,
                predicted_messages=predicted,
                message_ratio=ratio,
            )
        )
    return rows


SWEEP_HEADER = (
    "cell",
    "n",
    "trials",
    "disagree",
    "disagree 95% CI",
    "Pr[coin=1]",
    "bias 95% CI",
    "msgs/trial",
    "msg ratio",
)


def format_sweep_rows(rows: Sequence[SweepRow]) -> List[Tuple[str, ...]]:
    """Human-readable cells for :data:`SWEEP_HEADER`."""

    def ci(interval: Optional[Tuple[float, float]]) -> str:
        if interval is None:
            return "-"
        return f"[{interval[0]:.3f}, {interval[1]:.3f}]"

    return [
        (
            row.cell,
            str(row.n),
            str(row.trials),
            f"{row.disagreement_rate:.3f}",
            ci(row.disagreement_ci),
            "-" if row.bias is None else f"{row.bias:.3f}",
            ci(row.bias_ci),
            f"{row.mean_messages:.1f}",
            "-" if row.message_ratio is None else f"{row.message_ratio:.2f}x",
        )
        for row in rows
    ]


def render_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width text table (the CLI's format, reusable from examples)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(column) for column in header]
    for row in rows:
        widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
    lines = ["  ".join(name.ljust(width) for name, width in zip(header, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines) + "\n"
