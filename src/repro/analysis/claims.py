"""Machine-checked paper claims over campaign results.

Each claim is a falsifiable statement from the paper (or its standard
asynchronous-BA prerequisites) evaluated against the aggregated statistics of
a campaign: the CoinFlip bias bound, ``t < n/3`` corruption tolerance,
agreement and validity of the agreement-guaranteeing protocols, the honest
message-complexity envelope, and expected-constant-round termination.

The evaluation is deliberately conservative about randomness: probabilistic
claims fail only when the data *statistically refutes* them.  The coin-bias
claim, for example, asserts ``Pr[output = v] >= 1/2 - eps`` for both bits;
it fails only when the 95% Wilson upper confidence bound
(:func:`repro.analysis.binomial.wilson_interval`) on a bit's frequency drops
below the bound -- a handful of honest seeds landing on one side passes, a
genuinely rigged coin does not.  Deterministic claims (agreement, binary
outputs, corruption budgets, step bounds) fail on the first counterexample.

Entry point: :func:`evaluate_claims` produces a :class:`ClaimReport` with
text / markdown / JSON renderings; ``repro-experiments ablate`` and
``report --claims`` gate their exit status on :attr:`ClaimReport.passed`,
which is what the CI smoke job enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Tuple

from repro.analysis.ablation import predicted_messages
from repro.analysis.binomial import wilson_interval

if TYPE_CHECKING:  # runtime-lazy for the same import-graph reason as ablation
    from repro.core.results import TrialAggregate
    from repro.experiments.spec import CampaignSpec, ExperimentSpec

PASS = "pass"
FAIL = "fail"
SKIP = "skip"

#: Default CoinFlip bias target when a cell does not set ``epsilon``:
#: matches the runner's own default.
DEFAULT_EPSILON = 0.25

#: Honest executions may legitimately exceed the closed-form expected message
#: counts (expectations are over scheduler randomness; a run is a sample),
#: so the envelope claim allows this multiplicative slack.
DEFAULT_MESSAGE_SLACK = 3.0


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of evaluating one claim against one campaign.

    Attributes:
        claim: stable machine identifier (``coin_bias``, ``agreement``, ...).
        statement: the paper claim in one human-readable sentence.
        status: ``"pass"``, ``"fail"`` or ``"skip"`` (no applicable cells).
        detail: evidence -- per-cell numbers for passes, the counterexample
            for failures, the reason for skips.
        cells: names of the campaign cells the claim was evaluated on.
    """

    claim: str
    statement: str
    status: str
    detail: str
    cells: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "claim": self.claim,
            "statement": self.statement,
            "status": self.status,
            "detail": self.detail,
            "cells": list(self.cells),
        }


@dataclass
class ClaimReport:
    """Every claim's verdict for one campaign."""

    campaign: str
    results: List[ClaimResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no claim failed (skips do not fail the gate)."""
        return all(result.status != FAIL for result in self.results)

    @property
    def counts(self) -> Dict[str, int]:
        counts = {PASS: 0, FAIL: 0, SKIP: 0}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "passed": self.passed,
            "counts": self.counts,
            "claims": [result.to_dict() for result in self.results],
        }

    def render_text(self) -> str:
        lines = [f"claims: {self.campaign}"]
        for result in self.results:
            lines.append(f"[{result.status.upper():4s}] {result.claim}: {result.statement}")
            lines.append(f"       {result.detail}")
        counts = self.counts
        lines.append(
            f"{counts[PASS]} passed, {counts[FAIL]} failed, {counts[SKIP]} skipped"
        )
        return "\n".join(lines) + "\n"

    def render_markdown(self) -> str:
        lines = [
            f"### Claims: {self.campaign}",
            "",
            "| status | claim | statement | evidence |",
            "| --- | --- | --- | --- |",
        ]
        for result in self.results:
            lines.append(
                f"| {result.status} | `{result.claim}` | {result.statement} "
                f"| {result.detail} |"
            )
        counts = self.counts
        lines.append("")
        lines.append(
            f"**{counts[PASS]} passed, {counts[FAIL]} failed, "
            f"{counts[SKIP]} skipped.**"
        )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
def _is_honest(cell: ExperimentSpec) -> bool:
    """True when the cell runs without any adversary (scenario or static)."""
    return cell.scenario is None and not cell.adversary


def _cells_with_results(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> List[Tuple[ExperimentSpec, TrialAggregate]]:
    pairs = []
    for cell in campaign.cells:
        aggregate = results.get(cell.name)
        if aggregate is not None and aggregate.trials > 0:
            pairs.append((cell, aggregate))
    return pairs


def _skip(claim: str, statement: str, reason: str) -> ClaimResult:
    return ClaimResult(claim=claim, statement=statement, status=SKIP, detail=reason)


def check_coin_bias(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> ClaimResult:
    """Theorem 3 (CoinFlip): each bit appears with probability >= 1/2 - eps.

    Evaluated per honest ``coinflip`` cell at the cell's own ``epsilon``
    (default :data:`DEFAULT_EPSILON`).  Fails only when a bit's 95% Wilson
    upper bound falls below ``1/2 - eps`` -- i.e. the observed frequencies
    are statistically incompatible with the claimed bound.
    """
    claim = "coin_bias"
    statement = "CoinFlip outputs each bit with probability >= 1/2 - epsilon"
    pairs = [
        (cell, agg)
        for cell, agg in _cells_with_results(campaign, results)
        if cell.protocol == "coinflip" and _is_honest(cell)
    ]
    if not pairs:
        return _skip(claim, statement, "no honest coinflip cells in campaign")
    details = []
    failures = []
    for cell, agg in pairs:
        epsilon = float(cell.params.get("epsilon", DEFAULT_EPSILON))
        bound = 0.5 - epsilon
        for bit in ("0", "1"):
            count = agg.value_counts.get(bit, 0)
            _low, high = wilson_interval(count, agg.trials)
            if high < bound:
                failures.append(
                    f"{cell.name}: Pr[coin={bit}] <= {high:.3f} (95% UCB, "
                    f"{count}/{agg.trials}) refutes bound {bound:.3f}"
                )
        freq0 = agg.value_counts.get("0", 0) / agg.trials
        freq1 = agg.value_counts.get("1", 0) / agg.trials
        details.append(
            f"{cell.name}: freq(0)={freq0:.2f} freq(1)={freq1:.2f} "
            f"(bound {bound:.2f}, {agg.trials} trials)"
        )
    cells = tuple(cell.name for cell, _ in pairs)
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    return ClaimResult(claim, statement, PASS, "; ".join(details), cells)


def check_corruption_tolerance(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> ClaimResult:
    """Resilience model: the adversary corrupts at most t = floor((n-1)/3) parties.

    Static adversaries are bounded per cell spec; adaptive directors are
    bounded by their recorded ``corrupt`` actions, which may not exceed
    ``t`` per trial on average (the director's budget makes per-trial
    overruns impossible, so an aggregate overrun means the budget broke).
    """
    claim = "corruption_tolerance"
    statement = "every adversary stays within the t < n/3 corruption budget"
    pairs = [
        (cell, agg)
        for cell, agg in _cells_with_results(campaign, results)
        if not _is_honest(cell)
    ]
    if not pairs:
        return _skip(claim, statement, "no adversarial cells in campaign")
    from repro.core.config import max_faults

    details = []
    failures = []
    for cell, agg in pairs:
        t = max_faults(cell.n)
        static = len(cell.adversary)
        if static > t:
            failures.append(
                f"{cell.name}: {static} statically corrupted parties > t={t}"
            )
        corruptions = agg.director_actions.get("corrupt", 0)
        budget = t * agg.trials
        if corruptions > budget:
            failures.append(
                f"{cell.name}: {corruptions} director corruptions over "
                f"{agg.trials} trials exceeds t*trials={budget}"
            )
        details.append(
            f"{cell.name}: corruptions={corruptions} <= t*trials={budget}"
        )
    cells = tuple(cell.name for cell, _ in pairs)
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    return ClaimResult(claim, statement, PASS, "; ".join(details), cells)


def check_agreement(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> ClaimResult:
    """Agreement: protocols that guarantee it never let honest outputs differ.

    Applies to every cell (honest or adversarial) whose protocol is in
    :data:`repro.scenarios.invariants.AGREEMENT_PROTOCOLS`; weak coins are
    exempt by design.
    """
    from repro.scenarios.invariants import AGREEMENT_PROTOCOLS

    claim = "agreement"
    statement = "agreement-guaranteeing protocols produce identical honest outputs"
    pairs = [
        (cell, agg)
        for cell, agg in _cells_with_results(campaign, results)
        if cell.protocol in AGREEMENT_PROTOCOLS
    ]
    if not pairs:
        return _skip(claim, statement, "no agreement-guaranteeing cells in campaign")
    failures = [
        f"{cell.name}: {agg.disagreements}/{agg.trials} trials disagreed"
        for cell, agg in pairs
        if agg.disagreements
    ]
    cells = tuple(cell.name for cell, _ in pairs)
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    total = sum(agg.trials for _, agg in pairs)
    return ClaimResult(
        claim,
        statement,
        PASS,
        f"0 disagreements over {total} trials in {len(pairs)} cells",
        cells,
    )


def check_output_domain(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> ClaimResult:
    """Validity: binary-output protocols only ever output bits."""
    from repro.scenarios.invariants import BINARY_OUTPUT_PROTOCOLS

    claim = "output_domain"
    statement = "binary-output protocols (coin, ABA) only output 0 or 1"
    pairs = [
        (cell, agg)
        for cell, agg in _cells_with_results(campaign, results)
        if cell.protocol in BINARY_OUTPUT_PROTOCOLS
    ]
    if not pairs:
        return _skip(claim, statement, "no binary-output cells in campaign")
    failures = []
    for cell, agg in pairs:
        stray = sorted(set(agg.value_counts) - {"0", "1"})
        if stray:
            failures.append(f"{cell.name}: non-bit outputs {stray}")
    cells = tuple(cell.name for cell, _ in pairs)
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    total = sum(agg.trials for _, agg in pairs)
    return ClaimResult(
        claim,
        statement,
        PASS,
        f"all outputs in {{0,1}} over {total} trials in {len(pairs)} cells",
        cells,
    )


def check_message_complexity(
    campaign: CampaignSpec,
    results: Mapping[str, TrialAggregate],
    slack: float = DEFAULT_MESSAGE_SLACK,
) -> ClaimResult:
    """Complexity: honest executions stay within the closed-form envelope.

    Compares measured mean messages per trial against
    :func:`repro.analysis.ablation.predicted_messages` times ``slack`` for
    every honest cell that collected message statistics (cells run without
    tracing *and* without metering report zero messages and are skipped).
    """
    claim = "message_complexity"
    statement = (
        "honest executions send at most "
        f"{slack:g}x the analytical expected message count"
    )
    pairs = []
    for cell, agg in _cells_with_results(campaign, results):
        if not _is_honest(cell) or agg.total_messages == 0:
            continue
        predicted = predicted_messages(cell.protocol, cell.n, cell.params)
        if predicted:
            pairs.append((cell, agg, predicted))
    if not pairs:
        return _skip(
            claim, statement, "no honest cells with message stats and predictions"
        )
    details = []
    failures = []
    for cell, agg, predicted in pairs:
        ratio = agg.mean_messages / predicted
        if ratio > slack:
            failures.append(
                f"{cell.name}: {agg.mean_messages:.0f} msgs/trial is "
                f"{ratio:.2f}x the predicted {predicted:.0f} (> {slack:g}x)"
            )
        else:
            details.append(f"{cell.name}: {ratio:.2f}x of {predicted:.0f}")
    cells = tuple(cell.name for cell, _, _ in pairs)
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    return ClaimResult(claim, statement, PASS, "; ".join(details), cells)


def check_termination(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> ClaimResult:
    """Termination: every protocol finishes within the generous step bound.

    Expected-constant-round termination means delivered-message counts stay
    polynomial with a small constant.  Each delivery is one step, so where
    the analytical message prediction is available the envelope is
    ``DEFAULT_MESSAGE_SLACK`` times it; otherwise (and as a floor) the
    harness uses the same ``120 * n**2`` envelope as the per-trial safety
    invariants (:func:`repro.scenarios.invariants.default_step_bound`),
    applied to the aggregate mean.
    """
    import math

    from repro.analysis.ablation import predicted_messages
    from repro.scenarios.invariants import default_step_bound

    claim = "termination"
    statement = "protocols terminate within the analytical delivery envelope"
    pairs = _cells_with_results(campaign, results)
    if not pairs:
        return _skip(claim, statement, "no cells with results")
    details = []
    failures = []
    for cell, agg in pairs:
        bound = default_step_bound(cell.n)
        predicted = predicted_messages(cell.protocol, cell.n, cell.params)
        if predicted is not None:
            bound = max(bound, math.ceil(DEFAULT_MESSAGE_SLACK * predicted))
        if agg.mean_steps > bound:
            failures.append(
                f"{cell.name}: mean {agg.mean_steps:.0f} steps exceeds "
                f"bound {bound}"
            )
        else:
            details.append(f"{cell.name}: {agg.mean_steps:.0f}/{bound}")
    cells = tuple(cell.name for cell, _ in pairs)
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    return ClaimResult(claim, statement, PASS, "; ".join(details), cells)


def check_message_lower_bound(
    campaign: CampaignSpec, results: Mapping[str, TrialAggregate]
) -> ClaimResult:
    """Lower bound: any fault-tolerant protocol sends at least Omega(n) messages.

    The complement of the upper-envelope claim: a protocol in which every
    honest party participates must deliver at least ``n - t`` messages per
    trial (with ``t = floor((n-1)/3)``, a party that sends nothing cannot be
    distinguished from a crashed one, and fewer than ``n - t`` active parties
    cannot carry a ``t``-resilient execution).  A measured mean *below* that
    floor means the message accounting itself is broken -- results that look
    impossibly cheap are wrong, not fast.  Evaluated per honest cell with
    message statistics; deterministic, so one counterexample fails.
    """
    claim = "message_lower_bound"
    statement = (
        "honest executions deliver at least n - t messages per trial (Omega(n))"
    )
    from repro.core.config import max_faults

    pairs = [
        (cell, agg)
        for cell, agg in _cells_with_results(campaign, results)
        if _is_honest(cell) and agg.total_messages > 0
    ]
    if not pairs:
        return _skip(claim, statement, "no honest cells with message stats")
    details = []
    failures = []
    for cell, agg in pairs:
        floor = cell.n - max_faults(cell.n)
        if agg.mean_messages < floor:
            failures.append(
                f"{cell.name}: mean {agg.mean_messages:.1f} msgs/trial is "
                f"below the n-t={floor} lower bound (n={cell.n}) -- "
                f"message accounting is broken"
            )
        else:
            details.append(
                f"{cell.name}: {agg.mean_messages:.0f} >= n-t={floor}"
            )
    cells = tuple(cell.name for cell, _ in pairs)
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    return ClaimResult(claim, statement, PASS, "; ".join(details), cells)


def avss_lower_bound_claim(rows: Mapping[str, Any]) -> ClaimResult:
    """Theorem 2.2 as a claim over E6 lower-bound rows.

    ``rows`` maps candidate names to
    :class:`~repro.lowerbound.experiment.LowerBoundRow`.  The theorem says a
    candidate AVSS with Secrecy and share-phase Termination at ``n <= 4t``
    must violate ``(2/3 + eps)``-correctness; a candidate satisfying all
    three at once would *refute* the paper, so it fails this claim.  Used by
    ``examples/lower_bound_attack.py`` to gate its exit status.
    """
    claim = "avss_lower_bound"
    statement = (
        "no candidate AVSS with secrecy and termination at n <= 4t is "
        "(2/3 + eps)-correct (Theorem 2.2)"
    )
    if not rows:
        return _skip(claim, statement, "no lower-bound rows to evaluate")
    details = []
    failures = []
    for name, row in sorted(rows.items()):
        if not row.consistent_with_theorem:
            failure = row.claim2_wrong_output_rate + row.claim2_no_output_rate
            failures.append(
                f"{name}: secrecy and termination hold yet the attack "
                f"failure rate {failure:.2f} stays within the 1/3 "
                f"correctness budget -- this would refute the theorem"
            )
        else:
            if row.secrecy_holds and row.termination_rate > 0.99:
                reason = "attacks break correctness"
            elif not row.secrecy_holds:
                reason = "secrecy already fails"
            else:
                reason = "termination already fails"
            details.append(f"{name}: consistent ({reason})")
    cells = tuple(sorted(rows))
    if failures:
        return ClaimResult(claim, statement, FAIL, "; ".join(failures), cells)
    return ClaimResult(claim, statement, PASS, "; ".join(details), cells)


#: The shipped claim checks, in report order.
CLAIM_CHECKS = (
    check_coin_bias,
    check_corruption_tolerance,
    check_agreement,
    check_output_domain,
    check_message_complexity,
    check_message_lower_bound,
    check_termination,
)


def evaluate_claims(
    campaign: CampaignSpec,
    results: Mapping[str, TrialAggregate],
    message_slack: float = DEFAULT_MESSAGE_SLACK,
) -> ClaimReport:
    """Evaluate every shipped claim against a campaign's aggregates.

    ``results`` maps cell names to :class:`TrialAggregate` (e.g. a result
    store's contents); cells without results are ignored by each claim, and
    claims with no applicable cells report ``skip`` rather than vacuous
    success, so a report that passes says what it actually checked.
    """
    report = ClaimReport(campaign=campaign.name)
    for check in CLAIM_CHECKS:
        if check is check_message_complexity:
            report.results.append(check(campaign, results, message_slack))
        else:
            report.results.append(check(campaign, results))
    return report
