"""Appendix E: the FairChoice validity bound.

``FairChoice(m)`` (Algorithm 2) flips ``l = log2(N)`` common coins with bias
``eps = 1/(100 m log2 m)`` each, interprets them as a number ``r < N`` and
outputs ``r mod m``.  Appendix E shows that for any target set
``G ⊆ {0..m-1}`` with ``|G| > m/2``,

    Pr[output in G] >= (1/2 + 1/(4m) - 1/(4m^2)) * ((99/100) e^{-1/50})^{4/m} > 1/2.

This module reproduces that bound and the exact probability under ideal
(unbiased, independent) coins, for the E4 experiment table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.binomial import fair_choice_bits, fair_choice_epsilon


def paper_validity_lower_bound(m: int) -> float:
    """The closed-form lower bound from Appendix E (valid for ``m >= 3``)."""
    if m < 3:
        raise ValueError(f"the FairChoice bound is stated for m >= 3, got {m}")
    base = 0.5 + 1.0 / (4 * m) - 1.0 / (4 * m * m)
    factor = (0.99 * math.exp(-1.0 / 50.0)) ** (4.0 / m)
    return base * factor


def exact_validity_probability(m: int, target: Sequence[int]) -> float:
    """Exact ``Pr[r mod m in target]`` for ``r`` uniform over ``{0 .. 2**l - 1}``.

    This is the probability achieved with perfectly unbiased coins; the
    protocol's coins are ``eps``-biased, which the paper accounts for with the
    ``(1/2 - eps)^l`` factor reproduced in :func:`worst_case_probability`.
    """
    if m < 1:
        raise ValueError("m must be positive")
    bits = fair_choice_bits(m)
    size = 1 << bits
    target_set = {value % m for value in target}
    hits = sum(1 for r in range(size) if r % m in target_set)
    return hits / size


def worst_case_probability(m: int, target: Sequence[int]) -> float:
    """Lower bound on ``Pr[output in target]`` with ``eps``-biased coins.

    Every specific outcome ``r`` appears with probability at least
    ``(1/2 - eps)^l``; summing over the outcomes that map into the target set
    reproduces the paper's counting argument.
    """
    bits = fair_choice_bits(m)
    eps = fair_choice_epsilon(m)
    size = 1 << bits
    target_set = {value % m for value in target}
    favourable = sum(1 for r in range(size) if r % m in target_set)
    return favourable * (0.5 - eps) ** bits


@dataclass(frozen=True)
class FairnessRow:
    """One row of the E4 table: FairChoice validity for a majority subset."""

    m: int
    bits: int
    epsilon: float
    subset_size: int
    paper_bound: float
    worst_case: float
    ideal_probability: float

    @property
    def satisfies_claim(self) -> bool:
        """True when the worst-case probability clears 1/2, as Theorem 4.3 claims."""
        return self.worst_case > 0.5


def fairness_row(m: int, subset_size: int | None = None) -> FairnessRow:
    """Compute one row of the E4 table for the smallest majority subset of ``{0..m-1}``."""
    if subset_size is None:
        subset_size = m // 2 + 1
    if subset_size <= m // 2:
        raise ValueError("subset must be a strict majority")
    target = list(range(subset_size))
    return FairnessRow(
        m=m,
        bits=fair_choice_bits(m),
        epsilon=fair_choice_epsilon(m),
        subset_size=subset_size,
        paper_bound=paper_validity_lower_bound(m),
        worst_case=worst_case_probability(m, target),
        ideal_probability=exact_validity_probability(m, target),
    )


def fba_fair_validity_bound(n: int, t: int) -> float:
    """Theorem 4.5: probability that FBA outputs an honest input when inputs diverge.

    With ``|S| = m >= n - t`` agreed parties of which at most ``t`` are faulty,
    the honest indices form a majority subset of size at least ``m - t``, so the
    FairChoice validity bound applies directly.
    """
    m = n - t
    return paper_validity_lower_bound(max(3, m))
