"""Appendix D: the binomial concentration argument behind the CoinFlip bias.

The CoinFlip protocol (Algorithm 1) flips ``k = 4 * ceil((e / (eps*pi))^2 * n^4)``
SVSS-backed coins and takes the majority.  At most ``n^2`` of the flips can
"fail" (be biased or disagree), because every failure coincides with a fresh
shunning event and fewer than ``n^2`` shunning events can occur.  Appendix D
shows that for the remaining genuinely fair flips,

    Pr[X > k/2 + n^2] >= 1/2 - eps        where X ~ Bin(k, 1/2),

so each output value is produced with probability at least ``1/2 - eps``
regardless of which ``n^2`` flips the adversary spoils.  This module exposes
the parameter formula, the paper's analytic bound, exact binomial tail
computations and a Monte-Carlo check -- experiment E3 compares all three.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple


def coinflip_iterations(epsilon: float, n: int) -> int:
    """The paper's iteration count ``k = 4 * ceil((e/(eps*pi))^2 * n^4)``.

    Args:
        epsilon: target bias, in (0, 1/2).
        n: number of parties.

    Raises:
        ValueError: when ``epsilon`` is outside (0, 1/2) or ``n < 1``.
    """
    if not 0 < epsilon < 0.5:
        raise ValueError(f"epsilon must lie in (0, 1/2), got {epsilon}")
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    c = math.e / (epsilon * math.pi)
    return 4 * math.ceil(c * c * n**4)


def fair_choice_epsilon(m: int) -> float:
    """The per-coin bias used by FairChoice: ``1 / (100 m log2 m)`` (Algorithm 2)."""
    if m < 2:
        raise ValueError(f"FairChoice epsilon is defined for m >= 2, got {m}")
    return 1.0 / (100.0 * m * math.log2(m))


def fair_choice_bits(m: int) -> int:
    """Number of coin flips ``l`` used by FairChoice: smallest ``l`` with ``2**l >= 2*m*m``."""
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")
    l = 1
    while (1 << l) < 2 * m * m:
        l += 1
    return l


def central_band_bound(k: int, n: int) -> float:
    """Appendix D's upper bound on ``Pr[mu - n^2 <= X <= mu + n^2]`` for ``X ~ Bin(k, 1/2)``.

    The paper bounds the central band by ``(2n^2 + 1) * (e / (2*pi)) * sqrt(2/mu)``
    with ``mu = k/2``.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    mu = k / 2.0
    return (2 * n**2 + 1) * (math.e / (2 * math.pi)) * math.sqrt(2.0 / mu)


def paper_tail_lower_bound(k: int, n: int) -> float:
    """The paper's lower bound on ``Pr[X > k/2 + n^2]``: ``(1 - band)/2``."""
    return 0.5 * (1.0 - central_band_bound(k, n))


def exact_tail_probability(k: int, threshold: int) -> float:
    """Exact ``Pr[X > threshold]`` for ``X ~ Bin(k, 1/2)``.

    Uses an iterative pmf computation in log-space-free floating point, which
    is accurate for the ``k`` values used in simulations (up to ~10^6).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if threshold >= k:
        return 0.0
    if threshold < 0:
        return 1.0
    # pmf(0) = 0.5**k; pmf(i+1) = pmf(i) * (k - i) / (i + 1)
    log_pmf = -k * math.log(2.0)
    total = 0.0
    for i in range(k + 1):
        if i > threshold:
            total += math.exp(log_pmf)
        log_pmf += math.log(k - i) - math.log(i + 1) if i < k else 0.0
    return min(1.0, total)


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Returns ``(lower, upper)`` bounds on the true success probability given
    ``successes`` out of ``trials`` observations, at normal quantile ``z``
    (1.96 for 95%).  Unlike the normal approximation it behaves sensibly at
    the boundaries (0 or all successes with few trials), which is exactly
    the regime quick ablation runs live in; the claims harness uses it so a
    paper claim only *fails* when the data statistically refutes it, never
    because a handful of seeds happened to land on one side.

    Raises:
        ValueError: on ``trials < 1``, ``successes`` outside ``0..trials``
            or non-positive ``z``.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must lie in 0..{trials}, got {successes}")
    if z <= 0:
        raise ValueError(f"z must be positive, got {z}")
    p_hat = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = p_hat + z2 / (2.0 * trials)
    margin = z * math.sqrt(
        p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials)
    )
    lower = (center - margin) / denominator
    upper = (center + margin) / denominator
    return max(0.0, lower), min(1.0, upper)


def monte_carlo_tail(
    k: int, threshold: int, samples: int, rng: Optional[random.Random] = None
) -> float:
    """Monte-Carlo estimate of ``Pr[X > threshold]`` for ``X ~ Bin(k, 1/2)``."""
    rng = rng or random.Random(0)
    hits = 0
    for _ in range(samples):
        x = sum(rng.getrandbits(1) for _ in range(k))
        if x > threshold:
            hits += 1
    return hits / samples


@dataclass(frozen=True)
class BiasBoundRow:
    """One row of the Appendix-D reproduction table (experiment E3)."""

    n: int
    epsilon: float
    k: int
    paper_bound: float
    exact_probability: float

    @property
    def satisfies_claim(self) -> bool:
        """True when the exact tail meets the claimed ``1/2 - eps``."""
        return self.exact_probability >= 0.5 - self.epsilon - 1e-12


def bias_bound_row(n: int, epsilon: float, k_override: Optional[int] = None) -> BiasBoundRow:
    """Compute one row of the E3 table.

    ``k_override`` replaces the paper's (enormous) ``k`` with a simulation-scale
    value; the exact tail is then computed for that ``k`` so the table shows
    how the guarantee degrades when the iteration count is reduced.
    """
    k = k_override if k_override is not None else coinflip_iterations(epsilon, n)
    threshold = k // 2 + n * n
    exact = exact_tail_probability(k, threshold)
    return BiasBoundRow(
        n=n,
        epsilon=epsilon,
        k=k,
        paper_bound=paper_tail_lower_bound(k, n),
        exact_probability=exact,
    )


def minimum_iterations_for_bias(n: int, epsilon: float, limit: int = 1 << 22) -> int:
    """Smallest ``k`` for which the *exact* binomial tail already meets ``1/2 - eps``.

    The paper's formula is a sufficient condition derived with loose Stirling
    constants; this function shows how conservative it is (ablation for E3).
    """
    k = max(2, 2 * n * n)
    while k <= limit:
        if exact_tail_probability(k, k // 2 + n * n) >= 0.5 - epsilon:
            return k
        k *= 2
    raise ValueError(f"no k <= {limit} achieves bias {epsilon} for n={n}")
