"""Message/round complexity accounting (experiment E8).

The paper argues its strong coin needs on the order of ``n^4`` SVSS-backed
flips, each of which costs ``O(n^2)`` messages, plus ``n`` BA instances per
CommonSubset.  This module provides closed-form per-protocol message-count
predictions (for honest, failure-free executions) that the E8 benchmark
compares against measured counts from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.binomial import coinflip_iterations, fair_choice_bits


def acast_messages(n: int) -> int:
    """A-Cast message count with an honest sender: VALUE + ECHO + READY."""
    return n + 2 * n * n


def svss_share_messages(n: int) -> int:
    """SVSS-Share message count with an honest dealer: rows, points, readies."""
    return n + n * (n - 1) + n * n


def svss_rec_messages(n: int) -> int:
    """SVSS-Rec message count: every party broadcasts its row."""
    return n * n


def aba_messages_per_round(n: int) -> int:
    """Binary BA messages per round: BVAL + AUX broadcasts."""
    return 2 * n * n


def aba_expected_messages(n: int, expected_rounds: float = 3.0) -> float:
    """Expected BA message count, including the DONE termination broadcasts."""
    return expected_rounds * aba_messages_per_round(n) + n * n


def common_subset_expected_messages(n: int, expected_rounds: float = 3.0) -> float:
    """CommonSubset runs one BA per index."""
    return n * aba_expected_messages(n, expected_rounds)


def coinflip_expected_messages(
    n: int, rounds: int, expected_ba_rounds: float = 3.0
) -> float:
    """Expected messages for CoinFlip with ``rounds`` iterations.

    Each iteration: ``n`` SVSS-Share instances, one CommonSubset and at least
    ``n - t`` SVSS-Rec instances; plus one final BA.
    """
    t = (n - 1) // 3
    per_iteration = (
        n * svss_share_messages(n)
        + common_subset_expected_messages(n, expected_ba_rounds)
        + (n - t) * svss_rec_messages(n)
    )
    return rounds * per_iteration + aba_expected_messages(n, expected_ba_rounds)


def coinflip_theoretical_messages(n: int, epsilon: float) -> float:
    """Message count at the paper's full iteration count (reported, not simulated)."""
    return coinflip_expected_messages(n, coinflip_iterations(epsilon, n))


def fair_choice_expected_messages(
    n: int, m: int, coinflip_rounds: int, expected_ba_rounds: float = 3.0
) -> float:
    """FairChoice runs ``l`` CoinFlip instances."""
    return fair_choice_bits(m) * coinflip_expected_messages(
        n, coinflip_rounds, expected_ba_rounds
    )


def fba_expected_messages(
    n: int, coinflip_rounds: int, expected_ba_rounds: float = 3.0
) -> float:
    """FBA: ``n`` A-Casts, one CommonSubset and (at worst) one FairChoice."""
    t = (n - 1) // 3
    m = n - t
    return (
        n * acast_messages(n)
        + common_subset_expected_messages(n, expected_ba_rounds)
        + fair_choice_expected_messages(n, m, coinflip_rounds, expected_ba_rounds)
    )


@dataclass(frozen=True)
class ComplexityRow:
    """One row of the E8 table: predicted vs measured message counts."""

    protocol: str
    n: int
    predicted: float
    measured: float

    @property
    def ratio(self) -> float:
        """measured / predicted (1.0 means the prediction was exact)."""
        if self.predicted == 0:
            return float("inf")
        return self.measured / self.predicted


def predictions_for(n: int, coinflip_rounds: int) -> Dict[str, float]:
    """Closed-form predictions for every protocol at a given system size."""
    return {
        "acast": float(acast_messages(n)),
        "svss_share": float(svss_share_messages(n)),
        "svss_rec": float(svss_rec_messages(n)),
        "aba": aba_expected_messages(n),
        "common_subset": common_subset_expected_messages(n),
        "coinflip": coinflip_expected_messages(n, coinflip_rounds),
        "fba": fba_expected_messages(n, coinflip_rounds),
    }
