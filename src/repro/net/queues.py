"""Indexed delivery queues: the fast path of the network delivery loop.

Historically the network kept one flat ``pending`` list; every step called
``scheduler.choose(pending)`` (a full Python-level scan for FIFO/targeted
policies) and then ``pending.pop(choice)``.  That makes one delivery cost
O(pending) and a whole run O(messages * pending).

A :class:`DeliveryQueue` lets a scheduler expose its policy as an *indexed*
structure instead:

* :class:`FifoQueue` -- a deque; sequence numbers are assigned in send order,
  so FIFO delivery is ``popleft`` in O(1).
* :class:`KeyedQueue` -- a binary heap over ``(priority(message), seq)``; the
  targeted policy becomes an O(log m) pop (the priority function must be a
  pure function of the message -- it is evaluated once, at submit time).
* :class:`SendOrderRandomQueue` -- a Fenwick tree over send slots supporting
  "deliver the r-th oldest in-flight message" in O(log m).
* :class:`ScanQueue` -- the legacy full-scan path, used by any scheduler
  without an indexed strategy (predicate schedulers, custom subclasses).

Every indexed queue reproduces the legacy delivery order *byte-identically*
for the same seed: FIFO because pending is always scanned in send order,
keyed because the old scan minimised the same ``(priority, seq)`` tuple, and
random because ``list.pop(i)`` preserves send order, so "index i into the
pending list" always meant "the i-th oldest in-flight message" -- exactly the
rank query the Fenwick tree answers.  ``tests/net/test_queues.py`` locks this
in by diffing full delivery traces against :func:`force_scan` runs.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Sequence

from repro.net.message import Message


class DeliveryQueue(ABC):
    """Holds the in-flight messages and yields them in scheduler order."""

    @abstractmethod
    def push(self, message: Message) -> None:
        """Add a newly submitted message."""

    def push_many(self, messages: Sequence[Message]) -> None:
        """Add a batch of messages submitted back-to-back (send order).

        Equivalent to pushing each message in sequence; queues with batched
        structures override this to amortise their per-push bookkeeping.
        """
        for message in messages:
            self.push(message)

    @abstractmethod
    def pop(self, rng: random.Random, step: int) -> Message:
        """Remove and return the next message to deliver (queue is non-empty)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of in-flight messages."""

    @abstractmethod
    def snapshot(self) -> List[Message]:
        """The in-flight messages in send order (inspection/tests only)."""


class ScanQueue(DeliveryQueue):
    """The legacy path: a flat list scanned by ``scheduler.choose`` per step.

    Kept both as the fallback for schedulers without an indexed strategy and
    as the reference implementation the equivalence tests compare against.
    """

    def __init__(self, scheduler: Any) -> None:
        self.scheduler = scheduler
        self._pending: List[Message] = []

    def push(self, message: Message) -> None:
        self._pending.append(message)

    def pop(self, rng: random.Random, step: int) -> Message:
        pending = self._pending
        choice = self.scheduler.validate(
            self.scheduler.choose(pending, rng, step), pending
        )
        return pending.pop(choice)

    def __len__(self) -> int:
        return len(self._pending)

    def snapshot(self) -> List[Message]:
        return list(self._pending)


class FifoQueue(DeliveryQueue):
    """O(1) FIFO delivery: sequence numbers are assigned in submit order."""

    def __init__(self) -> None:
        self._queue: Deque[Message] = deque()

    def push(self, message: Message) -> None:
        self._queue.append(message)

    def pop(self, rng: random.Random, step: int) -> Message:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def snapshot(self) -> List[Message]:
        return list(self._queue)


class KeyedQueue(DeliveryQueue):
    """O(log m) delivery of the message minimising ``(key(message), seq)``.

    The key is evaluated once per message at submit time, so it must be a
    pure function of the message (every in-tree targeted policy is).  With a
    pure key this is byte-identical to the legacy full scan, which recomputed
    the same minimum on every step.
    """

    def __init__(self, key: Callable[[Message], Any]) -> None:
        self.key = key
        self._heap: List[Any] = []

    def push(self, message: Message) -> None:
        heapq.heappush(self._heap, (self.key(message), message.seq, message))

    def pop(self, rng: random.Random, step: int) -> Message:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def snapshot(self) -> List[Message]:
        return [entry[2] for entry in sorted(self._heap, key=lambda e: e[1])]


try:  # Python >= 3.10: C-speed popcount.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - older interpreters
    def _popcount(value: int) -> int:
        return bin(value).count("1")


#: Popcounts of all 16-bit values (bytes: C-speed indexing, 64 KiB).
_POP16 = bytearray(1 << 16)
for _value in range(1, 1 << 16):
    _POP16[_value] = _POP16[_value >> 1] + (_value & 1)
_POP16 = bytes(_POP16)

#: Bit position of the k-th (1-based) set bit of each byte, flattened as
#: ``_SEL8[byte * 8 + (k - 1)]``; unused entries stay 0 and are never read.
_SEL8 = bytearray(256 * 8)
for _value in range(256):
    _rank = 0
    for _bit in range(8):
        if _value >> _bit & 1:
            _SEL8[_value * 8 + _rank] = _bit
            _rank += 1
_SEL8 = bytes(_SEL8)
del _value, _rank, _bit

class FanoutEntry:
    """One unmaterialised submit-time fan-out (broadcast or per-receiver values).

    The SVSS-heavy protocols send almost exclusively in receiver-ordered
    loops: a broadcast of one shared payload, or a fan-out of per-receiver
    values (ROW/POINT).  In group mode the network queues ONE entry for the
    whole loop; the per-receiver :class:`Message` objects -- by far the most
    allocated objects of a trial -- are only built when (and if) a copy is
    actually delivered.  Undelivered copies at the end of a run are never
    allocated at all, and the queue's working set shrinks from one object
    per in-flight message to one per fan-out.

    ``materialize(receiver)`` reproduces the exact Message the eager submit
    loop would have created: same field values and the same sequence numbers
    (receiver order, skipping ``skip``).  ``values`` must not be mutated
    after submission.
    """

    __slots__ = ("sender", "session", "kind", "payload", "values", "base_seq", "skip", "root")

    def __init__(
        self,
        sender: int,
        session: Any,
        kind: Any,
        payload: Optional[tuple],
        values: Optional[Sequence[Any]],
        base_seq: int,
        skip: Optional[int],
        root: Any,
    ) -> None:
        self.sender = sender
        self.session = session
        self.kind = kind
        self.payload = payload
        self.values = values
        self.base_seq = base_seq
        self.skip = skip
        self.root = root

    def materialize(self, receiver: int) -> Message:
        """Build the delivered copy for ``receiver`` (each bit pops at most once)."""
        message = Message.__new__(Message)
        message.sender = self.sender
        message.receiver = receiver
        message.session = self.session
        values = self.values
        skip = self.skip
        if values is None:
            message.payload = self.payload
            message.seq = self.base_seq + receiver - (
                1 if skip is not None and receiver > skip else 0
            )
        else:
            message.payload = (self.kind, values[receiver])
            message.seq = self.base_seq + receiver - (
                1 if skip is not None and receiver > skip else 0
            )
        message.kind = self.kind
        message.root = self.root
        return message


class SendOrderRandomQueue(DeliveryQueue):
    """Rank-indexed uniform-random delivery, byte-identical to the legacy path.

    The legacy loop drew ``r = rng.randrange(len(pending))`` and popped
    ``pending[r]``; since ``list.pop`` preserves relative order, that is "the
    r-th oldest in-flight message".  A swap-pop would be O(1) but delivers a
    *different* (if equally distributed) sequence, breaking seed-for-seed
    reproducibility of every recorded experiment.  So this queue answers the
    same rank query with a word-indexed structure tuned for the 100k+
    in-flight depths of n=64 coin trials:

    * **one word per fan-out** -- send order is partitioned into 64-bit
      words, each holding either one :class:`FanoutEntry` (a whole broadcast
      or ROW/POINT loop, queued in group mode as a single object with a
      liveness bitmask) or a packed run of individually pushed messages.
      The delivered copy of a fan-out is materialised only when popped.
    * **Fenwick over words** -- a counting tree over per-word live counts
      (64x fewer nodes than one per message) finds the target word in
      ``O(log(m/64))``; byte-table select (``_POP16``/``_SEL8``) finds the
      bit inside the word's mask.
    * **find-and-decrement** -- the descend updates the counts of every node
      whose range contains the popped message as it passes, which is exactly
      the point-update path, so a pop walks the tree once, not twice; the
      rank draw itself is the inlined ``Random._randbelow`` loop (identical
      getrandbits stream).

    Every representation detail is invisible in the delivery order: a pop
    consumes exactly one ``randrange``-equivalent draw and delivers the r-th
    oldest in-flight message with exactly the fields the eager submit path
    would have given it.  Memory is one entry per fan-out plus one mask per
    word -- O(sends/64) -- with emptied words dropping their entry (and its
    payloads) immediately.
    """

    #: Network checks this before queueing FanoutEntry groups.
    supports_groups = True

    #: In-flight count at which the word index takes over from the flat
    #: list.  Below it, ``list.pop(rank)`` is a C memmove that beats any
    #: pure-Python structure (typical n<=16 trials never leave list mode);
    #: above it the memmove cost crosses the tree's ~log(m/64) descend.
    _LIST_THRESHOLD = 8192

    def __init__(self) -> None:
        self._count = 0
        #: Flat list of materialised messages (list mode); None in tree mode.
        self._flat: Optional[List[Message]] = []
        #: Per word: a list of packed single messages, a FanoutEntry, or
        #: None once every copy in the word has been delivered.
        self._entries: List[Any] = []
        #: Per-word liveness bitmask (bit b = copy for receiver/slot b live).
        self._words: List[int] = []
        #: Fenwick tree over live counts per word (1-based).
        self._tree: List[int] = [0] * 17
        self._capacity = 16
        #: The trailing packed-singles word still accepting pushes, if any.
        self._open: Optional[List[Optional[Message]]] = None
        #: Fully-delivered words not yet dropped by compaction.
        self._dead = 0
        # Cached rank drawer state for the (single) rng this queue is popped
        # with.  Only a plain random.Random is guaranteed to draw via
        # getrandbits (subclasses overriding random() switch CPython to the
        # getrandbits-free implementation); anything else keeps the generic
        # _randbelow path so the consumed stream never changes.
        self._getrandbits: Optional[Callable[[int], int]] = None
        self._randbelow: Optional[Callable[[int], int]] = None
        self._randbelow_rng: Optional[random.Random] = None

    def __len__(self) -> int:
        return self._count

    # -- index maintenance ----------------------------------------------
    def _retree(self, nwords: int) -> None:
        """Rebuild the Fenwick counts from the word masks (no entry scan)."""
        capacity = 16
        while capacity < nwords + 16:
            capacity *= 2
        if capacity.bit_length() & 1 == 0:
            # Keep log2(capacity) even: the pop descend is unrolled two
            # levels per iteration and must finish exactly at bit == 1.
            capacity *= 2
        words = self._words
        tree = [0] * (capacity + 1)
        for w, mask in enumerate(words):
            tree[w + 1] = _popcount(mask)
        # O(capacity) Fenwick construction from point values.
        for index in range(1, capacity + 1):
            parent = index + (index & -index)
            if parent <= capacity:
                tree[parent] += tree[index]
        self._tree = tree
        self._capacity = capacity

    def _compact(self) -> None:
        """Drop fully-delivered words, keeping live words in send order.

        Word masks and in-word bit positions are preserved (they encode the
        receiver mapping of fan-out entries), so compaction only removes
        whole dead words; under uniform random delivery most words die from
        old age, which keeps the tree spanning O(live) words.
        """
        entries = self._entries
        words = self._words
        new_entries: List[Any] = []
        new_words: List[int] = []
        append_e = new_entries.append
        append_w = new_words.append
        for position, mask in enumerate(words):
            if mask:
                append_e(entries[position])
                append_w(mask)
        self._entries = new_entries
        self._words = new_words
        self._open = None
        self._dead = 0
        if self._count <= self._LIST_THRESHOLD // 4:
            # Small again: the C-speed flat list wins at this depth.
            self._enter_list()
            return
        self._retree(len(new_words))

    def _enter_tree(self) -> None:
        """Switch list -> word index: pack the flat list into singles words."""
        flat = self._flat
        assert flat is not None
        self._flat = None
        entries = self._entries = []
        words = self._words = []
        self._open = None
        self._dead = 0
        for start in range(0, len(flat), 64):
            chunk = flat[start : start + 64]
            entries.append(chunk)
            words.append((1 << len(chunk)) - 1)
        if entries and len(entries[-1]) < 64:
            self._open = entries[-1]
        self._retree(len(words))

    def _enter_list(self) -> None:
        """Switch word index -> list: materialise every live copy in order."""
        flat: List[Message] = []
        append = flat.append
        for position, mask in enumerate(self._words):
            if not mask:
                continue
            entry = self._entries[position]
            is_packed = type(entry) is list
            bitpos = 0
            while mask:
                if mask & 1:
                    append(entry[bitpos] if is_packed else entry.materialize(bitpos))
                mask >>= 1
                bitpos += 1
        self._flat = flat
        self._entries = []
        self._words = []
        self._tree = [0] * 17
        self._capacity = 16
        self._open = None
        self._dead = 0

    # -- queue protocol --------------------------------------------------
    def push(self, message: Message) -> None:
        self._count += 1
        flat = self._flat
        if flat is not None:
            flat.append(message)
            if self._count > self._LIST_THRESHOLD:
                self._enter_tree()
            return
        open_word = self._open
        entries = self._entries
        if open_word is not None and len(open_word) < 64:
            bit = len(open_word)
            open_word.append(message)
            w = len(entries) - 1
            self._words[w] |= 1 << bit
        else:
            w = len(entries)
            if w >= self._capacity:
                self._retree(w + 1)
            self._open = [message]
            entries.append(self._open)
            self._words.append(1)
        tree = self._tree
        capacity = self._capacity
        position = w + 1
        while position <= capacity:
            tree[position] += 1
            position += position & -position

    def push_many(self, messages: Sequence[Message]) -> None:
        flat = self._flat
        if flat is not None:
            flat.extend(messages)
            self._count += len(messages)
            if self._count > self._LIST_THRESHOLD:
                self._enter_tree()
            return
        for message in messages:
            self.push(message)

    def push_group(self, entry: FanoutEntry, mask: int, size: int) -> None:
        """Queue a whole fan-out as one word (group mode).

        ``mask`` holds one live bit per receiver (the ``skip`` bit already
        cleared); ``size`` is its popcount.  Rank semantics are identical to
        pushing the ``size`` materialised copies in receiver order.
        """
        self._count += size
        flat = self._flat
        if flat is not None:
            # List mode: materialise eagerly (cheap at these depths).
            append = flat.append
            bitpos = 0
            while mask:
                if mask & 1:
                    append(entry.materialize(bitpos))
                mask >>= 1
                bitpos += 1
            if self._count > self._LIST_THRESHOLD:
                self._enter_tree()
            return
        entries = self._entries
        w = len(entries)
        if w >= self._capacity:
            self._retree(w + 1)
        self._open = None
        entries.append(entry)
        self._words.append(mask)
        tree = self._tree
        capacity = self._capacity
        position = w + 1
        while position <= capacity:
            tree[position] += size
            position += position & -position

    def pop_entry(self, rng: random.Random):
        """Remove the next message and return it unmaterialised.

        Returns ``(entry, bitpos)``: for a fan-out word, the
        :class:`FanoutEntry` and the receiver bit (the caller materialises
        only if it needs a full :class:`Message`); for a packed-singles word,
        the stored Message itself and ``-1``.  This is the network fast
        loop's pop -- the generic :meth:`pop` wraps it.
        """
        count = self._count
        if not count:
            # Explicit: _randbelow(0) would spin forever (getrandbits(0) is 0).
            raise IndexError("pop from an empty delivery queue")
        if rng is not self._randbelow_rng:
            self._randbelow_rng = rng
            self._getrandbits = (
                rng.getrandbits if type(rng) is random.Random else None
            )
            self._randbelow = getattr(rng, "_randbelow", rng.randrange)
        getrandbits = self._getrandbits
        if getrandbits is not None:
            # Inlined ``Random._randbelow_with_getrandbits``: identical draw
            # sequence (same getrandbits calls), no wrapper frames.
            k = count.bit_length()
            rank = getrandbits(k)
            while rank >= count:
                rank = getrandbits(k)
        else:
            rank = self._randbelow(count)
        self._count = count - 1
        flat = self._flat
        if flat is not None:
            return flat.pop(rank), -1
        # Find-and-decrement descend: locate the word holding the (rank+1)-th
        # live copy, decrementing every node whose range contains it.  The
        # root node covers the whole range, so its branch is unconditional,
        # and every later candidate satisfies position + bit <= capacity
        # (position is a sum of distinct powers of two above ``bit``), so the
        # descend needs no bounds checks; it is unrolled two levels per
        # iteration (capacity is a power of two >= 16, so the level count is
        # even after the root).
        tree = self._tree
        capacity = self._capacity
        tree[capacity] -= 1
        position = 0
        remaining = rank + 1
        bit = capacity >> 1
        while bit:
            candidate = position + bit
            value = tree[candidate]
            if value < remaining:
                position = candidate
                remaining -= value
            else:
                tree[candidate] = value - 1
            bit >>= 1
            candidate = position + bit
            value = tree[candidate]
            if value < remaining:
                position = candidate
                remaining -= value
            else:
                tree[candidate] = value - 1
            bit >>= 1
        # Select the `remaining`-th (1-based) set bit of the word's mask via
        # 16-bit popcount and 8-bit select tables.
        words = self._words
        mask = words[position]
        k = remaining
        base = 0
        chunk_src = mask
        count16 = _POP16[chunk_src & 0xFFFF]
        while k > count16:
            k -= count16
            chunk_src >>= 16
            base += 16
            count16 = _POP16[chunk_src & 0xFFFF]
        chunk = chunk_src & 0xFFFF
        count8 = _POP16[chunk & 0xFF]
        if k > count8:
            bitpos = base + 8 + _SEL8[((chunk >> 8) & 0xFF) * 8 + (k - count8 - 1)]
        else:
            bitpos = base + _SEL8[(chunk & 0xFF) * 8 + (k - 1)]
        words[position] = new_mask = mask ^ (1 << bitpos)
        entries = self._entries
        entry = entries[position]
        if type(entry) is list:
            message = entry[bitpos]
            entry[bitpos] = None
            if not new_mask:
                if entry is self._open:
                    self._open = None
                entries[position] = None
                self._dead = dead = self._dead + 1
                if dead > 64 and dead * 2 > len(entries):
                    self._compact()
            return message, -1
        if not new_mask:
            # Word exhausted: drop the entry (frees its payloads) now.
            entries[position] = None
            self._dead = dead = self._dead + 1
            if dead > 64 and dead * 2 > len(entries):
                self._compact()
        return entry, bitpos

    def pop(self, rng: random.Random, step: int) -> Message:
        entry, bitpos = self.pop_entry(rng)
        if bitpos < 0:
            return entry
        return entry.materialize(bitpos)

    def snapshot(self) -> List[Message]:
        if self._flat is not None:
            return list(self._flat)
        out: List[Message] = []
        for position, mask in enumerate(self._words):
            if not mask:
                continue
            entry = self._entries[position]
            is_packed = type(entry) is list
            bitpos = 0
            while mask:
                if mask & 1:
                    out.append(
                        entry[bitpos] if is_packed else entry.materialize(bitpos)
                    )
                mask >>= 1
                bitpos += 1
        return out


class TwoClassRandomQueue(DeliveryQueue):
    """Rank-indexed delivery for delay/partition policies over a random base.

    The scan implementation of :class:`~repro.net.scheduler.DelayScheduler`
    (and ``PartitionScheduler``) rebuilds the *preferred* sub-list -- the
    pending messages the predicate does not delay -- on every step, an O(m)
    pass that dominates exactly the adversarial-flood runs the policy is for.
    This queue keeps every in-flight message in a send-order slot array with
    **two** Fenwick trees over it: one counting all live slots, one counting
    live *preferred* slots.  The predicate is evaluated once per message at
    submit time (it must be a pure function of the message; every in-tree
    policy is), after which a pop is:

    * while the policy is active and preferred messages exist -- draw
      ``rank = randbelow(#preferred)`` and Fenwick-search the preferred tree;
    * otherwise (nothing preferred, or past ``expires_at``) -- draw a rank
      over *all* in-flight messages and search the full tree.

    Both branches consume exactly one ``randrange``-equivalent draw over
    exactly the population the legacy scan drew from, and slots are kept in
    send order, so delivery is byte-identical to the scan path per seed
    (``tests/net/test_queues.py`` diffs full traces).  Pops are O(log m)
    where the scan was O(m) -- past the flood crossover this is the
    difference between seconds and minutes per trial.

    Tombstones are compacted once they outnumber live messages, keeping
    memory O(in-flight).
    """

    def __init__(
        self, prefer: Callable[[Message], bool], expires_at: Optional[int] = None
    ) -> None:
        self.prefer = prefer
        self.expires_at = expires_at
        self._count = 0
        self._preferred_count = 0
        self._slots: List[Optional[Message]] = []
        #: Parallel flags: whether the (live) message in a slot is preferred.
        self._flags: List[bool] = []
        self._tree_all: List[int] = [0] * 17
        self._tree_pref: List[int] = [0] * 17
        self._capacity = 16
        self._randbelow: Optional[Callable[[int], int]] = None
        self._randbelow_rng: Optional[random.Random] = None

    def __len__(self) -> int:
        return self._count

    # -- Fenwick plumbing -------------------------------------------------
    def _rebuild(self, slots: List[Optional[Message]], flags: List[bool]) -> None:
        capacity = 16
        while capacity <= len(slots):
            capacity *= 2
        tree_all = [0] * (capacity + 1)
        tree_pref = [0] * (capacity + 1)
        for index, message in enumerate(slots):
            if message is None:
                continue
            preferred = flags[index]
            position = index + 1
            while position <= capacity:
                tree_all[position] += 1
                if preferred:
                    tree_pref[position] += 1
                position += position & -position
        self._slots = slots
        self._flags = flags
        self._tree_all = tree_all
        self._tree_pref = tree_pref
        self._capacity = capacity

    def _compact(self) -> None:
        alive: List[Optional[Message]] = []
        alive_flags: List[bool] = []
        for index, message in enumerate(self._slots):
            if message is not None:
                alive.append(message)
                alive_flags.append(self._flags[index])
        self._rebuild(alive, alive_flags)

    def _search(self, tree: List[int], rank: int) -> int:
        """Smallest slot index whose prefix count in ``tree`` is ``rank + 1``."""
        position = 0
        remaining = rank + 1
        bit = 1 << (self._capacity.bit_length() - 1)
        while bit:
            candidate = position + bit
            if candidate <= self._capacity and tree[candidate] < remaining:
                position = candidate
                remaining -= tree[candidate]
            bit >>= 1
        return position

    # -- queue protocol ---------------------------------------------------
    def push(self, message: Message) -> None:
        index = len(self._slots)
        if index >= self._capacity:
            self._rebuild(self._slots, self._flags)
        preferred = self.prefer(message)
        self._slots.append(message)
        self._flags.append(preferred)
        self._count += 1
        if preferred:
            self._preferred_count += 1
        tree_all = self._tree_all
        tree_pref = self._tree_pref
        capacity = self._capacity
        position = index + 1
        while position <= capacity:
            tree_all[position] += 1
            if preferred:
                tree_pref[position] += 1
            position += position & -position

    def pop(self, rng: random.Random, step: int) -> Message:
        if not self._count:
            # Explicit: _randbelow(0) would spin forever (getrandbits(0) is 0).
            raise IndexError("pop from an empty delivery queue")
        if rng is not self._randbelow_rng:
            self._randbelow_rng = rng
            self._randbelow = getattr(rng, "_randbelow", rng.randrange)
        active = self.expires_at is None or step < self.expires_at
        if active and self._preferred_count:
            rank = self._randbelow(self._preferred_count)
            position = self._search(self._tree_pref, rank)
        else:
            rank = self._randbelow(self._count)
            position = self._search(self._tree_all, rank)
        message = self._slots[position]
        assert message is not None
        preferred = self._flags[position]
        self._slots[position] = None
        self._count -= 1
        if preferred:
            self._preferred_count -= 1
        tree_all = self._tree_all
        tree_pref = self._tree_pref
        capacity = self._capacity
        position += 1
        while position <= capacity:
            tree_all[position] -= 1
            if preferred:
                tree_pref[position] -= 1
            position += position & -position
        if len(self._slots) > 2 * self._count:
            self._compact()
        return message

    def snapshot(self) -> List[Message]:
        return [m for m in self._slots if m is not None]
