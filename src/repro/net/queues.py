"""Indexed delivery queues: the fast path of the network delivery loop.

Historically the network kept one flat ``pending`` list; every step called
``scheduler.choose(pending)`` (a full Python-level scan for FIFO/targeted
policies) and then ``pending.pop(choice)``.  That makes one delivery cost
O(pending) and a whole run O(messages * pending).

A :class:`DeliveryQueue` lets a scheduler expose its policy as an *indexed*
structure instead:

* :class:`FifoQueue` -- a deque; sequence numbers are assigned in send order,
  so FIFO delivery is ``popleft`` in O(1).
* :class:`KeyedQueue` -- a binary heap over ``(priority(message), seq)``; the
  targeted policy becomes an O(log m) pop (the priority function must be a
  pure function of the message -- it is evaluated once, at submit time).
* :class:`SendOrderRandomQueue` -- a Fenwick tree over send slots supporting
  "deliver the r-th oldest in-flight message" in O(log m).
* :class:`ScanQueue` -- the legacy full-scan path, used by any scheduler
  without an indexed strategy (predicate schedulers, custom subclasses).

Every indexed queue reproduces the legacy delivery order *byte-identically*
for the same seed: FIFO because pending is always scanned in send order,
keyed because the old scan minimised the same ``(priority, seq)`` tuple, and
random because ``list.pop(i)`` preserves send order, so "index i into the
pending list" always meant "the i-th oldest in-flight message" -- exactly the
rank query the Fenwick tree answers.  ``tests/net/test_queues.py`` locks this
in by diffing full delivery traces against :func:`force_scan` runs.
"""

from __future__ import annotations

import heapq
import random
from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.net.message import Message


class DeliveryQueue(ABC):
    """Holds the in-flight messages and yields them in scheduler order."""

    @abstractmethod
    def push(self, message: Message) -> None:
        """Add a newly submitted message."""

    @abstractmethod
    def pop(self, rng: random.Random, step: int) -> Message:
        """Remove and return the next message to deliver (queue is non-empty)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of in-flight messages."""

    @abstractmethod
    def snapshot(self) -> List[Message]:
        """The in-flight messages in send order (inspection/tests only)."""


class ScanQueue(DeliveryQueue):
    """The legacy path: a flat list scanned by ``scheduler.choose`` per step.

    Kept both as the fallback for schedulers without an indexed strategy and
    as the reference implementation the equivalence tests compare against.
    """

    def __init__(self, scheduler: Any) -> None:
        self.scheduler = scheduler
        self._pending: List[Message] = []

    def push(self, message: Message) -> None:
        self._pending.append(message)

    def pop(self, rng: random.Random, step: int) -> Message:
        pending = self._pending
        choice = self.scheduler.validate(
            self.scheduler.choose(pending, rng, step), pending
        )
        return pending.pop(choice)

    def __len__(self) -> int:
        return len(self._pending)

    def snapshot(self) -> List[Message]:
        return list(self._pending)


class FifoQueue(DeliveryQueue):
    """O(1) FIFO delivery: sequence numbers are assigned in submit order."""

    def __init__(self) -> None:
        self._queue: Deque[Message] = deque()

    def push(self, message: Message) -> None:
        self._queue.append(message)

    def pop(self, rng: random.Random, step: int) -> Message:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def snapshot(self) -> List[Message]:
        return list(self._queue)


class KeyedQueue(DeliveryQueue):
    """O(log m) delivery of the message minimising ``(key(message), seq)``.

    The key is evaluated once per message at submit time, so it must be a
    pure function of the message (every in-tree targeted policy is).  With a
    pure key this is byte-identical to the legacy full scan, which recomputed
    the same minimum on every step.
    """

    def __init__(self, key: Callable[[Message], Any]) -> None:
        self.key = key
        self._heap: List[Any] = []

    def push(self, message: Message) -> None:
        heapq.heappush(self._heap, (self.key(message), message.seq, message))

    def pop(self, rng: random.Random, step: int) -> Message:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def snapshot(self) -> List[Message]:
        return [entry[2] for entry in sorted(self._heap, key=lambda e: e[1])]


class SendOrderRandomQueue(DeliveryQueue):
    """Rank-indexed uniform-random delivery, byte-identical to the legacy path.

    The legacy loop drew ``r = rng.randrange(len(pending))`` and popped
    ``pending[r]``; since ``list.pop`` preserves relative order, that is "the
    r-th oldest in-flight message".  A swap-pop would be O(1) but delivers a
    *different* (if equally distributed) sequence, breaking seed-for-seed
    reproducibility of every recorded experiment.  So this queue answers the
    same rank query, adaptively:

    * below ``_TREE_THRESHOLD`` in-flight messages it keeps a plain list --
      ``list.pop(r)`` is an O(m) pointer memmove in C, which beats any
      pure-Python structure at simulation-typical queue depths;
    * above the threshold it switches to a Fenwick tree over send slots,
      giving O(log m) pops when message floods would make the memmove the
      bottleneck.

    Both representations deliver the r-th oldest message and consume exactly
    one ``randrange`` per pop, so the mode (and any switch between modes) is
    invisible in the delivery order.  Delivered slots leave tombstones in
    tree mode; the structure compacts (and drops back to list mode when small
    enough) once tombstones outnumber live messages, keeping memory
    O(in-flight), not O(ever sent).
    """

    #: In-flight count at which the Fenwick index takes over from the list.
    #: Measured crossover on CPython 3.11 is ~40k pending; switching a bit
    #: early is harmless (both sides are ~100ns/op there).
    _TREE_THRESHOLD = 32768

    def __init__(self) -> None:
        self._count = 0
        # List mode state (active while _tree is None).
        self._list: List[Message] = []
        # Tree mode state: send-order slots with tombstones + Fenwick counts.
        self._tree: Optional[List[int]] = None
        self._slots: List[Optional[Message]] = []
        self._capacity = 0
        # Cached rank drawer for the (single) rng this queue is popped with.
        # ``Random.randrange(n)`` is a thin wrapper that validates arguments
        # and then calls ``_randbelow(n)``; calling ``_randbelow`` directly
        # consumes the identical getrandbits stream (so delivery order is
        # unchanged) while skipping the wrapper -- a measurable win at one
        # draw per delivery.  Falls back to ``randrange`` on interpreters
        # without the private method.
        self._randbelow: Optional[Callable[[int], int]] = None
        self._randbelow_rng: Optional[random.Random] = None

    def __len__(self) -> int:
        return self._count

    # -- mode switching -------------------------------------------------
    def _rebuild_tree(self, slots: List[Optional[Message]]) -> None:
        capacity = 16
        while capacity <= len(slots):
            capacity *= 2
        tree = [0] * (capacity + 1)
        for index, message in enumerate(slots):
            if message is not None:
                position = index + 1
                while position <= capacity:
                    tree[position] += 1
                    position += position & -position
        self._slots = slots
        self._tree = tree
        self._capacity = capacity

    def _enter_tree_mode(self) -> None:
        self._rebuild_tree(list(self._list))
        self._list = []

    def _compact(self) -> None:
        alive: List[Optional[Message]] = [m for m in self._slots if m is not None]
        if len(alive) <= self._TREE_THRESHOLD // 2:
            # Small again: return to the C-speed list representation.
            self._list = alive  # type: ignore[assignment]
            self._tree = None
            self._slots = []
            self._capacity = 0
        else:
            self._rebuild_tree(alive)

    # -- queue protocol --------------------------------------------------
    def push(self, message: Message) -> None:
        self._count += 1
        if self._tree is None:
            self._list.append(message)
            if self._count > self._TREE_THRESHOLD:
                self._enter_tree_mode()
            return
        index = len(self._slots)
        if index >= self._capacity:
            self._rebuild_tree(self._slots)
        self._slots.append(message)
        position = index + 1
        tree = self._tree
        capacity = self._capacity
        while position <= capacity:
            tree[position] += 1
            position += position & -position

    def pop(self, rng: random.Random, step: int) -> Message:
        if rng is not self._randbelow_rng:
            self._randbelow_rng = rng
            self._randbelow = getattr(rng, "_randbelow", rng.randrange)
        rank = self._randbelow(self._count)
        self._count -= 1
        if self._tree is None:
            return self._list.pop(rank)
        # Fenwick binary search: smallest slot with prefix-count == rank + 1.
        tree = self._tree
        position = 0
        remaining = rank + 1
        bit = 1 << (self._capacity.bit_length() - 1)
        while bit:
            candidate = position + bit
            if candidate <= self._capacity and tree[candidate] < remaining:
                position = candidate
                remaining -= tree[candidate]
            bit >>= 1
        message = self._slots[position]  # position == 0-based live rank slot
        assert message is not None
        self._slots[position] = None
        position += 1
        while position <= self._capacity:
            tree[position] -= 1
            position += position & -position
        if len(self._slots) > 2 * self._count:
            self._compact()
        return message

    def snapshot(self) -> List[Message]:
        if self._tree is None:
            return list(self._list)
        return [m for m in self._slots if m is not None]


class TwoClassRandomQueue(DeliveryQueue):
    """Rank-indexed delivery for delay/partition policies over a random base.

    The scan implementation of :class:`~repro.net.scheduler.DelayScheduler`
    (and ``PartitionScheduler``) rebuilds the *preferred* sub-list -- the
    pending messages the predicate does not delay -- on every step, an O(m)
    pass that dominates exactly the adversarial-flood runs the policy is for.
    This queue keeps every in-flight message in a send-order slot array with
    **two** Fenwick trees over it: one counting all live slots, one counting
    live *preferred* slots.  The predicate is evaluated once per message at
    submit time (it must be a pure function of the message; every in-tree
    policy is), after which a pop is:

    * while the policy is active and preferred messages exist -- draw
      ``rank = randbelow(#preferred)`` and Fenwick-search the preferred tree;
    * otherwise (nothing preferred, or past ``expires_at``) -- draw a rank
      over *all* in-flight messages and search the full tree.

    Both branches consume exactly one ``randrange``-equivalent draw over
    exactly the population the legacy scan drew from, and slots are kept in
    send order, so delivery is byte-identical to the scan path per seed
    (``tests/net/test_queues.py`` diffs full traces).  Pops are O(log m)
    where the scan was O(m) -- past the flood crossover this is the
    difference between seconds and minutes per trial.

    Tombstones are compacted once they outnumber live messages, keeping
    memory O(in-flight).
    """

    def __init__(
        self, prefer: Callable[[Message], bool], expires_at: Optional[int] = None
    ) -> None:
        self.prefer = prefer
        self.expires_at = expires_at
        self._count = 0
        self._preferred_count = 0
        self._slots: List[Optional[Message]] = []
        #: Parallel flags: whether the (live) message in a slot is preferred.
        self._flags: List[bool] = []
        self._tree_all: List[int] = [0] * 17
        self._tree_pref: List[int] = [0] * 17
        self._capacity = 16
        self._randbelow: Optional[Callable[[int], int]] = None
        self._randbelow_rng: Optional[random.Random] = None

    def __len__(self) -> int:
        return self._count

    # -- Fenwick plumbing -------------------------------------------------
    def _rebuild(self, slots: List[Optional[Message]], flags: List[bool]) -> None:
        capacity = 16
        while capacity <= len(slots):
            capacity *= 2
        tree_all = [0] * (capacity + 1)
        tree_pref = [0] * (capacity + 1)
        for index, message in enumerate(slots):
            if message is None:
                continue
            preferred = flags[index]
            position = index + 1
            while position <= capacity:
                tree_all[position] += 1
                if preferred:
                    tree_pref[position] += 1
                position += position & -position
        self._slots = slots
        self._flags = flags
        self._tree_all = tree_all
        self._tree_pref = tree_pref
        self._capacity = capacity

    def _compact(self) -> None:
        alive: List[Optional[Message]] = []
        alive_flags: List[bool] = []
        for index, message in enumerate(self._slots):
            if message is not None:
                alive.append(message)
                alive_flags.append(self._flags[index])
        self._rebuild(alive, alive_flags)

    def _search(self, tree: List[int], rank: int) -> int:
        """Smallest slot index whose prefix count in ``tree`` is ``rank + 1``."""
        position = 0
        remaining = rank + 1
        bit = 1 << (self._capacity.bit_length() - 1)
        while bit:
            candidate = position + bit
            if candidate <= self._capacity and tree[candidate] < remaining:
                position = candidate
                remaining -= tree[candidate]
            bit >>= 1
        return position

    # -- queue protocol ---------------------------------------------------
    def push(self, message: Message) -> None:
        index = len(self._slots)
        if index >= self._capacity:
            self._rebuild(self._slots, self._flags)
        preferred = self.prefer(message)
        self._slots.append(message)
        self._flags.append(preferred)
        self._count += 1
        if preferred:
            self._preferred_count += 1
        tree_all = self._tree_all
        tree_pref = self._tree_pref
        capacity = self._capacity
        position = index + 1
        while position <= capacity:
            tree_all[position] += 1
            if preferred:
                tree_pref[position] += 1
            position += position & -position

    def pop(self, rng: random.Random, step: int) -> Message:
        if rng is not self._randbelow_rng:
            self._randbelow_rng = rng
            self._randbelow = getattr(rng, "_randbelow", rng.randrange)
        active = self.expires_at is None or step < self.expires_at
        if active and self._preferred_count:
            rank = self._randbelow(self._preferred_count)
            position = self._search(self._tree_pref, rank)
        else:
            rank = self._randbelow(self._count)
            position = self._search(self._tree_all, rank)
        message = self._slots[position]
        assert message is not None
        preferred = self._flags[position]
        self._slots[position] = None
        self._count -= 1
        if preferred:
            self._preferred_count -= 1
        tree_all = self._tree_all
        tree_pref = self._tree_pref
        capacity = self._capacity
        position += 1
        while position <= capacity:
            tree_all[position] -= 1
            if preferred:
                tree_pref[position] -= 1
            position += position & -position
        if len(self._slots) > 2 * self._count:
            self._compact()
        return message

    def snapshot(self) -> List[Message]:
        return [m for m in self._slots if m is not None]
