"""The simulated asynchronous network.

A :class:`Network` owns the parties (:class:`~repro.net.process.Process`
objects), the multiset of in-flight messages and the scheduler.  One *step*
delivers exactly one message, chosen by the scheduler; this is the standard
formalisation of asynchrony, in which the adversary fully controls message
ordering but every message is eventually delivered.

The network is deterministic given its seed, the scheduler and the protocol
code, which makes failures reproducible from a single integer.

Hot-path design (the delivery loop is the bottleneck of every Monte-Carlo
campaign):

* **Completion counters** -- the network maintains a per-session count of
  honest completions, updated from :meth:`Protocol.complete` via
  :meth:`record_completion`.  The standard stop condition "every honest party
  finished session S" is therefore one dict lookup per delivery
  (:meth:`all_honest_finished`, :meth:`run_until_complete`) instead of the
  O(n) per-process scan the seed ran between every two deliveries (kept as
  :meth:`scan_all_honest_finished` for reference and equivalence tests).
* **Interned sessions** -- :meth:`intern_session` canonicalises session
  tuples network-wide, so the per-delivery routing dict lookup compares
  interned keys by identity and child-session tuples are shared across all
  parties instead of re-allocated per process.
* **Fused run loops** -- :meth:`run` and :meth:`run_until_complete` inline
  the per-delivery work of :meth:`step` with queue/trace/process lookups
  hoisted out of the loop, and a dedicated branch for disabled tracing.

All fast paths reproduce the seed's delivery order, traces and outputs
byte-identically per seed (``tests/net/test_completion.py``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set

from repro.core.config import ProtocolParams
from repro.errors import SimulationError
from repro.net.message import Message, SessionId
from repro.net.process import Process
from repro.net.queues import FanoutEntry
from repro.net.scheduler import RandomScheduler, Scheduler
from repro.net.tracing import Trace

#: Default cap on delivered messages per run; generous enough for every
#: protocol in the library at simulation scale, small enough to catch
#: accidental non-termination in tests.
DEFAULT_MAX_STEPS = 2_000_000


class Network:
    """Event-driven simulator of an asynchronous message-passing system."""

    def __init__(
        self,
        params: ProtocolParams,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        keep_events: bool = False,
        tracing: bool = True,
        session_table: Optional[Dict[SessionId, SessionId]] = None,
        metering: Optional[bool] = None,
        metrics: Optional[object] = None,
        sinks: Optional[List[object]] = None,
        group_mode: Optional[bool] = None,
        intern_sessions: bool = True,
    ) -> None:
        self.params = params
        self.scheduler = scheduler or RandomScheduler()
        self.seed = seed
        self.master_rng = random.Random(seed)
        self.scheduler_rng = random.Random(self.master_rng.getrandbits(64))
        self.trace = Trace(keep_events=keep_events, enabled=tracing)
        if sinks:
            for sink in sinks:
                self.trace.add_sink(sink)
        #: Aggregate message meter for trace-free runs (``repro.obs.meter``):
        #: with tracing on the trace itself carries the counts, so the meter
        #: engages only when tracing is off, by default (``metering=None``)
        #: or explicitly; ``metering=False`` opts the fast path out entirely.
        self.meter = None
        if not tracing and metering is not False:
            from repro.obs.meter import GroupMeter

            self.meter = GroupMeter()
        #: Optional structured-metrics registry (``repro.obs.metrics``).
        self.metrics = metrics
        self.step_count = 0
        self._next_seq = 0
        #: In-flight messages, held in the scheduler's delivery-queue strategy
        #: (deque / heap / rank-indexed tree / legacy scan list).
        self._queue = self.scheduler.make_queue()
        #: Canonical representative for every session tuple seen by this
        #: network; protocols intern their session ids here so routing-dict
        #: lookups hit the identity fast path and child sessions are shared.
        #: A caller may pass a shared table so identically-shaped trials (a
        #: campaign chunk) reuse one set of interned tuples across networks.
        self._sessions: Dict[SessionId, SessionId] = (
            session_table if session_table is not None else {}
        )
        #: Ablation switch: ``False`` makes :meth:`intern_session` a plain
        #: tuple copy (every caller gets its own allocation, identity-equal
        #: lookups degrade to value equality) without touching routing
        #: semantics -- tuples hash and compare by value either way.
        self._intern_sessions = bool(intern_sessions)
        #: Lazily-built batched crypto plane (see :meth:`crypto_plane`).
        self._crypto_plane = None
        #: How the root protocol was wired, recorded by
        #: :meth:`repro.net.runtime.Simulation.run` as ``(session, factory,
        #: inputs, common_input)``.  The scenario ``restart`` transition uses
        #: it to re-open the root protocol at a restarted party; ``None``
        #: until a simulation driver sets it.
        self.root_recipe: Optional[tuple] = None
        #: Optional scenario director observing protocol lifecycle events and
        #: (for directors that want them) per-delivery callbacks.  ``None``
        #: keeps every hot path on its unobserved branch.
        self.director: Optional[object] = None
        #: Party ids currently controlled by the adversary.  Tracked here (not
        #: read off ``process.behavior``) because behaviours may temporarily
        #: clear the process hook to route one delivery through the honest
        #: protocol tree.
        self._corrupted: Set[int] = set()
        #: Number of honest (never-corrupted) parties.
        self._honest_n = params.n
        #: session -> number of honest parties whose instance completed it.
        #: ``complete()`` fires at most once per (party, session), so the
        #: count reaching ``_honest_n`` is exactly the legacy all-honest scan.
        self._completions: Dict[SessionId, int] = {}
        #: Session currently watched by :meth:`run_until_complete` (and the
        #: flag set once its counter reaches the honest count), letting the
        #: delivery loop test one attribute instead of a dict lookup.
        self._watch_session: Optional[SessionId] = None
        self._watch_done = False
        # Hot-path caches: the queue and trace objects are fixed for the
        # network's lifetime (a disabled trace binds no-op hooks at
        # construction), so bound methods can be cached once.
        self._n = params.n
        self._queue_push = self._queue.push
        self._trace_on_send = self.trace.on_send
        self._tracing = self.trace.enabled
        #: Pre-bound meter hook for the send paths (None when unmetered).
        self._meter_count_send = None if self.meter is None else self.meter.count_send
        #: Pre-bound registry hooks: completion-step recording (invoked from
        #: :meth:`record_completion`, which needs an accurate ``step_count``)
        #: and the queue-depth sampling period.
        self._obs_on_complete = None
        self._obs_sample_every = 0
        if metrics is not None:
            if getattr(metrics, "completion_steps", False):
                self._obs_on_complete = metrics.on_complete
            self._obs_sample_every = getattr(metrics, "queue_depth_every", 0)
        #: Queue fan-outs as single unmaterialised group entries.  Requires a
        #: queue that understands groups and tracing off (trace hooks need
        #: real Message objects at send time); fixed for the network's life.
        #: ``group_mode=False`` opts a capable configuration out (the ablation
        #: switch); ``True``/``None`` engage it whenever the prerequisites
        #: hold -- the flag can never force groups onto a queue or a traced
        #: run that cannot support them.
        groups_possible = not self._tracing and getattr(
            self._queue, "supports_groups", False
        )
        self._group_mode = groups_possible and group_mode is not False
        self._full_fanout_mask = (1 << params.n) - 1
        self.processes: List[Process] = [
            Process(
                pid,
                params,
                self,
                random.Random(self.master_rng.getrandbits(64)),
            )
            for pid in range(params.n)
        ]

    # ------------------------------------------------------------------
    # Session interning.
    # ------------------------------------------------------------------
    def intern_session(self, session: SessionId) -> SessionId:
        """Return the canonical tuple for ``session`` (allocating it once)."""
        session = tuple(session)
        if not self._intern_sessions:
            return session
        return self._sessions.setdefault(session, session)

    # ------------------------------------------------------------------
    # Batched crypto plane (interned beside the session table).
    # ------------------------------------------------------------------
    def crypto_plane(self):
        """The network-wide :class:`~repro.crypto.kernels.CryptoPlane`.

        Built lazily on first use (pure-message protocols never pay for the
        evaluation tables) and shared by every party of this network, which
        is what lets one dealer's row validation/evaluation serve all ``n``
        receivers.  The expensive immutable tables inside it are additionally
        shared process-wide per ``(prime, n)``.
        """
        plane = self._crypto_plane
        if plane is None:
            from repro.crypto.kernels import CryptoPlane

            params = self.params
            plane = self._crypto_plane = CryptoPlane(params.prime, params.n, params.t)
        return plane

    # ------------------------------------------------------------------
    # Scenario observation.
    # ------------------------------------------------------------------
    def install_director(self, director: object) -> None:
        """Attach a scenario director observing this network's execution.

        The director receives ``on_session_open(pid, session)`` when a party
        creates a protocol instance, ``on_complete(pid, session)`` for every
        completion, and -- only when its ``wants_deliveries`` flag is set --
        ``on_deliver(step, message)`` after each delivery.  Directors that do
        not need per-delivery callbacks leave the fused fast loops untouched.
        """
        self.director = director
        attach = getattr(director, "attach", None)
        if attach is not None:
            attach(self)

    # ------------------------------------------------------------------
    # Sending.
    # ------------------------------------------------------------------
    def submit(
        self, sender: int, receiver: int, session: SessionId, payload: tuple
    ) -> None:
        """Queue a message for asynchronous delivery.

        ``session`` and ``payload`` must be tuples; the protocol/process send
        path guarantees this, so no defensive copies are made here.
        """
        if not 0 <= receiver < self._n:
            raise SimulationError(f"message addressed to unknown party {receiver}")
        seq = self._next_seq
        self._next_seq = seq + 1
        # Message construction inlined (one slotted store per field beats a
        # constructor call on the single most-allocated object in a run).
        message = Message.__new__(Message)
        message.sender = sender
        message.receiver = receiver
        message.session = session
        message.payload = payload
        message.seq = seq
        message.kind = payload[0] if payload else None
        message.root = session[0] if session else None
        self._queue_push(message)
        if self._tracing:
            self._trace_on_send(self.step_count, message)
        else:
            count_send = self._meter_count_send
            if count_send is not None:
                count_send(message.kind, message.root, 1)

    def submit_broadcast(self, sender: int, session: SessionId, payload: tuple) -> None:
        """Queue one copy of ``payload`` for every party, in pid order.

        Byte-identical to calling :meth:`submit` for receivers ``0..n-1``
        (same sequence numbers, same queue order, same trace records) with
        the per-message overhead hoisted.  In group mode (tracing off, queue
        with fan-out support) the whole broadcast becomes ONE unmaterialised
        :class:`~repro.net.queues.FanoutEntry`; delivered copies are built at
        pop time and undelivered copies are never allocated.  Broadcasts
        dominate the send side of the SVSS-heavy protocols, which makes this
        the hot path of :meth:`Protocol.broadcast`.
        """
        n = self._n
        seq = self._next_seq
        self._next_seq = seq + n
        kind = payload[0] if payload else None
        root = session[0] if session else None
        if self._group_mode:
            self._queue.push_group(
                FanoutEntry(sender, session, kind, payload, None, seq, None, root),
                self._full_fanout_mask,
                n,
            )
            count_send = self._meter_count_send
            if count_send is not None:
                # One counter bump for the whole fan-out: FanoutEntry
                # granularity, not per-copy.
                count_send(kind, root, n)
            return
        new = Message.__new__
        messages = []
        append = messages.append
        for receiver in range(n):
            message = new(Message)
            message.sender = sender
            message.receiver = receiver
            message.session = session
            message.payload = payload
            message.seq = seq
            message.kind = kind
            message.root = root
            seq += 1
            append(message)
        self._queue.push_many(messages)
        if self._tracing:
            on_send = self._trace_on_send
            step = self.step_count
            for message in messages:
                on_send(step, message)
        else:
            count_send = self._meter_count_send
            if count_send is not None:
                count_send(kind, root, n)

    def submit_fanout(
        self,
        sender: int,
        session: SessionId,
        kind: str,
        values: List,
        skip: Optional[int] = None,
    ) -> None:
        """Queue ``(kind, values[r])`` for every receiver ``r`` (pid order).

        ``skip`` omits one receiver (a party never sends its own POINT to
        itself).  Byte-identical to the per-receiver :meth:`submit` loop the
        SVSS dealer/point fan-outs used to run, with the per-message call
        overhead hoisted exactly like :meth:`submit_broadcast` (including the
        one-entry group form when group mode is on).  ``values`` must not be
        mutated after submission.
        """
        n = self._n
        seq = self._next_seq
        size = n if skip is None else n - 1
        self._next_seq = seq + size
        root = session[0] if session else None
        if self._group_mode:
            mask = self._full_fanout_mask
            if skip is not None:
                mask ^= 1 << skip
            self._queue.push_group(
                FanoutEntry(sender, session, kind, None, values, seq, skip, root),
                mask,
                size,
            )
            count_send = self._meter_count_send
            if count_send is not None:
                count_send(kind, root, size)
            return
        new = Message.__new__
        messages = []
        append = messages.append
        for receiver in range(n):
            if receiver == skip:
                continue
            message = new(Message)
            message.sender = sender
            message.receiver = receiver
            message.session = session
            message.payload = (kind, values[receiver])
            message.seq = seq
            message.kind = kind
            message.root = root
            seq += 1
            append(message)
        self._queue.push_many(messages)
        if self._tracing:
            on_send = self._trace_on_send
            step = self.step_count
            for message in messages:
                on_send(step, message)
        else:
            count_send = self._meter_count_send
            if count_send is not None:
                count_send(kind, root, size)

    # ------------------------------------------------------------------
    # Stepping.
    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[Message]:
        """The in-flight messages in send order (a snapshot, for inspection)."""
        return self._queue.snapshot()

    def step(self) -> bool:
        """Deliver one message.  Returns False when nothing is in flight."""
        queue = self._queue
        if not len(queue):
            return False
        message = queue.pop(self.scheduler_rng, self.step_count)
        self.step_count += 1
        self.trace.on_deliver(self.step_count, message)
        self.processes[message.receiver].deliver(message)
        return True

    def run(
        self,
        until: Optional[Callable[["Network"], bool]] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> int:
        """Deliver messages until ``until`` holds or the network goes quiet.

        The per-delivery work of :meth:`step` is inlined with attribute
        lookups hoisted; the delivery order is identical to calling
        :meth:`step` in a loop.

        Args:
            until: stop condition checked before every delivery; ``None``
                means "run until no messages are in flight".
            max_steps: safety cap on deliveries for this call.

        Returns:
            The number of messages delivered by this call.

        Raises:
            SimulationError: if ``max_steps`` deliveries happen without the
                stop condition being reached (likely non-termination), or if
                the network goes quiet while ``until`` is still false
                (deadlock -- typically a protocol bug or an impossible fault
                pattern).
        """
        director = self.director
        if director is not None and getattr(director, "wants_deliveries", False):
            return self._run_observed(until=until, watch=None, max_steps=max_steps)
        queue = self._queue
        queue_len = queue.__len__
        pop = queue.pop
        rng = self.scheduler_rng
        processes = self.processes
        on_deliver = self.trace.on_deliver
        tracing = self._tracing
        delivered = 0
        if until is None:
            while True:
                if delivered >= max_steps:
                    raise SimulationError(
                        f"run() exceeded {max_steps} deliveries without reaching "
                        f"its stop condition"
                    )
                if not queue_len():
                    return delivered
                message = pop(rng, self.step_count)
                self.step_count = step = self.step_count + 1
                if tracing:
                    on_deliver(step, message)
                processes[message.receiver].deliver(message)
                delivered += 1
        while True:
            if until(self):
                return delivered
            if delivered >= max_steps:
                raise SimulationError(
                    f"run() exceeded {max_steps} deliveries without reaching "
                    f"its stop condition"
                )
            if not queue_len():
                raise SimulationError(
                    "network is quiescent but the stop condition is not met "
                    "(protocol deadlock)"
                )
            message = pop(rng, self.step_count)
            self.step_count = step = self.step_count + 1
            if tracing:
                on_deliver(step, message)
            processes[message.receiver].deliver(message)
            delivered += 1

    def run_until_complete(
        self, session: SessionId, max_steps: int = DEFAULT_MAX_STEPS
    ) -> int:
        """Deliver messages until every honest party has completed ``session``.

        Semantically identical to
        ``run(until=lambda net: net.scan_all_honest_finished(session))`` --
        same delivery order, same trace, same exceptions -- but the stop
        condition is a single counter comparison per delivery instead of an
        O(n) scan over the processes.

        Args:
            session: the session whose completion ends the run.
            max_steps: safety cap on deliveries for this call.

        Returns:
            The number of messages delivered by this call.

        Raises:
            SimulationError: on exceeding ``max_steps`` or on protocol
                deadlock, exactly as :meth:`run`.
        """
        session = tuple(session)
        director = self.director
        if director is not None and getattr(director, "wants_deliveries", False):
            return self._run_observed(until=None, watch=session, max_steps=max_steps)
        if self._obs_on_complete is not None or self._obs_sample_every:
            # A metrics registry needs an eagerly-maintained step counter
            # (completion-step histograms) and/or periodic queue-depth
            # samples: route through the step-accurate instrumented loop.
            # Delivery order is unchanged -- only bookkeeping differs.
            return self._run_instrumented(session, max_steps)
        queue = self._queue
        queue_len = queue.__len__
        pop = queue.pop
        rng = self.scheduler_rng
        deliver_by_pid = [process.deliver for process in self.processes]
        delivered = 0
        # Completion-driven stop: record_completion flips _watch_done the
        # moment the watched session's counter reaches the honest count, so
        # the loop condition is a single attribute read per delivery.
        self._watch_session = session
        self._watch_done = self._completions.get(session, 0) >= self._honest_n
        try:
            if self._tracing:
                on_deliver = self.trace.on_deliver
                while not self._watch_done:
                    if delivered >= max_steps:
                        raise SimulationError(
                            f"run() exceeded {max_steps} deliveries without reaching "
                            f"its stop condition"
                        )
                    if not queue_len():
                        raise SimulationError(
                            "network is quiescent but the stop condition is not met "
                            "(protocol deadlock)"
                        )
                    message = pop(rng, self.step_count)
                    self.step_count = step = self.step_count + 1
                    on_deliver(step, message)
                    deliver_by_pid[message.receiver](message)
                    delivered += 1
                return delivered
            # Dedicated tracing-off branch: no per-delivery trace call at all.
            # With no director attached, nothing can observe ``step_count``
            # mid-delivery (trace hooks are no-ops and queues receive the
            # step as an argument), so the counter lives in a local and is
            # written back when the loop exits.  An empty queue surfaces as
            # the pop's rank draw raising ValueError (``getrandbits(0)``) or
            # the tail raising IndexError -- both before any state changes --
            # which turns the per-delivery emptiness check into a zero-cost
            # (until raised) try/except.
            if self.director is None:
                step = self.step_count
                pop_entry = getattr(queue, "pop_entry", None)
                if pop_entry is not None:
                    # Unmaterialised fast path: fan-out copies are delivered
                    # from their group entry; a Message object is only built
                    # for behaviours and trace arguments inside deliver_parts.
                    parts_by_pid = [
                        process.deliver_parts for process in self.processes
                    ]
                    try:
                        while not self._watch_done:
                            if delivered >= max_steps:
                                raise SimulationError(
                                    f"run() exceeded {max_steps} deliveries "
                                    f"without reaching its stop condition"
                                )
                            try:
                                entry, bitpos = pop_entry(rng)
                            except (ValueError, IndexError):
                                raise SimulationError(
                                    "network is quiescent but the stop condition "
                                    "is not met (protocol deadlock)"
                                ) from None
                            step += 1
                            if bitpos < 0:
                                deliver_by_pid[entry.receiver](entry)
                            else:
                                values = entry.values
                                parts_by_pid[bitpos](
                                    entry.sender,
                                    entry.session,
                                    entry.payload
                                    if values is None
                                    else (entry.kind, values[bitpos]),
                                    entry,
                                    bitpos,
                                )
                            delivered += 1
                        return delivered
                    finally:
                        self.step_count = step
                try:
                    while not self._watch_done:
                        if delivered >= max_steps:
                            raise SimulationError(
                                f"run() exceeded {max_steps} deliveries without "
                                f"reaching its stop condition"
                            )
                        try:
                            message = pop(rng, step)
                        except (ValueError, IndexError):
                            raise SimulationError(
                                "network is quiescent but the stop condition is "
                                "not met (protocol deadlock)"
                            ) from None
                        step += 1
                        deliver_by_pid[message.receiver](message)
                        delivered += 1
                    return delivered
                finally:
                    self.step_count = step
            while not self._watch_done:
                if delivered >= max_steps:
                    raise SimulationError(
                        f"run() exceeded {max_steps} deliveries without reaching "
                        f"its stop condition"
                    )
                if not queue_len():
                    raise SimulationError(
                        "network is quiescent but the stop condition is not met "
                        "(protocol deadlock)"
                    )
                message = pop(rng, self.step_count)
                self.step_count += 1
                deliver_by_pid[message.receiver](message)
                delivered += 1
            return delivered
        finally:
            self._watch_session = None
            self._watch_done = False

    def run_to_quiescence(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Deliver messages until none remain in flight."""
        return self.run(until=None, max_steps=max_steps)

    def _run_instrumented(self, watch: SessionId, max_steps: int) -> int:
        """Metrics-instrumented completion loop (registry attached).

        Identical delivery order, stop conditions and errors to
        :meth:`run_until_complete`; differences are bookkeeping only:
        ``step_count`` is maintained eagerly so the completion-step hook in
        :meth:`record_completion` sees accurate steps, and the in-flight
        queue depth is sampled every ``metrics.queue_depth_every``-th
        delivery.  Group queues still deliver through their generic ``pop``
        (which materialises fan-out copies in the same order), so the
        delivery *sequence* is untouched -- only the lazy-materialisation
        speed-up is traded for observability.
        """
        queue = self._queue
        queue_len = queue.__len__
        pop = queue.pop
        rng = self.scheduler_rng
        deliver_by_pid = [process.deliver for process in self.processes]
        on_deliver = self.trace.on_deliver
        tracing = self._tracing
        sample_every = self._obs_sample_every
        on_depth = self.metrics.on_queue_depth if sample_every else None  # type: ignore[union-attr]
        delivered = 0
        self._watch_session = watch
        self._watch_done = self._completions.get(watch, 0) >= self._honest_n
        try:
            while not self._watch_done:
                if delivered >= max_steps:
                    raise SimulationError(
                        f"run() exceeded {max_steps} deliveries without reaching "
                        f"its stop condition"
                    )
                if not queue_len():
                    raise SimulationError(
                        "network is quiescent but the stop condition is not met "
                        "(protocol deadlock)"
                    )
                message = pop(rng, self.step_count)
                self.step_count = step = self.step_count + 1
                if tracing:
                    on_deliver(step, message)
                deliver_by_pid[message.receiver](message)
                delivered += 1
                if sample_every and delivered % sample_every == 0:
                    on_depth(step, queue_len())
            return delivered
        finally:
            self._watch_session = None
            self._watch_done = False

    def message_stats(self) -> Optional[Dict[str, object]]:
        """Headline message counts, whichever tier collected them.

        With tracing on this is :meth:`Trace.summary`; with tracing off it is
        the group meter's equivalent (same core keys: ``messages_sent``,
        ``messages_delivered``, ``messages_dropped``, ``shun_events``,
        ``sent_by_root``, ``sent_by_kind``, ``dropped_by_reason``), with
        deliveries read off the step counter (one step is one delivery).
        Returns None only when metering was explicitly disabled.
        """
        if self._tracing:
            return self.trace.summary()
        meter = self.meter
        if meter is not None:
            return meter.summary(self.step_count)
        return None

    def _run_observed(
        self,
        until: Optional[Callable[["Network"], bool]],
        watch: Optional[SessionId],
        max_steps: int,
    ) -> int:
        """Delivery loop with a per-delivery director callback.

        Used only when the installed director wants delivery events (fault
        timelines and adaptive rules with step triggers); delivery order, stop
        conditions and error behaviour are identical to :meth:`run` /
        :meth:`run_until_complete`, with ``director.on_deliver(step, message)``
        invoked after each delivery.
        """
        queue = self._queue
        queue_len = queue.__len__
        pop = queue.pop
        rng = self.scheduler_rng
        processes = self.processes
        trace_on_deliver = self.trace.on_deliver
        tracing = self._tracing
        on_deliver = self.director.on_deliver  # type: ignore[union-attr]
        delivered = 0
        if watch is not None:
            self._watch_session = watch
            self._watch_done = self._completions.get(watch, 0) >= self._honest_n
        try:
            while True:
                if watch is not None:
                    if self._watch_done:
                        return delivered
                elif until is not None and until(self):
                    return delivered
                if delivered >= max_steps:
                    raise SimulationError(
                        f"run() exceeded {max_steps} deliveries without reaching "
                        f"its stop condition"
                    )
                if not queue_len():
                    if watch is None and until is None:
                        return delivered
                    raise SimulationError(
                        "network is quiescent but the stop condition is not met "
                        "(protocol deadlock)"
                    )
                message = pop(rng, self.step_count)
                self.step_count = step = self.step_count + 1
                if tracing:
                    trace_on_deliver(step, message)
                processes[message.receiver].deliver(message)
                delivered += 1
                on_deliver(step, message)
        finally:
            if watch is not None:
                self._watch_session = None
                self._watch_done = False

    # ------------------------------------------------------------------
    # Completion and corruption bookkeeping (the O(1) stop-condition state).
    # ------------------------------------------------------------------
    def record_completion(self, pid: int, session: SessionId) -> None:
        """Count one protocol completion (called by the process layer).

        Completions of corrupted parties are ignored, matching the legacy
        per-process scan which skipped them at query time.  ``session`` must
        be the instance's own (interned) session tuple.
        """
        if pid not in self._corrupted:
            completions = self._completions
            completions[session] = count = completions.get(session, 0) + 1
            if session == self._watch_session and count >= self._honest_n:
                self._watch_done = True
        obs = self._obs_on_complete
        if obs is not None:
            obs(self.step_count, pid, session)
        director = self.director
        if director is not None:
            director.on_complete(pid, session)

    def register_corruption(self, process: Process) -> None:
        """Mark ``process`` as adversarial (called by :meth:`Process.corrupt`).

        Any completions the party already contributed are retracted so the
        counters keep agreeing with the honest-only scan.
        """
        pid = process.pid
        if pid in self._corrupted:
            return
        self._corrupted.add(pid)
        self._honest_n -= 1
        completions = self._completions
        for session, instance in process.protocols.items():
            if instance.finished:
                completions[session] -= 1
        # A lowered honest count can make the watched session complete
        # without any further record_completion call (corrupting the last
        # straggler mid-run): refresh the stop flag so run_until_complete
        # stops exactly where the legacy scan would.
        watched = self._watch_session
        if watched is not None and completions.get(watched, 0) >= self._honest_n:
            self._watch_done = True

    # ------------------------------------------------------------------
    # Convenience queries.
    # ------------------------------------------------------------------
    def honest_pids(self) -> List[int]:
        """Party ids the adversary has never controlled.

        A party restarted after a corruption (scenario ``restart``) runs
        honest code again but stays attributed to the adversary -- the
        ``ever_corrupted`` flag, not the live behaviour, is what all honest
        accounting keys on.
        """
        return [p.pid for p in self.processes if not p.ever_corrupted]

    def corrupted_pids(self) -> List[int]:
        """Party ids the adversary has (ever) controlled."""
        return [p.pid for p in self.processes if p.ever_corrupted]

    def honest_outputs(self, session: SessionId) -> Dict[int, object]:
        """Outputs of never-corrupted parties that completed ``session``."""
        outputs: Dict[int, object] = {}
        for process in self.processes:
            if process.ever_corrupted:
                continue
            instance = process.protocol(session)
            if instance is not None and instance.finished:
                outputs[process.pid] = instance.output
        return outputs

    def all_honest_finished(self, session: SessionId) -> bool:
        """True when every honest party has completed ``session``.

        Backed by the completion counters: one dict lookup, no per-process
        scan.  Agrees with :meth:`scan_all_honest_finished` at every point of
        every execution (property-tested in ``tests/net/test_completion.py``).
        """
        return self._completions.get(tuple(session), 0) >= self._honest_n

    def scan_all_honest_finished(self, session: SessionId) -> bool:
        """Reference O(n) implementation of :meth:`all_honest_finished`.

        This is the seed's stop condition, kept for equivalence tests and for
        the frozen legacy benchmark oracle; production code uses the
        counter-backed version.
        """
        for process in self.processes:
            if process.ever_corrupted:
                continue
            instance = process.protocol(session)
            if instance is None or not instance.finished:
                return False
        return True
