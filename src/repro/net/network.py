"""The simulated asynchronous network.

A :class:`Network` owns the parties (:class:`~repro.net.process.Process`
objects), the multiset of in-flight messages and the scheduler.  One *step*
delivers exactly one message, chosen by the scheduler; this is the standard
formalisation of asynchrony, in which the adversary fully controls message
ordering but every message is eventually delivered.

The network is deterministic given its seed, the scheduler and the protocol
code, which makes failures reproducible from a single integer.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.config import ProtocolParams
from repro.errors import SimulationError
from repro.net.message import Message, SessionId
from repro.net.process import Process
from repro.net.scheduler import RandomScheduler, Scheduler
from repro.net.tracing import Trace

#: Default cap on delivered messages per run; generous enough for every
#: protocol in the library at simulation scale, small enough to catch
#: accidental non-termination in tests.
DEFAULT_MAX_STEPS = 2_000_000


class Network:
    """Event-driven simulator of an asynchronous message-passing system."""

    def __init__(
        self,
        params: ProtocolParams,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        keep_events: bool = False,
        tracing: bool = True,
    ) -> None:
        self.params = params
        self.scheduler = scheduler or RandomScheduler()
        self.seed = seed
        self.master_rng = random.Random(seed)
        self.scheduler_rng = random.Random(self.master_rng.getrandbits(64))
        self.trace = Trace(keep_events=keep_events, enabled=tracing)
        self.step_count = 0
        self._next_seq = 0
        #: In-flight messages, held in the scheduler's delivery-queue strategy
        #: (deque / heap / rank-indexed tree / legacy scan list).
        self._queue = self.scheduler.make_queue()
        self.processes: List[Process] = [
            Process(
                pid,
                params,
                self,
                random.Random(self.master_rng.getrandbits(64)),
            )
            for pid in range(params.n)
        ]

    # ------------------------------------------------------------------
    # Sending.
    # ------------------------------------------------------------------
    def submit(
        self, sender: int, receiver: int, session: SessionId, payload: tuple
    ) -> None:
        """Queue a message for asynchronous delivery."""
        if not self.params.is_valid_party(receiver):
            raise SimulationError(f"message addressed to unknown party {receiver}")
        message = Message(
            sender=sender,
            receiver=receiver,
            session=session,
            payload=payload,
            seq=self._next_seq,
        )
        self._next_seq += 1
        self._queue.push(message)
        self.trace.on_send(self.step_count, message)

    # ------------------------------------------------------------------
    # Stepping.
    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[Message]:
        """The in-flight messages in send order (a snapshot, for inspection)."""
        return self._queue.snapshot()

    def step(self) -> bool:
        """Deliver one message.  Returns False when nothing is in flight."""
        queue = self._queue
        if not len(queue):
            return False
        message = queue.pop(self.scheduler_rng, self.step_count)
        self.step_count += 1
        self.trace.on_deliver(self.step_count, message)
        self.processes[message.receiver].deliver(message)
        return True

    def run(
        self,
        until: Optional[Callable[["Network"], bool]] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> int:
        """Deliver messages until ``until`` holds or the network goes quiet.

        Args:
            until: stop condition checked before every delivery; ``None``
                means "run until no messages are in flight".
            max_steps: safety cap on deliveries for this call.

        Returns:
            The number of messages delivered by this call.

        Raises:
            SimulationError: if ``max_steps`` deliveries happen without the
                stop condition being reached (likely non-termination), or if
                the network goes quiet while ``until`` is still false
                (deadlock -- typically a protocol bug or an impossible fault
                pattern).
        """
        delivered = 0
        while True:
            if until is not None and until(self):
                return delivered
            if delivered >= max_steps:
                raise SimulationError(
                    f"run() exceeded {max_steps} deliveries without reaching "
                    f"its stop condition"
                )
            if not self.step():
                if until is None:
                    return delivered
                raise SimulationError(
                    "network is quiescent but the stop condition is not met "
                    "(protocol deadlock)"
                )
            delivered += 1

    def run_to_quiescence(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Deliver messages until none remain in flight."""
        return self.run(until=None, max_steps=max_steps)

    # ------------------------------------------------------------------
    # Convenience queries.
    # ------------------------------------------------------------------
    def honest_pids(self) -> List[int]:
        """Party ids that are not corrupted."""
        return [p.pid for p in self.processes if not p.is_corrupted]

    def corrupted_pids(self) -> List[int]:
        """Party ids controlled by the adversary."""
        return [p.pid for p in self.processes if p.is_corrupted]

    def honest_outputs(self, session: SessionId) -> Dict[int, object]:
        """Outputs of honest parties that completed ``session``."""
        outputs: Dict[int, object] = {}
        for process in self.processes:
            if process.is_corrupted:
                continue
            instance = process.protocol(session)
            if instance is not None and instance.finished:
                outputs[process.pid] = instance.output
        return outputs

    def all_honest_finished(self, session: SessionId) -> bool:
        """True when every honest party has completed ``session``."""
        for process in self.processes:
            if process.is_corrupted:
                continue
            instance = process.protocol(session)
            if instance is None or not instance.finished:
                return False
        return True
