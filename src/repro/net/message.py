"""Message model for the asynchronous network simulator.

A :class:`Message` is addressed to a *protocol session* on a receiving party.
Sessions are hierarchical tuples (for example ``("coinflip", 3, "svss", 2,
"share")``), which lets an arbitrarily deep stack of sub-protocols multiplex
over one simulated network without any global registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

#: A session identifier: a tuple of hashable path components.  The empty tuple
#: is reserved and never used by protocols.
SessionId = Tuple[Any, ...]


@dataclass(frozen=True)
class Message:
    """A single point-to-point message in flight.

    Attributes:
        sender: party id of the sender.
        receiver: party id of the destination.
        session: hierarchical session identifier of the destination protocol.
        payload: protocol payload; by convention a tuple whose first element
            is a short message-type string (``("ECHO", value)``).
        seq: global sequence number assigned by the network at send time.
            Used for deterministic tie-breaking and FIFO scheduling.
    """

    sender: int
    receiver: int
    session: SessionId
    payload: Tuple[Any, ...]
    seq: int = 0

    @property
    def kind(self) -> Any:
        """The message-type tag (first payload element), or None if empty."""
        if not self.payload:
            return None
        return self.payload[0]

    @property
    def root(self) -> Any:
        """The root component of the session path (top-level protocol name)."""
        if not self.session:
            return None
        return self.session[0]

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Message(#{self.seq} {self.sender}->{self.receiver} "
            f"{'/'.join(map(str, self.session))} {self.payload!r})"
        )


def session_child(session: SessionId, *components: Any) -> SessionId:
    """Return the session id of a child protocol under ``session``."""
    return tuple(session) + tuple(components)


def session_is_descendant(session: SessionId, ancestor: SessionId) -> bool:
    """Return True when ``session`` equals or lies below ``ancestor``."""
    return len(session) >= len(ancestor) and tuple(session[: len(ancestor)]) == tuple(
        ancestor
    )
