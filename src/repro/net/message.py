"""Message model for the asynchronous network simulator.

A :class:`Message` is addressed to a *protocol session* on a receiving party.
Sessions are hierarchical tuples (for example ``("coinflip", 3, "svss", 2,
"share")``), which lets an arbitrarily deep stack of sub-protocols multiplex
over one simulated network without any global registry.

``Message`` is the single most-allocated object in a simulation (one per
send), so it is a plain ``__slots__`` class rather than a dataclass: slot
stores in ``__init__`` cost a fraction of the frozen-dataclass
``object.__setattr__`` path, and the ``kind`` / ``root`` tags the tracing
layer reads on every send are precomputed attributes instead of properties.
Messages are immutable *by convention*: they are created only by
``Network.submit`` and never mutated afterwards; tests and tools must treat
them as frozen values.
"""

from __future__ import annotations

from typing import Any, Tuple

#: A session identifier: a tuple of hashable path components.  The empty tuple
#: is reserved and never used by protocols.
SessionId = Tuple[Any, ...]


class Message:
    """A single point-to-point message in flight.

    Attributes:
        sender: party id of the sender.
        receiver: party id of the destination.
        session: hierarchical session identifier of the destination protocol.
        payload: protocol payload; by convention a tuple whose first element
            is a short message-type string (``("ECHO", value)``).
        seq: global sequence number assigned by the network at send time.
            Used for deterministic tie-breaking and FIFO scheduling.
        kind: the message-type tag (first payload element), or None if empty.
        root: the root component of the session path (top-level protocol
            name), or None for the empty session.
    """

    __slots__ = ("sender", "receiver", "session", "payload", "seq", "kind", "root")

    def __init__(
        self,
        sender: int,
        receiver: int,
        session: SessionId,
        payload: Tuple[Any, ...],
        seq: int = 0,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.session = session
        self.payload = payload
        self.seq = seq
        self.kind = payload[0] if payload else None
        self.root = session[0] if session else None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.sender == other.sender
            and self.receiver == other.receiver
            and self.session == other.session
            and self.payload == other.payload
            and self.seq == other.seq
        )

    def __hash__(self) -> int:
        return hash((self.sender, self.receiver, self.session, self.payload, self.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Message(sender={self.sender!r}, receiver={self.receiver!r}, "
            f"session={self.session!r}, payload={self.payload!r}, seq={self.seq!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Message(#{self.seq} {self.sender}->{self.receiver} "
            f"{'/'.join(map(str, self.session))} {self.payload!r})"
        )


def session_child(session: SessionId, *components: Any) -> SessionId:
    """Return the session id of a child protocol under ``session``."""
    return tuple(session) + tuple(components)


def session_is_descendant(session: SessionId, ancestor: SessionId) -> bool:
    """Return True when ``session`` equals or lies below ``ancestor``."""
    return len(session) >= len(ancestor) and tuple(session[: len(ancestor)]) == tuple(
        ancestor
    )
