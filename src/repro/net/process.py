"""Process: one simulated party hosting a tree of protocol instances.

The process routes incoming messages to protocol instances by session id,
buffers messages for sessions that have not been created yet (a constant
occurrence in asynchronous protocols, where parties start sub-protocols at
different times), applies the shunning rule, and exposes the sending path to
its protocols.

A process may be *corrupted* by installing a behaviour object (see
``repro.adversary.behaviors``); from then on the behaviour, not the honest
protocol tree, decides how to react to deliveries.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.config import ProtocolParams
from repro.net.message import Message, SessionId
from repro.net.protocol import Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.adversary.behaviors import Behavior
    from repro.net.network import Network


class Process:
    """One party of the distributed system."""

    __slots__ = (
        "pid",
        "params",
        "network",
        "rng",
        "protocols",
        "_protocols_get",
        "_pending",
        "_shunned_from",
        "_creation_counter",
        "behavior",
        "outgoing_mutator",
        "ever_corrupted",
    )

    def __init__(
        self,
        pid: int,
        params: ProtocolParams,
        network: "Network",
        rng: random.Random,
    ) -> None:
        self.pid = pid
        self.params = params
        self.network = network
        self.rng = rng
        self.protocols: Dict[SessionId, Protocol] = {}
        #: Bound ``protocols.get``, cached for the per-delivery routing lookup.
        self._protocols_get = self.protocols.get
        self._pending: Dict[SessionId, List[Tuple[int, tuple]]] = {}
        #: party id -> creation index after which its messages are ignored.
        self._shunned_from: Dict[int, int] = {}
        self._creation_counter = 0
        #: Optional adversarial behaviour; None means honest.
        self.behavior: Optional["Behavior"] = None
        #: Sticky corruption flag: once the adversary has controlled this
        #: party it stays attributed to the adversary for budget and
        #: honest-output accounting, even after a scenario ``restart``
        #: returns it to running honest code (restart refunds nothing).
        self.ever_corrupted = False
        #: Optional hook mutating outgoing (receiver, session, payload) tuples;
        #: returning None drops the message.  Used by honest-but-mutating
        #: adversaries.
        self.outgoing_mutator: Optional[
            Callable[[int, SessionId, tuple], Optional[tuple]]
        ] = None

    # ------------------------------------------------------------------
    # Corruption.
    # ------------------------------------------------------------------
    @property
    def is_corrupted(self) -> bool:
        """True when an adversarial behaviour has been installed."""
        return self.behavior is not None

    def corrupt(self, behavior: "Behavior") -> None:
        """Install ``behavior``; the process stops acting honestly."""
        # Register with the network first: completion counters must treat any
        # activity during ``attach`` (behaviours may send immediately) as
        # adversarial, and any completions this party already contributed
        # must be retracted.
        self.network.register_corruption(self)
        self.ever_corrupted = True
        self.behavior = behavior
        behavior.attach(self)
        self.network.trace.on_corrupt(self.network.step_count, self.pid)

    def reinitialize(self) -> None:
        """Rejoin with fresh protocol state (the scenario ``restart`` path).

        Drops the adversarial behaviour, the outgoing mutator, the entire
        protocol tree, buffered messages and shun state: the party comes back
        indistinguishable from a freshly constructed honest process (its RNG
        stream continues -- a restarted party does not rewind randomness).
        ``ever_corrupted`` stays set: the adversary paid for this party and a
        restart refunds nothing, so completions and outputs remain excluded
        from the honest accounting.
        """
        self.behavior = None
        self.outgoing_mutator = None
        self.protocols = {}
        self._protocols_get = self.protocols.get
        self._pending = {}
        self._shunned_from = {}
        self._creation_counter = 0

    # ------------------------------------------------------------------
    # Protocol management.
    # ------------------------------------------------------------------
    def create_protocol(
        self,
        session: SessionId,
        factory: Callable[["Process", SessionId], Protocol],
    ) -> Protocol:
        """Create the protocol instance for ``session`` (or return the existing one).

        Messages buffered for the session stay buffered until the instance is
        *started* (see :meth:`flush_pending`): protocols must never observe
        traffic before their ``on_start`` has initialised their state.
        """
        session = self.network.intern_session(session)
        existing = self.protocols.get(session)
        if existing is not None:
            return existing
        instance = factory(self, session)
        instance.birth_index = self._creation_counter
        self._creation_counter += 1
        self.protocols[session] = instance
        network = self.network
        network.trace.on_session_open(network.step_count, self.pid, session)
        director = network.director
        if director is not None:
            # Scenario hook: adaptive adversaries may corrupt this party (or
            # others) the moment a session opens, before the instance starts.
            director.on_session_open(self.pid, session)
        return instance

    def flush_pending(self, instance: Protocol) -> None:
        """Deliver messages buffered for ``instance`` (called right after start)."""
        buffered = self._pending.pop(instance.session, [])
        for sender, payload in buffered:
            if not self._is_shunned_for(sender, instance):
                instance.on_message(sender, payload)

    def protocol(self, session: SessionId) -> Optional[Protocol]:
        """Return the protocol instance for ``session`` if it exists."""
        return self.protocols.get(tuple(session))

    # ------------------------------------------------------------------
    # Sending / receiving.
    # ------------------------------------------------------------------
    def send(self, receiver: int, session: SessionId, payload: tuple) -> None:
        """Send one message; applies the outgoing mutator when installed.

        ``session`` and ``payload`` must already be tuples (every in-tree
        caller passes the protocol's interned session and a packed payload
        tuple), so the hot path makes no defensive copies.  Mutator results
        are re-normalised since mutators may return arbitrary sequences.
        """
        if self.outgoing_mutator is not None:
            mutated = self.outgoing_mutator(receiver, tuple(session), payload)
            if mutated is None:
                return
            receiver, session, payload = mutated
            session = tuple(session)
            payload = tuple(payload)
        self.network.submit(self.pid, receiver, session, payload)

    def deliver(self, message: Message) -> None:
        """Handle a message delivered by the network to this party."""
        behavior = self.behavior
        if behavior is not None:
            behavior.on_message(message)
            return
        instance = self._protocols_get(message.session)
        if instance is None or not instance.started:
            self._pending.setdefault(message.session, []).append(
                (message.sender, message.payload)
            )
            return
        # Shun check inlined (most runs never shun anyone; skip the dict
        # probe entirely while the shun map is empty).
        shunned = self._shunned_from
        if shunned:
            threshold = shunned.get(message.sender)
            if threshold is not None and instance.birth_index >= threshold:
                network = self.network
                network.trace.on_drop(network.step_count, message, "shunned")
                meter = network.meter
                if meter is not None:
                    meter.count_drop("shunned")
                return
        instance.on_message(message.sender, message.payload)

    def deliver_parts(self, sender: int, session, payload: tuple, entry, bitpos: int) -> None:
        """Deliver one unmaterialised fan-out copy (the group-mode fast path).

        Semantically identical to building ``entry.materialize(bitpos)`` and
        calling :meth:`deliver`; the Message object is only created for the
        consumers that genuinely need one (an installed behaviour, or the
        trace argument of a shun drop).
        """
        behavior = self.behavior
        if behavior is not None:
            behavior.on_message(entry.materialize(bitpos))
            return
        instance = self._protocols_get(session)
        if instance is None or not instance.started:
            self._pending.setdefault(session, []).append((sender, payload))
            return
        shunned = self._shunned_from
        if shunned:
            threshold = shunned.get(sender)
            if threshold is not None and instance.birth_index >= threshold:
                # Materialise the dropped copy only if a trace will record it
                # (this path normally runs with tracing off, where on_drop is
                # a no-op and the Message would be built just to be thrown
                # away; step_count may also lag the fast loop's local here).
                network = self.network
                trace = network.trace
                if trace.enabled:
                    trace.on_drop(
                        network.step_count, entry.materialize(bitpos), "shunned"
                    )
                else:
                    meter = network.meter
                    if meter is not None:
                        meter.count_drop("shunned")
                return
        instance.on_message(sender, payload)

    # ------------------------------------------------------------------
    # Shunning (Definition 3.2): once party i shuns party j, it accepts j's
    # messages in interactions that already existed, but drops them in every
    # interaction created afterwards.
    # ------------------------------------------------------------------
    def shun(self, party: int, session: SessionId) -> None:
        """Start shunning ``party`` from now on (recorded against ``session``)."""
        if party == self.pid:
            return
        if party not in self._shunned_from:
            self._shunned_from[party] = self._creation_counter
            network = self.network
            network.trace.on_shun(
                network.step_count, self.pid, party, tuple(session)
            )
            meter = network.meter
            if meter is not None:
                meter.count_shun()

    def is_shunning(self, party: int) -> bool:
        """True when this process has ever shunned ``party``."""
        return party in self._shunned_from

    def _is_shunned_for(self, sender: int, instance: Protocol) -> bool:
        threshold = self._shunned_from.get(sender)
        if threshold is None:
            return False
        return instance.birth_index >= threshold

    # ------------------------------------------------------------------
    # Completion bookkeeping.
    # ------------------------------------------------------------------
    def notify_completion(self, instance: Protocol) -> None:
        """Record a protocol completion (network counters + trace)."""
        network = self.network
        network.record_completion(self.pid, instance.session)
        trace = network.trace
        if trace.enabled:
            trace.on_complete(
                network.step_count, self.pid, instance.session, instance.output
            )

    # ------------------------------------------------------------------
    def root_protocols(self) -> List[Protocol]:
        """All protocol instances whose session has length 1."""
        return [p for s, p in self.protocols.items() if len(s) == 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        tag = "corrupted" if self.is_corrupted else "honest"
        return f"<Process {self.pid} ({tag}) protocols={len(self.protocols)}>"
