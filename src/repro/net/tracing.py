"""Execution tracing and metrics for simulated protocol runs.

Every :class:`~repro.net.network.Network` owns a :class:`Trace`.  Protocols and
the runtime record events into it; benchmarks and tests read aggregate
statistics (message counts, delivery counts, shunning events, completion
times) from it after the run.

Event retention is tiered rather than all-or-nothing:

* ``keep_events=False`` (default) -- aggregate counters only, no event
  objects retained.
* ``keep_events=True`` or an ``int`` -- a bounded ring buffer (default
  capacity :data:`DEFAULT_EVENT_CAPACITY`); the oldest events are evicted
  once full and counted in :attr:`Trace.events_dropped`.
* ``keep_events="all"`` -- the historical unbounded list, for short runs
  that need the complete event stream in memory.
* :meth:`Trace.add_sink` -- streaming consumers (:mod:`repro.obs.sinks`)
  that observe every event as it is recorded, independent of retention:
  a JSONL writer can stream a multi-million-event run that keeps nothing
  in memory.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.net.message import Message, SessionId

#: Ring-buffer capacity used by ``keep_events=True``.
DEFAULT_EVENT_CAPACITY = 65536


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record.

    Attributes:
        step: network step counter at which the event occurred.
        kind: event category (``send``, ``deliver``, ``drop``, ``complete``,
            ``shun``, ``corrupt``, ``phase``, ``session_open``, ``director``,
            ``note``).
        party: the party the event concerns (receiver for deliveries, the
            shunning party for shun events), or None for global events.
        detail: free-form event payload.
    """

    step: int
    kind: str
    party: Optional[int]
    detail: Any


def _noop(*_args: Any, **_kwargs: Any) -> None:
    """Shared do-nothing sink for disabled traces."""


class Trace:
    """Collects events and aggregate metrics for one simulated execution.

    With ``enabled=False`` every recording hook (``on_send``, ``on_deliver``,
    ``on_drop``, ``on_complete``, ``on_shun``, ``on_corrupt``, ``on_phase``,
    ``on_session_open``, ``on_director``, ``note``, ``record``) is rebound to
    a shared no-op at construction time, so the network's hot loop pays one
    trivially-dispatched call and zero message-formatting or counter work per
    event.  Counters then stay at zero and no completions/shun events are
    recorded -- throughput campaigns with ``tracing=False`` read their
    headline counts from the group meter (:mod:`repro.obs.meter`) instead.
    """

    def __init__(
        self, keep_events: Union[bool, int, str] = False, enabled: bool = True
    ) -> None:
        #: Retention policy as passed in (False / True / int capacity / "all").
        self.keep_events = keep_events
        #: When False, all recording hooks are no-ops and metrics stay empty.
        self.enabled = enabled
        #: Events evicted from the ring buffer once its capacity was reached.
        self.events_dropped = 0
        #: Streaming consumers fed every recorded event (see ``add_sink``).
        self.sinks: List[Any] = []
        if keep_events == "all":
            self._events: Optional[Any] = []
            self._capacity: Optional[int] = None
        elif keep_events is True:
            self._events = deque()
            self._capacity = DEFAULT_EVENT_CAPACITY
        elif isinstance(keep_events, int) and keep_events > 0:
            self._events = deque()
            self._capacity = keep_events
        elif not keep_events:
            self._events = None
            self._capacity = None
        else:
            raise ValueError(
                f"keep_events must be False, True, a positive int or 'all', "
                f"got {keep_events!r}"
            )
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.sent_by_root: Counter = Counter()
        self.sent_by_kind: Counter = Counter()
        self.dropped_by_reason: Counter = Counter()
        self.completions: Dict[Tuple[int, SessionId], Tuple[int, Any]] = {}
        self.shun_events: List[Tuple[int, int, SessionId]] = []
        self.notes: List[Tuple[int, Any]] = []
        if enabled and self._events is None:
            # The aggregate counters stay live, but per-event record() calls
            # are no-ops unless events are retained or streamed -- rebinding
            # removes their body from every hook on the hot path.  add_sink()
            # deletes the instance binding again when a sink arrives.
            self.record = _noop  # type: ignore[method-assign]
        if not enabled:
            # Rebinding beats per-call `if self.enabled` checks: the flag test
            # would tax the enabled path too, and this keeps the disabled path
            # free of even the Message property accesses below.
            self.record = _noop  # type: ignore[method-assign]
            self.on_send = _noop  # type: ignore[method-assign]
            self.on_deliver = _noop  # type: ignore[method-assign]
            self.on_drop = _noop  # type: ignore[method-assign]
            self.on_complete = _noop  # type: ignore[method-assign]
            self.on_shun = _noop  # type: ignore[method-assign]
            self.on_corrupt = _noop  # type: ignore[method-assign]
            self.on_phase = _noop  # type: ignore[method-assign]
            self.on_session_open = _noop  # type: ignore[method-assign]
            self.on_director = _noop  # type: ignore[method-assign]
            self.note = _noop  # type: ignore[method-assign]

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events (oldest first; empty when nothing is kept)."""
        if self._events is None:
            return []
        return list(self._events)

    def add_sink(self, sink: Any) -> Any:
        """Attach a streaming event consumer and return it.

        The sink's ``emit(event)`` is called for every subsequently recorded
        :class:`TraceEvent`, regardless of the retention policy.  Sinks
        require an enabled trace -- with ``tracing=False`` no events exist to
        stream, so attaching one raises :class:`ValueError` instead of
        silently observing nothing.
        """
        if not self.enabled:
            raise ValueError(
                "cannot attach a sink to a disabled trace; run with tracing "
                "enabled (sinks consume trace events)"
            )
        if "record" in self.__dict__:
            # record() was rebound to the shared no-op because nothing was
            # retained; restore the class method so events flow to the sink.
            del self.record
        self.sinks.append(sink)
        return sink

    def close_sinks(self) -> None:
        """Flush and close every attached sink (idempotent per sink)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def record(self, step: int, kind: str, party: Optional[int], detail: Any) -> None:
        """Store/stream a raw event per the retention policy and sinks."""
        event = TraceEvent(step, kind, party, detail)
        events = self._events
        if events is not None:
            if self._capacity is not None and len(events) == self._capacity:
                events.popleft()
                self.events_dropped += 1
            events.append(event)
        for sink in self.sinks:
            sink.emit(event)

    def on_send(self, step: int, message: Message) -> None:
        """Record that ``message`` was handed to the network."""
        self.messages_sent += 1
        self.sent_by_root[message.root] += 1
        self.sent_by_kind[message.kind] += 1
        self.record(step, "send", message.sender, message)

    def on_deliver(self, step: int, message: Message) -> None:
        """Record that ``message`` was delivered to its receiver."""
        self.messages_delivered += 1
        self.record(step, "deliver", message.receiver, message)

    def on_drop(self, step: int, message: Message, reason: str) -> None:
        """Record that ``message`` was dropped (e.g. sender shunned)."""
        self.messages_dropped += 1
        self.dropped_by_reason[reason] += 1
        self.record(step, "drop", message.receiver, (reason, message))

    def on_complete(self, step: int, party: int, session: SessionId, value: Any) -> None:
        """Record the first completion of ``session`` at ``party``."""
        key = (party, tuple(session))
        if key not in self.completions:
            self.completions[key] = (step, value)
        self.record(step, "complete", party, (session, value))

    def on_shun(self, step: int, shunner: int, shunned: int, session: SessionId) -> None:
        """Record that ``shunner`` started shunning ``shunned`` in ``session``."""
        self.shun_events.append((shunner, shunned, tuple(session)))
        self.record(step, "shun", shunner, (shunned, session))

    def on_corrupt(self, step: int, party: int) -> None:
        """Record that ``party`` was corrupted by the adversary."""
        self.record(step, "corrupt", party, None)

    def on_phase(self, step: int, party: int, session: SessionId, phase: str) -> None:
        """Record that ``party`` entered ``phase`` of ``session``.

        Protocols annotate their milestones through
        :meth:`repro.net.protocol.Protocol.annotate_phase` (SVSS row/ready,
        ABA rounds, coin iterations); the timeline builder turns these into
        per-party phase spans.
        """
        self.record(step, "phase", party, (session, phase))

    def on_session_open(self, step: int, party: int, session: SessionId) -> None:
        """Record that ``party`` instantiated a protocol for ``session``."""
        self.record(step, "session_open", party, session)

    def on_director(self, step: int, action: str, party: Optional[int], detail: Any) -> None:
        """Record a scenario-director action (corrupt/silence/recover/...)."""
        self.record(step, "director", party, (action, detail))

    def note(self, step: int, detail: Any) -> None:
        """Record a free-form annotation."""
        self.notes.append((step, detail))
        self.record(step, "note", None, detail)

    # ------------------------------------------------------------------
    # Aggregate queries used by tests and benchmarks.
    # ------------------------------------------------------------------
    def completion_step(self, party: int, session: SessionId) -> Optional[int]:
        """Step at which ``party`` completed ``session``, or None."""
        entry = self.completions.get((party, tuple(session)))
        return None if entry is None else entry[0]

    def completed_value(self, party: int, session: SessionId) -> Optional[Any]:
        """Output value of ``party`` for ``session``, or None if not completed."""
        entry = self.completions.get((party, tuple(session)))
        return None if entry is None else entry[1]

    def total_shun_events(self) -> int:
        """Number of shunning events recorded in this execution."""
        return len(self.shun_events)

    def summary(self) -> Dict[str, Any]:
        """Return a dictionary of headline metrics for reporting."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "completions": len(self.completions),
            "shun_events": len(self.shun_events),
            "sent_by_root": dict(self.sent_by_root),
            "sent_by_kind": dict(self.sent_by_kind),
            "dropped_by_reason": dict(self.dropped_by_reason),
            "events_dropped": self.events_dropped,
        }
