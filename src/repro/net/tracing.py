"""Execution tracing and metrics for simulated protocol runs.

Every :class:`~repro.net.network.Network` owns a :class:`Trace`.  Protocols and
the runtime record events into it; benchmarks and tests read aggregate
statistics (message counts, delivery counts, shunning events, completion
times) from it after the run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.net.message import Message, SessionId


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record.

    Attributes:
        step: network step counter at which the event occurred.
        kind: event category (``send``, ``deliver``, ``drop``, ``complete``,
            ``shun``, ``corrupt``, ``note``).
        party: the party the event concerns (receiver for deliveries, the
            shunning party for shun events), or None for global events.
        detail: free-form event payload.
    """

    step: int
    kind: str
    party: Optional[int]
    detail: Any


def _noop(*_args: Any, **_kwargs: Any) -> None:
    """Shared do-nothing sink for disabled traces."""


class Trace:
    """Collects events and aggregate metrics for one simulated execution.

    With ``enabled=False`` every recording hook (``on_send``, ``on_deliver``,
    ``on_drop``, ``on_complete``, ``on_shun``, ``on_corrupt``, ``note``,
    ``record``) is rebound to a shared no-op at construction time, so the
    network's hot loop pays one trivially-dispatched call and zero
    message-formatting or counter work per event.  Counters then stay at
    zero and no completions/shun events are recorded -- use a disabled trace
    only for throughput campaigns that read protocol outputs, not metrics.
    """

    def __init__(self, keep_events: bool = False, enabled: bool = True) -> None:
        #: When True the full event list is retained (memory heavy for large
        #: runs); aggregate counters are always maintained while enabled.
        self.keep_events = keep_events
        #: When False, all recording hooks are no-ops and metrics stay empty.
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.sent_by_root: Counter = Counter()
        self.sent_by_kind: Counter = Counter()
        self.completions: Dict[Tuple[int, SessionId], Tuple[int, Any]] = {}
        self.shun_events: List[Tuple[int, int, SessionId]] = []
        self.notes: List[Tuple[int, Any]] = []
        if enabled and not keep_events:
            # The aggregate counters stay live, but per-event record() calls
            # are no-ops unless the event list is kept -- rebinding removes
            # their body from every hook on the hot path.
            self.record = _noop  # type: ignore[method-assign]
        if not enabled:
            # Rebinding beats per-call `if self.enabled` checks: the flag test
            # would tax the enabled path too, and this keeps the disabled path
            # free of even the Message property accesses below.
            self.record = _noop  # type: ignore[method-assign]
            self.on_send = _noop  # type: ignore[method-assign]
            self.on_deliver = _noop  # type: ignore[method-assign]
            self.on_drop = _noop  # type: ignore[method-assign]
            self.on_complete = _noop  # type: ignore[method-assign]
            self.on_shun = _noop  # type: ignore[method-assign]
            self.on_corrupt = _noop  # type: ignore[method-assign]
            self.note = _noop  # type: ignore[method-assign]

    def record(self, step: int, kind: str, party: Optional[int], detail: Any) -> None:
        """Append a raw event (only stored when ``keep_events`` is set)."""
        if self.keep_events:
            self.events.append(TraceEvent(step, kind, party, detail))

    def on_send(self, step: int, message: Message) -> None:
        """Record that ``message`` was handed to the network."""
        self.messages_sent += 1
        self.sent_by_root[message.root] += 1
        self.sent_by_kind[message.kind] += 1
        self.record(step, "send", message.sender, message)

    def on_deliver(self, step: int, message: Message) -> None:
        """Record that ``message`` was delivered to its receiver."""
        self.messages_delivered += 1
        self.record(step, "deliver", message.receiver, message)

    def on_drop(self, step: int, message: Message, reason: str) -> None:
        """Record that ``message`` was dropped (e.g. sender shunned)."""
        self.messages_dropped += 1
        self.record(step, "drop", message.receiver, (reason, message))

    def on_complete(self, step: int, party: int, session: SessionId, value: Any) -> None:
        """Record the first completion of ``session`` at ``party``."""
        key = (party, tuple(session))
        if key not in self.completions:
            self.completions[key] = (step, value)
        self.record(step, "complete", party, (session, value))

    def on_shun(self, step: int, shunner: int, shunned: int, session: SessionId) -> None:
        """Record that ``shunner`` started shunning ``shunned`` in ``session``."""
        self.shun_events.append((shunner, shunned, tuple(session)))
        self.record(step, "shun", shunner, (shunned, session))

    def on_corrupt(self, step: int, party: int) -> None:
        """Record that ``party`` was corrupted by the adversary."""
        self.record(step, "corrupt", party, None)

    def note(self, step: int, detail: Any) -> None:
        """Record a free-form annotation."""
        self.notes.append((step, detail))
        self.record(step, "note", None, detail)

    # ------------------------------------------------------------------
    # Aggregate queries used by tests and benchmarks.
    # ------------------------------------------------------------------
    def completion_step(self, party: int, session: SessionId) -> Optional[int]:
        """Step at which ``party`` completed ``session``, or None."""
        entry = self.completions.get((party, tuple(session)))
        return None if entry is None else entry[0]

    def completed_value(self, party: int, session: SessionId) -> Optional[Any]:
        """Output value of ``party`` for ``session``, or None if not completed."""
        entry = self.completions.get((party, tuple(session)))
        return None if entry is None else entry[1]

    def total_shun_events(self) -> int:
        """Number of shunning events recorded in this execution."""
        return len(self.shun_events)

    def summary(self) -> Dict[str, Any]:
        """Return a dictionary of headline metrics for reporting."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "completions": len(self.completions),
            "shun_events": len(self.shun_events),
            "sent_by_root": dict(self.sent_by_root),
        }
