"""Message schedulers: the formal "adversary" of the asynchronous model.

In the asynchronous model the only power the environment has over message
delivery is *ordering*: every message is eventually delivered, but the
adversary decides when.  A :class:`Scheduler` captures exactly this power --
at each network step it inspects the multiset of in-flight messages and
chooses which one is delivered next.

Provided schedulers:

* :class:`FIFOScheduler` -- deliver in send order (a synchronous-looking run).
* :class:`RandomScheduler` -- deliver a uniformly random pending message.
* :class:`DelayScheduler` -- starve messages matching a predicate for as long
  as any other message is available (classic adversarial delay).
* :class:`PartitionScheduler` -- delay messages crossing a party partition for
  a configurable number of steps.
* :class:`TargetedScheduler` -- order messages by an arbitrary priority key.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Sequence, Set

from repro.errors import SchedulingError
from repro.net.message import Message
from repro.net.queues import (
    DeliveryQueue,
    FifoQueue,
    KeyedQueue,
    ScanQueue,
    SendOrderRandomQueue,
    TwoClassRandomQueue,
)


class Scheduler(ABC):
    """Chooses which pending message the network delivers next."""

    @abstractmethod
    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        """Return the index (into ``pending``) of the message to deliver.

        Args:
            pending: the non-empty sequence of in-flight messages.
            rng: the network's random source (use this, never ``random``).
            step: the network's step counter, for time-dependent strategies.
        """

    def make_queue(self) -> DeliveryQueue:
        """The delivery-queue strategy backing this scheduler.

        The default is the legacy full scan (:class:`~repro.net.queues.ScanQueue`
        driving :meth:`choose` once per step), which is correct for any
        scheduler.  Schedulers whose policy maps onto an indexed structure
        override this to get O(1)/O(log m) deliveries; every override must
        reproduce the scan path's delivery order byte-identically
        (``tests/net/test_queues.py``).
        """
        return ScanQueue(self)

    def validate(self, choice: int, pending: Sequence[Message]) -> int:
        """Check a choice is in range; raise :class:`SchedulingError` otherwise."""
        if not 0 <= choice < len(pending):
            raise SchedulingError(
                f"scheduler chose index {choice} out of {len(pending)} pending messages"
            )
        return choice


class FIFOScheduler(Scheduler):
    """Delivers messages in the order they were sent."""

    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        best = 0
        best_seq = pending[0].seq
        for index, message in enumerate(pending):
            if message.seq < best_seq:
                best, best_seq = index, message.seq
        return best

    def make_queue(self) -> DeliveryQueue:
        if type(self) is not FIFOScheduler:
            # A subclass may have overridden choose(); only the exact built-in
            # policy is safe to map onto the indexed queue.
            return ScanQueue(self)
        # Sequence numbers are assigned in submit order, so min-seq == oldest.
        return FifoQueue()


class RandomScheduler(Scheduler):
    """Delivers a uniformly random pending message.

    This is the default scheduler: it exercises genuinely asynchronous
    interleavings while remaining fair (every message is delivered with
    probability 1).
    """

    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        return rng.randrange(len(pending))

    def make_queue(self) -> DeliveryQueue:
        if type(self) is not RandomScheduler:
            return ScanQueue(self)
        # Rank-indexed: consumes the same single randrange per step as the
        # scan path and delivers the same message (see queues module docs).
        return SendOrderRandomQueue()


class DelayScheduler(Scheduler):
    """Starves messages matching ``should_delay`` while anything else is pending.

    The matched messages are still delivered eventually (when they are the
    only ones left, or after ``max_delay_steps``), so the run remains a valid
    asynchronous execution.

    ``should_delay`` must be a **pure function of the message**: with the
    default random base policy the class runs on an indexed two-class queue
    (:class:`~repro.net.queues.TwoClassRandomQueue`) that evaluates the
    predicate once, at submit time.  A predicate closing over mutable state
    would be consulted at different times than the legacy per-step scan and
    silently change delivery order; wrap such a scheduler in
    :func:`force_scan` (or pass a non-default ``base``) to pin the
    re-evaluating scan path instead.
    """

    def __init__(
        self,
        should_delay: Callable[[Message], bool],
        base: Scheduler | None = None,
        max_delay_steps: int | None = None,
    ) -> None:
        self.should_delay = should_delay
        self.base = base or RandomScheduler()
        self.max_delay_steps = max_delay_steps

    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        expired = (
            self.max_delay_steps is not None and step >= self.max_delay_steps
        )
        if not expired:
            preferred = [
                index
                for index, message in enumerate(pending)
                if not self.should_delay(message)
            ]
            if preferred:
                sub = [pending[index] for index in preferred]
                inner = self.base.choose(sub, rng, step)
                return preferred[self.base.validate(inner, sub)]
        return self.base.validate(self.base.choose(pending, rng, step), pending)

    def make_queue(self) -> DeliveryQueue:
        if type(self) is not DelayScheduler or type(self.base) is not RandomScheduler:
            # A subclass (or a non-random base policy) may not match the
            # two-class rank semantics; keep the reference scan path.
            return ScanQueue(self)
        # ``should_delay`` is required to be a pure function of the message
        # (see class docstring); the indexed queue evaluates it at submit
        # time and reproduces the scan path's delivery order byte-identically.
        should_delay = self.should_delay
        return TwoClassRandomQueue(
            lambda message: not should_delay(message),
            expires_at=self.max_delay_steps,
        )


class PartitionScheduler(Scheduler):
    """Delays all traffic between two party groups for ``duration`` steps.

    After ``duration`` network steps the partition heals and the base
    scheduler takes over completely.

    The groups must not be mutated after construction: with the default
    random base policy the partition check runs once per message at submit
    time on the indexed two-class queue (see :class:`DelayScheduler` -- the
    same purity requirement and :func:`force_scan` escape hatch apply).
    """

    def __init__(
        self,
        group_a: Iterable[int],
        group_b: Iterable[int],
        duration: int,
        base: Scheduler | None = None,
    ) -> None:
        self.group_a: Set[int] = set(group_a)
        self.group_b: Set[int] = set(group_b)
        self.duration = duration
        self.base = base or RandomScheduler()

    def _crosses(self, message: Message) -> bool:
        a_to_b = message.sender in self.group_a and message.receiver in self.group_b
        b_to_a = message.sender in self.group_b and message.receiver in self.group_a
        return a_to_b or b_to_a

    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        if step < self.duration:
            preferred = [
                index
                for index, message in enumerate(pending)
                if not self._crosses(message)
            ]
            if preferred:
                sub = [pending[index] for index in preferred]
                inner = self.base.choose(sub, rng, step)
                return preferred[self.base.validate(inner, sub)]
        return self.base.validate(self.base.choose(pending, rng, step), pending)

    def make_queue(self) -> DeliveryQueue:
        if type(self) is not PartitionScheduler or type(self.base) is not RandomScheduler:
            return ScanQueue(self)
        # ``_crosses`` is a pure function of the message's sender/receiver, so
        # the partition maps onto the indexed two-class queue (expiring at the
        # heal step) with scan-identical delivery order.
        return TwoClassRandomQueue(
            lambda message: not self._crosses(message), expires_at=self.duration
        )


class TargetedScheduler(Scheduler):
    """Delivers the pending message minimising ``priority(message)``.

    Ties are broken by send order.  Useful for building precise adversarial
    schedules in tests (e.g. "deliver everything to party 0 before party 1
    hears anything").

    By default the policy runs on an indexed heap with the priority computed
    once per message at submit time; pass ``dynamic=True`` when the priority
    function is *not* a pure function of the message (e.g. it closes over
    mutable state) to fall back to re-evaluating it on every step.
    """

    def __init__(
        self, priority: Callable[[Message], float], dynamic: bool = False
    ) -> None:
        self.priority = priority
        self.dynamic = dynamic

    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        best = 0
        best_key = (self.priority(pending[0]), pending[0].seq)
        for index, message in enumerate(pending):
            key = (self.priority(message), message.seq)
            if key < best_key:
                best, best_key = index, key
        return best

    def make_queue(self) -> DeliveryQueue:
        if self.dynamic or type(self) is not TargetedScheduler:
            return ScanQueue(self)
        return KeyedQueue(self.priority)


class ForceScanScheduler(Scheduler):
    """Wrapper pinning ``inner`` to the legacy full-scan delivery path.

    The equivalence tests and the perf harness use this to run the exact
    pre-indexed-queue delivery loop (``inner.choose`` scan + ``list.pop``)
    regardless of the queue strategy ``inner`` advertises.
    """

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner

    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        return self.inner.choose(pending, rng, step)

    def make_queue(self) -> DeliveryQueue:
        return ScanQueue(self.inner)


def force_scan(scheduler: Scheduler) -> Scheduler:
    """Pin ``scheduler`` to the legacy O(pending) scan-and-pop delivery loop."""
    return ForceScanScheduler(scheduler)


def delay_from_parties(parties: Iterable[int], **kwargs) -> DelayScheduler:
    """Convenience: a :class:`DelayScheduler` starving all messages *sent by* ``parties``."""
    blocked = set(parties)
    return DelayScheduler(lambda message: message.sender in blocked, **kwargs)


def delay_to_parties(parties: Iterable[int], **kwargs) -> DelayScheduler:
    """Convenience: a :class:`DelayScheduler` starving all messages *sent to* ``parties``."""
    blocked = set(parties)
    return DelayScheduler(lambda message: message.receiver in blocked, **kwargs)
