"""Asynchronous network simulation substrate."""

from repro.net.message import Message, SessionId, session_child, session_is_descendant
from repro.net.network import DEFAULT_MAX_STEPS, Network
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation, SimulationResult
from repro.net.queues import (
    DeliveryQueue,
    FanoutEntry,
    FifoQueue,
    KeyedQueue,
    ScanQueue,
    SendOrderRandomQueue,
)
from repro.net.scheduler import (
    DelayScheduler,
    FIFOScheduler,
    ForceScanScheduler,
    PartitionScheduler,
    RandomScheduler,
    Scheduler,
    TargetedScheduler,
    delay_from_parties,
    delay_to_parties,
    force_scan,
)
from repro.net.tracing import Trace, TraceEvent

__all__ = [
    "Message",
    "SessionId",
    "session_child",
    "session_is_descendant",
    "Network",
    "DEFAULT_MAX_STEPS",
    "Process",
    "Protocol",
    "Simulation",
    "SimulationResult",
    "Scheduler",
    "FIFOScheduler",
    "RandomScheduler",
    "DelayScheduler",
    "PartitionScheduler",
    "TargetedScheduler",
    "ForceScanScheduler",
    "force_scan",
    "delay_from_parties",
    "delay_to_parties",
    "DeliveryQueue",
    "FanoutEntry",
    "ScanQueue",
    "FifoQueue",
    "KeyedQueue",
    "SendOrderRandomQueue",
    "Trace",
    "TraceEvent",
]
