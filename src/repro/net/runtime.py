"""High-level simulation driver.

:class:`Simulation` wires one root protocol per party (honest parties run the
real protocol, corrupted parties run an adversarial behaviour), runs the
network until every honest party has produced an output, and returns a
structured :class:`SimulationResult`.

This is the layer the public API (``repro.core.api``), the examples and the
benchmarks build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import ProtocolParams
from repro.errors import ConfigurationError
from repro.net.message import SessionId
from repro.net.network import DEFAULT_MAX_STEPS, Network
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.net.scheduler import Scheduler

#: ``factory(process, session) -> Protocol``
ProtocolFactory = Callable[[Process, SessionId], Protocol]
#: ``behavior_factory(process) -> Behavior`` (imported lazily to avoid cycles)
BehaviorFactory = Callable[[Process], Any]


@dataclass
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes:
        session: the root session that was run.
        outputs: mapping of honest party id to its protocol output.
        steps: number of messages delivered during the run.
        network: the network object, for inspection of the trace.
    """

    session: SessionId
    outputs: Dict[int, Any]
    steps: int
    network: Network

    @property
    def values(self) -> List[Any]:
        """Honest outputs in party-id order."""
        return [self.outputs[pid] for pid in sorted(self.outputs)]

    @property
    def agreed_value(self) -> Any:
        """The single honest output value.

        Raises:
            ValueError: if honest parties disagree (useful in tests asserting
                agreement) or nobody produced an output.
        """
        distinct = {repr(v): v for v in self.outputs.values()}
        if not distinct:
            raise ValueError("no honest party produced an output")
        if len(distinct) > 1:
            raise ValueError(f"honest parties disagree: {self.outputs!r}")
        return next(iter(distinct.values()))

    @property
    def disagreement(self) -> bool:
        """True when two honest parties output different values."""
        values = [repr(v) for v in self.outputs.values()]
        return len(set(values)) > 1

    @property
    def trace(self):
        """The network trace (message counts, shun events, completions)."""
        return self.network.trace


@dataclass
class Simulation:
    """Builder/runner for a single protocol execution.

    Typical use::

        sim = Simulation(ProtocolParams.for_parties(4), seed=7)
        sim.corrupt(3, CrashBehavior.factory())
        result = sim.run(("aba",), make_aba_factory(), inputs={0: 1, 1: 0, 2: 1})
    """

    params: ProtocolParams
    scheduler: Optional[Scheduler] = None
    seed: int = 0
    keep_events: bool = False
    tracing: bool = True
    max_steps: int = DEFAULT_MAX_STEPS
    _corruptions: Dict[int, BehaviorFactory] = field(default_factory=dict)
    network: Optional[Network] = None

    def corrupt(self, pid: int, behavior_factory: BehaviorFactory) -> "Simulation":
        """Mark ``pid`` as corrupted, controlled by ``behavior_factory``."""
        if not self.params.is_valid_party(pid):
            raise ConfigurationError(f"cannot corrupt unknown party {pid}")
        self._corruptions[pid] = behavior_factory
        if len(self._corruptions) > self.params.t:
            raise ConfigurationError(
                f"cannot corrupt more than t={self.params.t} parties "
                f"(requested {len(self._corruptions)})"
            )
        return self

    def build_network(self) -> Network:
        """Create the network and apply corruptions (idempotent)."""
        if self.network is None:
            self.network = Network(
                self.params,
                scheduler=self.scheduler,
                seed=self.seed,
                keep_events=self.keep_events,
                tracing=self.tracing,
            )
            for pid, factory in self._corruptions.items():
                process = self.network.processes[pid]
                process.corrupt(factory(process))
        return self.network

    def run(
        self,
        session: SessionId,
        factory: ProtocolFactory,
        inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        common_input: Optional[Dict[str, Any]] = None,
        until: Optional[Callable[[Network], bool]] = None,
        run_to_quiescence: bool = False,
    ) -> SimulationResult:
        """Run ``factory`` as the root protocol at every honest party.

        Args:
            session: root session id, e.g. ``("fba",)``.
            factory: protocol factory applied at every honest party.
            inputs: per-party keyword arguments passed to ``on_start``.
            common_input: keyword arguments passed to every party's
                ``on_start`` (merged under per-party inputs).
            until: custom stop condition; default is "all honest parties
                completed the root session".
            run_to_quiescence: after the stop condition holds, keep delivering
                the remaining messages (useful when inspecting full traces).
        """
        session = tuple(session)
        network = self.build_network()
        inputs = inputs or {}
        common_input = common_input or {}
        for process in network.processes:
            if process.is_corrupted and not getattr(
                process.behavior, "runs_honest_protocol", False
            ):
                continue
            kwargs = dict(common_input)
            kwargs.update(inputs.get(process.pid, {}))
            instance = process.create_protocol(session, factory)
            if not instance.started:
                instance.start(**kwargs)

        stop = until or (lambda net: net.all_honest_finished(session))
        steps = network.run(until=stop, max_steps=self.max_steps)
        if run_to_quiescence:
            steps += network.run_to_quiescence(max_steps=self.max_steps)
        return SimulationResult(
            session=session,
            outputs=network.honest_outputs(session),
            steps=network.step_count,
            network=network,
        )
