"""High-level simulation driver.

:class:`Simulation` wires one root protocol per party (honest parties run the
real protocol, corrupted parties run an adversarial behaviour), runs the
network until every honest party has produced an output, and returns a
structured :class:`SimulationResult`.

This is the layer the public API (``repro.core.api``), the examples and the
benchmarks build on.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import ProtocolParams
from repro.errors import ConfigurationError
from repro.net.message import SessionId
from repro.net.network import DEFAULT_MAX_STEPS, Network
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.net.scheduler import Scheduler

#: ``factory(process, session) -> Protocol``
ProtocolFactory = Callable[[Process, SessionId], Protocol]
#: ``behavior_factory(process) -> Behavior`` (imported lazily to avoid cycles)
BehaviorFactory = Callable[[Process], Any]


@dataclass
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes:
        session: the root session that was run.
        outputs: mapping of honest party id to its protocol output.
        steps: number of messages delivered during the run.
        network: the network object, for inspection of the trace.
        elapsed_s: wall-clock seconds of the delivery loop (advisory; the
            only non-deterministic field -- aggregation keeps it out of the
            byte-identical statistics and reports it separately as
            deliveries/sec throughput).
    """

    session: SessionId
    outputs: Dict[int, Any]
    steps: int
    network: Network
    elapsed_s: float = 0.0
    #: Snapshot of the structured-metrics registry (``repro.obs.metrics``)
    #: taken at the end of the run, or None when no registry was attached.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def values(self) -> List[Any]:
        """Honest outputs in party-id order."""
        return [self.outputs[pid] for pid in sorted(self.outputs)]

    @cached_property
    def _distinct_outputs(self) -> Dict[str, Any]:
        """``repr(value) -> value`` over the honest outputs, computed once.

        ``agreed_value`` and ``disagreement`` are read per trial by every
        aggregation loop; keying distinctness by ``repr`` (values may be
        unhashable) is the expensive part, so it is cached on the result.
        The outputs of a finished run never change, making the cache safe.
        """
        return {repr(v): v for v in self.outputs.values()}

    @property
    def agreed_value(self) -> Any:
        """The single honest output value.

        Raises:
            ValueError: if honest parties disagree (useful in tests asserting
                agreement) or nobody produced an output.
        """
        distinct = self._distinct_outputs
        if not distinct:
            raise ValueError("no honest party produced an output")
        if len(distinct) > 1:
            raise ValueError(f"honest parties disagree: {self.outputs!r}")
        return next(iter(distinct.values()))

    @property
    def disagreement(self) -> bool:
        """True when two honest parties output different values."""
        return len(self._distinct_outputs) > 1

    @property
    def trace(self):
        """The network trace (message counts, shun events, completions)."""
        return self.network.trace

    @property
    def message_stats(self) -> Optional[Dict[str, Any]]:
        """Headline message counts from whichever tier collected them.

        ``Trace.summary()`` when tracing was on, the group meter's
        equivalent when tracing was off (see
        :meth:`~repro.net.network.Network.message_stats`); None only when
        metering was explicitly disabled.
        """
        return self.network.message_stats()


@dataclass
class Simulation:
    """Builder/runner for a single protocol execution.

    Typical use::

        sim = Simulation(ProtocolParams.for_parties(4), seed=7)
        sim.corrupt(3, CrashBehavior.factory())
        result = sim.run(("aba",), make_aba_factory(), inputs={0: 1, 1: 0, 2: 1})
    """

    params: ProtocolParams
    scheduler: Optional[Scheduler] = None
    seed: int = 0
    keep_events: bool = False
    tracing: bool = True
    max_steps: int = DEFAULT_MAX_STEPS
    #: Pause the cyclic garbage collector while the network runs.  A trial
    #: allocates one Message (plus payload tuples) per send, which repeatedly
    #: trips generation-0 collections that rescan the long-lived
    #: network/process/protocol graph -- a measured ~25% of trial wall time.
    #: The graph itself cannot die mid-run (the simulation holds it), so
    #: collection is pure overhead there; it is re-enabled (and the deferred
    #: garbage collected on the next allocation threshold) as soon as the run
    #: returns.  Disable when running inside a latency-sensitive host that
    #: must not see collector pauses toggled.
    pause_gc: bool = True
    #: Optional scenario director (see :mod:`repro.scenarios.engine`): an
    #: observer installed on the network that may corrupt parties or drive
    #: fault-timeline transitions mid-run.
    director: Optional[Any] = None
    #: Optional shared session-intern table.  Campaign chunks pass one table
    #: across same-topology trials so interned session tuples are allocated
    #: once per chunk instead of once per trial.
    session_table: Optional[Dict[SessionId, SessionId]] = None
    #: Group-meter control for trace-free runs: None engages the meter
    #: whenever tracing is off (the default -- campaigns keep the fast path
    #: and still report message counts); False opts out entirely.
    metering: Optional[bool] = None
    #: Structured-metrics registry: ``True`` attaches a default
    #: :class:`repro.obs.metrics.MetricsRegistry`, or pass a configured
    #: instance.  The snapshot lands on ``SimulationResult.metrics``.
    metrics: Optional[Any] = None
    #: Streaming trace sinks (``repro.obs.sinks``) attached to the trace at
    #: network construction; requires ``tracing=True``.  Sinks are closed
    #: (flushed) when the run finishes.
    sinks: Optional[List[Any]] = None
    #: Ablation switch for the group-mode fan-out queue: ``False`` forces the
    #: flat per-message path even when the queue could batch; ``None``/``True``
    #: keep the automatic choice (see :class:`~repro.net.network.Network`).
    group_mode: Optional[bool] = None
    #: Ablation switch for network-wide session interning; ``False`` allocates
    #: session tuples per caller instead of canonicalising them.
    intern_sessions: bool = True
    #: Ablation switch for the crypto evaluation plan: ``"scalar"`` runs the
    #: whole simulation under a scoped
    #: :func:`repro.crypto.kernels.plan_mode_override`, forcing the plain-int
    #: kernels; ``None``/``"auto"`` keep the numpy-vs-scalar auto choice.
    eval_plan: Optional[str] = None
    _corruptions: Dict[int, BehaviorFactory] = field(default_factory=dict)
    network: Optional[Network] = None

    def corrupt(self, pid: int, behavior_factory: BehaviorFactory) -> "Simulation":
        """Mark ``pid`` as corrupted, controlled by ``behavior_factory``."""
        if not self.params.is_valid_party(pid):
            raise ConfigurationError(f"cannot corrupt unknown party {pid}")
        self._corruptions[pid] = behavior_factory
        if len(self._corruptions) > self.params.t:
            raise ConfigurationError(
                f"cannot corrupt more than t={self.params.t} parties "
                f"(requested {len(self._corruptions)})"
            )
        return self

    def build_network(self) -> Network:
        """Create the network and apply corruptions (idempotent)."""
        if self.network is None:
            if self.metrics is True:
                from repro.obs.metrics import MetricsRegistry

                self.metrics = MetricsRegistry()
            self.network = Network(
                self.params,
                scheduler=self.scheduler,
                seed=self.seed,
                keep_events=self.keep_events,
                tracing=self.tracing,
                session_table=self.session_table,
                metering=self.metering,
                metrics=self.metrics,
                sinks=self.sinks,
                group_mode=self.group_mode,
                intern_sessions=self.intern_sessions,
            )
            for pid, factory in self._corruptions.items():
                process = self.network.processes[pid]
                process.corrupt(factory(process))
            if self.director is not None:
                self.network.install_director(self.director)
        return self.network

    def run(
        self,
        session: SessionId,
        factory: ProtocolFactory,
        inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        common_input: Optional[Dict[str, Any]] = None,
        until: Optional[Callable[[Network], bool]] = None,
        run_to_quiescence: bool = False,
    ) -> SimulationResult:
        """Run ``factory`` as the root protocol at every honest party.

        Args:
            session: root session id, e.g. ``("fba",)``.
            factory: protocol factory applied at every honest party.
            inputs: per-party keyword arguments passed to ``on_start``.
            common_input: keyword arguments passed to every party's
                ``on_start`` (merged under per-party inputs).
            until: custom stop condition; default is "all honest parties
                completed the root session".
            run_to_quiescence: after the stop condition holds, keep delivering
                the remaining messages (useful when inspecting full traces).
        """
        if self.eval_plan is not None and self.eval_plan != "auto":
            # The network (and with it the crypto plane and the metrics
            # baseline) is built lazily inside this call, so a scoped plan
            # override here covers every plan the run constructs or reads.
            from repro.crypto.kernels import plan_mode_override

            with plan_mode_override(self.eval_plan):
                return self._run_impl(
                    session, factory, inputs, common_input, until, run_to_quiescence
                )
        return self._run_impl(
            session, factory, inputs, common_input, until, run_to_quiescence
        )

    def _run_impl(
        self,
        session: SessionId,
        factory: ProtocolFactory,
        inputs: Optional[Dict[int, Dict[str, Any]]],
        common_input: Optional[Dict[str, Any]],
        until: Optional[Callable[[Network], bool]],
        run_to_quiescence: bool,
    ) -> SimulationResult:
        session = tuple(session)
        network = self.build_network()
        registry = self.metrics
        if registry is not None:
            # Process-wide crypto tables (eval plan, Lagrange LRU) persist
            # across trials: snapshot them before any protocol work so the
            # final report is a per-run delta.
            registry.capture_baseline(network)
        inputs = inputs or {}
        common_input = common_input or {}
        # Record how the root protocol is wired so the scenario ``restart``
        # transition can re-open it at a restarted party mid-run.
        network.root_recipe = (session, factory, inputs, common_input)
        for process in network.processes:
            if process.is_corrupted and not getattr(
                process.behavior, "runs_honest_protocol", False
            ):
                continue
            kwargs = dict(common_input)
            kwargs.update(inputs.get(process.pid, {}))
            instance = process.create_protocol(session, factory)
            if not instance.started:
                instance.start(**kwargs)

        pause = self.pause_gc and gc.isenabled()
        if pause:
            gc.disable()
        started_at = time.perf_counter()
        try:
            if until is None:
                # Completion-driven fast path: O(1) counter check per delivery
                # instead of polling a per-process scan (same stop point, same
                # delivery order).
                steps = network.run_until_complete(session, max_steps=self.max_steps)
            else:
                steps = network.run(until=until, max_steps=self.max_steps)
            if run_to_quiescence:
                steps += network.run_to_quiescence(max_steps=self.max_steps)
        finally:
            elapsed = time.perf_counter() - started_at
            if pause:
                gc.enable()
            network.trace.close_sinks()
        return SimulationResult(
            session=session,
            outputs=network.honest_outputs(session),
            steps=network.step_count,
            network=network,
            elapsed_s=elapsed,
            metrics=None if registry is None else registry.finalize(network),
        )
