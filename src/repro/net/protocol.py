"""Protocol base class: the programming model for every protocol in the library.

A :class:`Protocol` instance lives inside a :class:`~repro.net.process.Process`
(one party) and is addressed by a hierarchical session id.  Protocols

* send point-to-point messages with :meth:`Protocol.send` and
  :meth:`Protocol.broadcast`,
* spawn sub-protocols with :meth:`Protocol.spawn` (the child session id is the
  parent's session id extended by a key, so all parties derive the same id
  without coordination),
* deliver their result with :meth:`Protocol.complete`, which notifies the
  parent via :meth:`Protocol.on_child_complete`.

Completion does **not** stop a protocol: as required throughout the paper
("continue participating in all relevant invocations until they terminate"),
a completed protocol keeps processing messages so that slower parties can
still finish.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.core.config import ProtocolParams
from repro.errors import ProtocolError
from repro.net.message import SessionId, session_child

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.process import Process


class Protocol:
    """Base class for all protocol implementations.

    Subclasses override :meth:`on_start`, :meth:`on_message` and (when they
    spawn children) :meth:`on_child_complete`.

    The base class is ``__slots__``-only: message handlers read these
    attributes on every delivery, and slot access skips the per-instance
    dict.  Subclasses that declare their own ``__slots__`` stay dict-free
    (the hot SVSS/coin protocols do); subclasses that don't automatically
    get a ``__dict__`` and may set ad-hoc attributes as before.
    """

    __slots__ = (
        "process",
        "session",
        "parent",
        "children",
        "_child_sessions",
        "spawn_key",
        "started",
        "finished",
        "output",
        "birth_index",
        "pid",
        "params",
        "n",
        "t",
        "rng",
    )

    def __init__(self, process: "Process", session: SessionId) -> None:
        self.process = process
        #: Interned network-wide: all parties (and in-flight messages) share
        #: one tuple object per session, so routing-dict lookups compare by
        #: identity and the send path never copies the session.
        self.session: SessionId = process.network.intern_session(session)
        self.parent: Optional[Protocol] = None
        self.children: Dict[Any, Protocol] = {}
        #: The key this protocol was spawned under (None for roots); lets a
        #: parent with many children map a completion back to its key in O(1)
        #: instead of scanning its children dict.
        self.spawn_key: Any = None
        #: spawn key -> interned child session, so repeated child-session
        #: derivations stop allocating tuples.
        self._child_sessions: Dict[Any, SessionId] = {}
        self.started = False
        self.finished = False
        self.output: Any = None
        #: Monotone creation index assigned by the process; used by the
        #: shunning bookkeeping ("ignore messages in *future* interactions").
        self.birth_index: int = -1
        # Convenience accessors, cached as plain attributes: the process, its
        # parameters and its rng object are fixed for the protocol's lifetime,
        # and message handlers read n/t/pid on every delivery -- a property
        # (two attribute hops + a call) per read is pure overhead.
        #: This party's identifier.
        self.pid: int = process.pid
        #: Protocol parameters (n, t, field prime).
        self.params: ProtocolParams = process.params
        #: Total number of parties.
        self.n: int = process.params.n
        #: Corruption bound.
        self.t: int = process.params.t
        #: This party's private random source.
        self.rng: random.Random = process.rng

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self, **kwargs: Any) -> "Protocol":
        """Start the protocol (at most once).  Returns self for chaining.

        Messages that arrived before the protocol started are delivered
        immediately after ``on_start`` returns, in arrival order.
        """
        if self.started:
            raise ProtocolError(
                f"protocol {self.session} at party {self.pid} started twice"
            )
        self.started = True
        self.on_start(**kwargs)
        self.process.flush_pending(self)
        return self

    def complete(self, value: Any) -> None:
        """Record the protocol output and notify the parent (idempotent)."""
        if self.finished:
            return
        self.finished = True
        self.output = value
        self.process.notify_completion(self)
        if self.parent is not None:
            self.parent.on_child_complete(self)

    def annotate_phase(self, phase: str) -> None:
        """Record that this instance entered ``phase`` (a trace milestone).

        Feeds the session-timeline builder (:mod:`repro.obs.timeline`):
        protocols mark their internal progress points -- SVSS row/ready,
        ABA ``round-k``, coin ``iter-k`` -- as ``phase`` trace events.  A
        no-op when tracing is off (the hook is rebound at construction), so
        the group-mode fast path pays one dead call per milestone.
        """
        network = self.process.network
        network.trace.on_phase(network.step_count, self.pid, self.session, phase)

    # ------------------------------------------------------------------
    # Communication.
    # ------------------------------------------------------------------
    def send(self, receiver: int, *payload: Any) -> None:
        """Send ``payload`` to ``receiver``, addressed to this same session."""
        # Honest parties (no outgoing mutator installed) submit straight to
        # the network: one call level instead of three on the hottest path.
        process = self.process
        if process.outgoing_mutator is None:
            process.network.submit(process.pid, receiver, self.session, payload)
        else:
            process.send(receiver, self.session, payload)

    def broadcast(self, *payload: Any) -> None:
        """Send ``payload`` to every party, including ourselves.

        The self-addressed copy travels through the network like any other
        message, so the scheduler may reorder it; protocols must not assume
        they hear themselves first.
        """
        process = self.process
        if process.outgoing_mutator is None:
            # Honest fast path: one batched submit for all n copies (same
            # sequence numbers and queue order as n individual submits).
            process.network.submit_broadcast(process.pid, self.session, payload)
        else:
            send = process.send
            session = self.session
            for receiver in range(process.params.n):
                send(receiver, session, payload)

    # ------------------------------------------------------------------
    # Sub-protocols.
    # ------------------------------------------------------------------
    def spawn(
        self,
        key: Any,
        factory: Callable[["Process", SessionId], "Protocol"],
        start: bool = True,
        **start_kwargs: Any,
    ) -> "Protocol":
        """Create (and by default start) a child protocol.

        Args:
            key: child key; the child's session id is ``self.session + key``
                when ``key`` is a tuple, else ``self.session + (key,)``.
            factory: ``factory(process, session)`` returning the child.
            start: whether to call :meth:`start` immediately.
            start_kwargs: forwarded to the child's :meth:`on_start`.
        """
        child = self.process.create_protocol(self.child_session(key), factory)
        child.parent = self
        child.spawn_key = key if isinstance(key, tuple) else (key,)
        self.children[key] = child
        if start and not child.started:
            child.start(**start_kwargs)
        return child

    def child(self, key: Any) -> Optional["Protocol"]:
        """Return the child spawned under ``key``, or None."""
        return self.children.get(key)

    def child_session(self, key: Any) -> SessionId:
        """The (interned) session id of the child spawned under ``key``.

        The derived tuple is cached per key and interned network-wide, so
        deriving the same child session twice never allocates.
        """
        cached = self._child_sessions.get(key)
        if cached is None:
            components = key if isinstance(key, tuple) else (key,)
            cached = self.process.network.intern_session(
                session_child(self.session, *components)
            )
            self._child_sessions[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Shunning support (used by SVSS; see Definition 3.2 in the paper).
    # ------------------------------------------------------------------
    def shun(self, party: int) -> None:
        """Shun ``party``: accept nothing from it in protocols created later."""
        self.process.shun(party, self.session)

    # ------------------------------------------------------------------
    # Subclass hooks.
    # ------------------------------------------------------------------
    def on_start(self, **kwargs: Any) -> None:
        """Called once when the protocol starts.  Override in subclasses."""

    def on_message(self, sender: int, payload: tuple) -> None:
        """Called for every message delivered to this session.  Override."""

    def on_child_complete(self, child: "Protocol") -> None:
        """Called when a child spawned by this protocol completes.  Override."""

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "done" if self.finished else ("running" if self.started else "new")
        return (
            f"<{type(self).__name__} pid={self.pid} "
            f"session={'/'.join(map(str, self.session))} {status}>"
        )
