"""The hostile scheduler family: predicate-targeted delivery-order attacks.

The asynchronous adversary's second lever (besides corrupting parties) is
message ordering.  These builders compose the primitives of
:mod:`repro.net.scheduler` -- delay-until-starved, partition-then-heal,
priority rushing -- with the scenario predicate language, so a scenario
starves "all reconstruction traffic" or partitions "the two halves" without
naming pids.  All of them ride the existing ``Scheduler`` / ``make_queue``
machinery, so runs remain deterministic per seed and (where the policy maps
onto an indexed queue) keep their O(log m) delivery fast path.

Every builder takes plain JSON-shaped parameters; party-selector parameters
are resolved against a concrete ``n`` by
:func:`repro.scenarios.engine.ScenarioRuntime` before the build, but explicit
pid lists also work directly from campaign cells.  The builders register
themselves in :data:`repro.experiments.registry.SCHEDULERS`, so campaigns can
name them with or without a scenario.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.registry import SCHEDULERS
from repro.net.message import Message
from repro.net.scheduler import (
    DelayScheduler,
    PartitionScheduler,
    Scheduler,
    TargetedScheduler,
)
from repro.scenarios.predicates import (
    compile_message_predicate,
    match_session,
    resolve_parties,
    validate_session_pattern,
)

#: Scheduler-parameter keys holding party selectors, resolved against ``n``
#: by the scenario runtime before the builder runs.
SELECTOR_PARAMS = ("victims", "group_a", "group_b", "coalition")


def resolve_scheduler_params(params: Mapping[str, Any], n: int) -> Dict[str, Any]:
    """Resolve any party-selector parameters to explicit pid lists."""
    resolved = dict(params)
    for key in SELECTOR_PARAMS:
        if key in resolved:
            resolved[key] = resolve_parties(resolved[key], n)
    return resolved


def targeted_delay(
    victims: Optional[Sequence[int]] = None,
    roots: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    max_delay_steps: Optional[int] = None,
) -> Scheduler:
    """Starve messages touching ``victims`` (or matching ``roots``/``kinds``).

    A message is delayed while anything else is pending when its sender *or*
    receiver is a victim, its root protocol is listed, or its payload kind is
    listed (any listed criterion suffices).  ``max_delay_steps`` bounds the
    starvation so the run remains a valid asynchronous execution even when
    the targeted traffic is all that keeps the protocol alive.
    """
    victim_set = frozenset(victims or ())
    root_set = frozenset(roots or ())
    kind_set = frozenset(kinds or ())

    def should_delay(message: Message) -> bool:
        return (
            message.sender in victim_set
            or message.receiver in victim_set
            or message.root in root_set
            or message.kind in kind_set
        )

    return DelayScheduler(should_delay, max_delay_steps=max_delay_steps)


def session_starvation(
    pattern: Sequence[Any], max_delay_steps: Optional[int] = None
) -> Scheduler:
    """Starve every message addressed to a session matching ``pattern``.

    The classic anti-progress attack against layered protocols: hold back one
    whole sub-protocol layer (e.g. ``["...", "rec", "*"]`` -- all SVSS
    reconstruction sessions) until everything else has drained or the delay
    budget expires.
    """
    pattern = list(pattern)
    validate_session_pattern(pattern)

    def should_delay(message: Message) -> bool:
        return match_session(pattern, message.session) is not None

    return DelayScheduler(should_delay, max_delay_steps=max_delay_steps)


def partition_heal(
    group_a: Sequence[int], group_b: Sequence[int], duration: int
) -> Scheduler:
    """Partition two party groups for ``duration`` deliveries, then heal."""
    return PartitionScheduler(group_a, group_b, duration)


def rushing(coalition: Sequence[int]) -> Scheduler:
    """Deliver intra-``coalition`` traffic first (the rushing adversary).

    The coalition hears every protocol phase before anyone else, maximising
    the information advantage a Byzantine coalition can extract -- the
    scheduling half of a rushing attack.
    """
    coalition_set = frozenset(coalition)

    def priority(message: Message) -> float:
        inside = message.sender in coalition_set and message.receiver in coalition_set
        return 0.0 if inside else 1.0

    return TargetedScheduler(priority)


def message_filter_delay(
    predicate: Mapping[str, Any],
    n: int,
    max_delay_steps: Optional[int] = None,
) -> Scheduler:
    """Starve messages matching a full message-predicate spec.

    The most general member of the family: ``predicate`` is a JSON message
    predicate (senders / receivers / roots / kinds / session), compiled
    against ``n`` (which must therefore be supplied explicitly in the params).
    """
    compiled = compile_message_predicate(predicate, n)
    return DelayScheduler(compiled, max_delay_steps=max_delay_steps)


SCHEDULERS.add("targeted_delay", targeted_delay)
SCHEDULERS.add("session_starvation", session_starvation)
SCHEDULERS.add("partition_heal", partition_heal)
SCHEDULERS.add("rushing", rushing)
SCHEDULERS.add("message_filter_delay", message_filter_delay)
