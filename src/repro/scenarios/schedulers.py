"""The hostile scheduler family: predicate-targeted delivery-order attacks.

The asynchronous adversary's second lever (besides corrupting parties) is
message ordering.  These builders compose the primitives of
:mod:`repro.net.scheduler` -- delay-until-starved, partition-then-heal,
priority rushing -- with the scenario predicate language, so a scenario
starves "all reconstruction traffic" or partitions "the two halves" without
naming pids.  All of them ride the existing ``Scheduler`` / ``make_queue``
machinery, so runs remain deterministic per seed and (where the policy maps
onto an indexed queue) keep their O(log m) delivery fast path.

Every builder takes plain JSON-shaped parameters; party-selector parameters
are resolved against a concrete ``n`` by
:func:`repro.scenarios.engine.ScenarioRuntime` before the build, but explicit
pid lists also work directly from campaign cells.  The builders register
themselves in :data:`repro.experiments.registry.SCHEDULERS`, so campaigns can
name them with or without a scenario.
"""

from __future__ import annotations

import json
import random
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments.registry import SCHEDULERS
from repro.net.message import Message
from repro.net.queues import DeliveryQueue
from repro.net.scheduler import (
    DelayScheduler,
    PartitionScheduler,
    Scheduler,
    TargetedScheduler,
)
from repro.scenarios.predicates import (
    compile_message_predicate,
    match_session,
    resolve_parties,
    validate_session_pattern,
)

#: Scheduler-parameter keys holding party selectors, resolved against ``n``
#: by the scenario runtime before the builder runs.
SELECTOR_PARAMS = ("victims", "group_a", "group_b", "coalition")


def resolve_scheduler_params(params: Mapping[str, Any], n: int) -> Dict[str, Any]:
    """Resolve any party-selector parameters to explicit pid lists."""
    resolved = dict(params)
    for key in SELECTOR_PARAMS:
        if key in resolved:
            resolved[key] = resolve_parties(resolved[key], n)
    return resolved


def targeted_delay(
    victims: Optional[Sequence[int]] = None,
    roots: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[str]] = None,
    max_delay_steps: Optional[int] = None,
) -> Scheduler:
    """Starve messages touching ``victims`` (or matching ``roots``/``kinds``).

    A message is delayed while anything else is pending when its sender *or*
    receiver is a victim, its root protocol is listed, or its payload kind is
    listed (any listed criterion suffices).  ``max_delay_steps`` bounds the
    starvation so the run remains a valid asynchronous execution even when
    the targeted traffic is all that keeps the protocol alive.
    """
    victim_set = frozenset(victims or ())
    root_set = frozenset(roots or ())
    kind_set = frozenset(kinds or ())

    def should_delay(message: Message) -> bool:
        return (
            message.sender in victim_set
            or message.receiver in victim_set
            or message.root in root_set
            or message.kind in kind_set
        )

    return DelayScheduler(should_delay, max_delay_steps=max_delay_steps)


def session_starvation(
    pattern: Sequence[Any], max_delay_steps: Optional[int] = None
) -> Scheduler:
    """Starve every message addressed to a session matching ``pattern``.

    The classic anti-progress attack against layered protocols: hold back one
    whole sub-protocol layer (e.g. ``["...", "rec", "*"]`` -- all SVSS
    reconstruction sessions) until everything else has drained or the delay
    budget expires.
    """
    pattern = list(pattern)
    validate_session_pattern(pattern)

    def should_delay(message: Message) -> bool:
        return match_session(pattern, message.session) is not None

    return DelayScheduler(should_delay, max_delay_steps=max_delay_steps)


def partition_heal(
    group_a: Sequence[int], group_b: Sequence[int], duration: int
) -> Scheduler:
    """Partition two party groups for ``duration`` deliveries, then heal."""
    return PartitionScheduler(group_a, group_b, duration)


def rushing(coalition: Sequence[int]) -> Scheduler:
    """Deliver intra-``coalition`` traffic first (the rushing adversary).

    The coalition hears every protocol phase before anyone else, maximising
    the information advantage a Byzantine coalition can extract -- the
    scheduling half of a rushing attack.
    """
    coalition_set = frozenset(coalition)

    def priority(message: Message) -> float:
        inside = message.sender in coalition_set and message.receiver in coalition_set
        return 0.0 if inside else 1.0

    return TargetedScheduler(priority)


def message_filter_delay(
    predicate: Mapping[str, Any],
    n: int,
    max_delay_steps: Optional[int] = None,
) -> Scheduler:
    """Starve messages matching a full message-predicate spec.

    The most general member of the family: ``predicate`` is a JSON message
    predicate (senders / receivers / roots / kinds / session), compiled
    against ``n`` (which must therefore be supplied explicitly in the params).
    """
    compiled = compile_message_predicate(predicate, n)
    return DelayScheduler(compiled, max_delay_steps=max_delay_steps)


class _PriorityRule:
    """One live boost/delay rule of a :class:`ReactiveScheduler`."""

    __slots__ = ("predicate", "expires_at", "key")

    def __init__(
        self,
        predicate: Callable[[Message], bool],
        expires_at: Optional[int],
        key: str,
    ) -> None:
        self.predicate = predicate
        self.expires_at = expires_at
        self.key = key


class ReactiveScheduler(Scheduler):
    """A scheduler the scenario director reprioritises mid-run.

    Until the first action arrives it is exactly the uniform random
    scheduler (one ``randrange``-equivalent draw per delivery).  Each applied
    action installs a *boost* or *delay* rule -- a compiled message
    predicate, optionally expiring after a step budget -- and from then on
    every delivery picks uniformly among the best-ranked pending messages
    (boosted < neutral < delayed).  Delayed traffic is still delivered once
    nothing better is pending (or the rule expires), so runs remain valid
    asynchronous executions.

    ``make_queue`` pins a :class:`_ReactiveQueue`: pending messages are
    ranked once at submit time and kept in per-rank Fenwick trees, so a
    delivery is one draw plus an O(log m) search instead of an O(m * rules)
    rescan; when the rule set changes (installs, clears, expiries --
    tracked by ``rules_version``) the queue re-ranks lazily on its next pop.
    The queue holds materialised messages, which (exactly like tracing)
    also forces the network's eager fan-out path -- group queues holding
    unmaterialised :class:`~repro.net.queues.FanoutEntry`\\ s never engage.
    Determinism is untouched: decisions are pure functions of the (seeded)
    event stream and the rule set, so trials stay byte-identical per seed,
    traced or untraced -- and byte-identical to the reference
    :meth:`choose` scan (``tests/scenarios/test_scenario_robustness.py``
    diffs full delivery orders against a ``force_scan`` run).
    """

    #: Marks this scheduler as accepting director ``scheduler_actions``.
    supports_reactions = True

    def __init__(self) -> None:
        self._boosts: List[_PriorityRule] = []
        self._delays: List[_PriorityRule] = []
        #: Count of actions that changed the rule set (audit/testing aid).
        self.actions_applied = 0
        #: Bumped whenever the *effective* rule set changes (rule installed,
        #: cleared or expired); the reactive queue re-ranks on mismatch.
        self.rules_version = 0
        #: Earliest step at which any live rule lapses (None = no expiries).
        self._next_expiry: Optional[int] = None

    def make_queue(self) -> DeliveryQueue:
        return _ReactiveQueue(self)

    # ------------------------------------------------------------------
    def apply_action(
        self,
        action: Mapping[str, Any],
        n: int,
        step: int,
        event_pid: Optional[int] = None,
    ) -> Optional[str]:
        """Apply one JSON scheduler action (validated at spec time).

        Returns a human-readable description when the rule set changed, or
        ``None`` when the action was a no-op (duplicate rule -- its expiry is
        refreshed -- or an ``"event"`` placeholder with no event party).
        """
        op = action["op"]
        if op == "clear":
            if not self._boosts and not self._delays:
                return None
            self._boosts.clear()
            self._delays.clear()
            self.actions_applied += 1
            self.rules_version += 1
            self._next_expiry = None
            return "clear: all priority rules dropped"
        spec = dict(action.get("predicate", {}))
        for key in ("senders", "receivers"):
            if spec.get(key) == "event":
                if event_pid is None:
                    return None
                spec[key] = [event_pid]
        expires = action.get("expires")
        expires_at = None if expires is None else step + int(expires)
        key = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        rules = self._boosts if op == "boost" else self._delays
        for rule in rules:
            if rule.key == key:
                # Same predicate fired again: refresh the expiry window
                # instead of stacking duplicates, keeping the rule set (and
                # the ranking cost) bounded by the distinct predicates a
                # scenario can name.  Membership is unchanged, so the
                # version stays put; only the expiry horizon moves.
                rule.expires_at = expires_at
                self._recompute_next_expiry()
                return None
        rules.append(_PriorityRule(compile_message_predicate(spec, n), expires_at, key))
        self.actions_applied += 1
        self.rules_version += 1
        if expires_at is not None and (
            self._next_expiry is None or expires_at < self._next_expiry
        ):
            self._next_expiry = expires_at
        window = "" if expires is None else f" for {int(expires)} steps"
        return f"{op} {key}{window}"

    # ------------------------------------------------------------------
    def _recompute_next_expiry(self) -> None:
        expiries = [
            rule.expires_at
            for rule in self._boosts + self._delays
            if rule.expires_at is not None
        ]
        self._next_expiry = min(expiries) if expiries else None

    def expire(self, step: int) -> None:
        """Drop rules whose window lapsed before ``step`` (O(1) when none)."""
        next_expiry = self._next_expiry
        if next_expiry is None or step < next_expiry:
            return
        for rules in (self._boosts, self._delays):
            rules[:] = [
                rule for rule in rules
                if rule.expires_at is None or step < rule.expires_at
            ]
        self.rules_version += 1
        self._recompute_next_expiry()

    def rank(self, message: Message) -> int:
        """0 = boosted, 1 = neutral, 2 = delayed (boost beats delay)."""
        for rule in self._boosts:
            if rule.predicate(message):
                return 0
        for rule in self._delays:
            if rule.predicate(message):
                return 2
        return 1

    def choose(self, pending: Sequence[Message], rng: random.Random, step: int) -> int:
        """Reference O(pending) scan; the indexed queue must match it exactly."""
        self.expire(step)
        if not self._boosts and not self._delays:
            return rng.randrange(len(pending))
        best_rank = 3
        best: List[int] = []
        for index, message in enumerate(pending):
            rank = self.rank(message)
            if rank < best_rank:
                best_rank = rank
                best = [index]
            elif rank == best_rank:
                best.append(index)
        return best[rng.randrange(len(best))]


class _ReactiveQueue(DeliveryQueue):
    """Rank-indexed delivery for :class:`ReactiveScheduler`.

    Send-order slots with one Fenwick tree per rank class (boosted /
    neutral / delayed).  Ranks are evaluated once per message at submit
    time; a pop picks the best non-empty class, draws one
    ``randrange``-equivalent rank and searches that class's tree -- the
    same single draw over the same population as the reference scan in
    :meth:`ReactiveScheduler.choose`, hence byte-identical delivery per
    seed (the ``r``-th live slot of a class in send order is exactly the
    ``r``-th entry of the scan's ``best`` list).  When the scheduler's
    effective rule set changes (``rules_version``), every live slot is
    re-ranked on the next pop -- an O(m) pass per *change*, not per
    delivery, and scenario directors make at most a handful of changes per
    run.  Tombstones are compacted once they outnumber live messages.
    """

    def __init__(self, scheduler: ReactiveScheduler) -> None:
        self.scheduler = scheduler
        self._slots: List[Optional[Message]] = []
        #: Parallel rank per slot (stale entries tolerated for tombstones).
        self._ranks: List[int] = []
        self._count = 0
        self._class_counts = [0, 0, 0]
        self._trees: List[List[int]] = [[0] * 17, [0] * 17, [0] * 17]
        self._capacity = 16
        self._version = scheduler.rules_version
        self._randbelow: Optional[Callable[[int], int]] = None
        self._randbelow_rng: Optional[random.Random] = None

    def __len__(self) -> int:
        return self._count

    # -- index maintenance ----------------------------------------------
    def _rebuild(self) -> None:
        """Rebuild trees and class counts from the current slots/ranks."""
        slots = self._slots
        ranks = self._ranks
        capacity = 16
        while capacity <= len(slots):
            capacity *= 2
        trees = [[0] * (capacity + 1) for _ in range(3)]
        class_counts = [0, 0, 0]
        for index, message in enumerate(slots):
            if message is None:
                continue
            rank = ranks[index]
            class_counts[rank] += 1
            tree = trees[rank]
            position = index + 1
            while position <= capacity:
                tree[position] += 1
                position += position & -position
        self._trees = trees
        self._class_counts = class_counts
        self._capacity = capacity

    def _drop_tombstones(self) -> None:
        slots: List[Optional[Message]] = []
        ranks: List[int] = []
        for message, rank in zip(self._slots, self._ranks):
            if message is not None:
                slots.append(message)
                ranks.append(rank)
        self._slots = slots
        self._ranks = ranks

    def _reflag(self) -> None:
        """Re-rank every live slot against the scheduler's current rules."""
        self._drop_tombstones()
        rank = self.scheduler.rank
        self._ranks = [rank(message) for message in self._slots]
        self._rebuild()
        self._version = self.scheduler.rules_version

    def _search(self, tree: List[int], rank: int) -> int:
        """Smallest slot index whose prefix count in ``tree`` is ``rank + 1``."""
        position = 0
        remaining = rank + 1
        bit = 1 << (self._capacity.bit_length() - 1)
        while bit:
            candidate = position + bit
            if candidate <= self._capacity and tree[candidate] < remaining:
                position = candidate
                remaining -= tree[candidate]
            bit >>= 1
        return position

    # -- queue protocol --------------------------------------------------
    def push(self, message: Message) -> None:
        index = len(self._slots)
        if index >= self._capacity:
            self._rebuild()
        rank = self.scheduler.rank(message)
        self._slots.append(message)
        self._ranks.append(rank)
        self._count += 1
        self._class_counts[rank] += 1
        tree = self._trees[rank]
        capacity = self._capacity
        position = index + 1
        while position <= capacity:
            tree[position] += 1
            position += position & -position

    def pop(self, rng: random.Random, step: int) -> Message:
        if not self._count:
            raise IndexError("pop from an empty delivery queue")
        scheduler = self.scheduler
        scheduler.expire(step)
        if scheduler.rules_version != self._version:
            self._reflag()
        if rng is not self._randbelow_rng:
            self._randbelow_rng = rng
            self._randbelow = getattr(rng, "_randbelow", rng.randrange)
        class_counts = self._class_counts
        if class_counts[0]:
            cls = 0
        elif class_counts[1]:
            cls = 1
        else:
            cls = 2
        draw = self._randbelow(class_counts[cls])
        position = self._search(self._trees[cls], draw)
        message = self._slots[position]
        assert message is not None
        self._slots[position] = None
        self._count -= 1
        class_counts[cls] -= 1
        tree = self._trees[cls]
        capacity = self._capacity
        position += 1
        while position <= capacity:
            tree[position] -= 1
            position += position & -position
        if len(self._slots) > 2 * self._count:
            self._drop_tombstones()
            self._rebuild()
        return message

    def snapshot(self) -> List[Message]:
        return [message for message in self._slots if message is not None]


def reactive() -> Scheduler:
    """The director-driven scheduler (see :class:`ReactiveScheduler`)."""
    return ReactiveScheduler()


SCHEDULERS.add("targeted_delay", targeted_delay)
SCHEDULERS.add("reactive", reactive)
SCHEDULERS.add("session_starvation", session_starvation)
SCHEDULERS.add("partition_heal", partition_heal)
SCHEDULERS.add("rushing", rushing)
SCHEDULERS.add("message_filter_delay", message_filter_delay)
