"""The scenario predicate language: who/what an attack targets, by description.

Scenarios never hard-code party id lists -- they *describe* their targets, and
the engine resolves the description against the concrete system size when a
scenario is instantiated.  Three small vocabularies cover everything the
attack library needs:

* **party selectors** (:func:`resolve_parties`) -- JSON forms naming a set of
  parties relative to ``n``: explicit pids, the first/last ``k``, a half of
  the network, a stride, or "the maximal faulty set" (the last ``t`` parties);
* **session patterns** (:func:`match_session`) -- structural matches against
  hierarchical session ids, with a ``{"pid": true}`` component that captures
  the party id embedded in the session (e.g. the dealer of an SVSS instance);
* **message predicates** (:func:`compile_message_predicate`) -- conjunctive
  filters over in-flight messages (sender/receiver selectors, root protocol,
  payload kind, session pattern) used by the hostile scheduler family.

The style follows attribute-based communication (arXiv:1602.05635): attacks
address *predicates over attributes*, not enumerated processes, which is what
lets one scenario definition scale from ``n = 4`` to ``n = 64`` unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.config import max_faults
from repro.errors import ExperimentError
from repro.net.message import Message, SessionId

#: A party selector: an int, an explicit pid list, or a keyword mapping.
PartySelector = Any
#: A session pattern: a list of component patterns (see :func:`match_session`).
SessionPattern = Sequence[Any]

#: Pattern component capturing an embedded party id.
_PID_CAPTURE = {"pid": True}
#: Pattern component matching any single session component.
_WILDCARD = "*"
#: Leading pattern component matching any session prefix.
_ELLIPSIS = "..."


def resolve_parties(selector: PartySelector, n: int) -> List[int]:
    """Resolve a party selector against a system of ``n`` parties.

    Supported forms:

    * ``3`` / ``[0, 2, 5]`` -- explicit pid(s);
    * ``{"pids": [...]}`` -- explicit pids, spelled out;
    * ``{"first": k}`` / ``{"last": k}`` -- the lowest / highest ``k`` pids;
    * ``{"half": "low" | "high"}`` -- one half of the network (the high half
      gets the extra party when ``n`` is odd);
    * ``{"every": s, "offset": o}`` -- pids congruent to ``o`` modulo ``s``;
    * ``{"last_faulty": true}`` -- the last ``t = (n - 1) // 3`` parties, the
      canonical maximal corruptible coalition.

    Returns a sorted, de-duplicated pid list; raises
    :class:`~repro.errors.ExperimentError` on unknown forms or out-of-range
    pids.
    """
    if isinstance(selector, bool):
        raise ExperimentError(f"invalid party selector {selector!r}")
    if isinstance(selector, int):
        pids = [selector]
    elif isinstance(selector, (list, tuple)):
        pids = [int(pid) for pid in selector]
    elif isinstance(selector, Mapping):
        pids = _resolve_mapping(selector, n)
    else:
        raise ExperimentError(f"invalid party selector {selector!r}")
    out = sorted(set(pids))
    for pid in out:
        if not 0 <= pid < n:
            raise ExperimentError(
                f"party selector {selector!r} resolves outside 0..{n - 1}: {pid}"
            )
    return out


def _resolve_mapping(selector: Mapping[str, Any], n: int) -> List[int]:
    if "pids" in selector:
        return [int(pid) for pid in selector["pids"]]
    if "first" in selector:
        return list(range(min(int(selector["first"]), n)))
    if "last" in selector:
        count = min(int(selector["last"]), n)
        return list(range(n - count, n))
    if "half" in selector:
        side = selector["half"]
        if side == "low":
            return list(range(n // 2))
        if side == "high":
            return list(range(n // 2, n))
        raise ExperimentError(f"half selector must be 'low' or 'high', got {side!r}")
    if "every" in selector:
        stride = int(selector["every"])
        offset = int(selector.get("offset", 0))
        if stride < 1:
            raise ExperimentError(f"every-selector stride must be >= 1, got {stride}")
        return [pid for pid in range(n) if pid % stride == offset % stride]
    if "last_faulty" in selector and selector["last_faulty"]:
        t = max_faults(n)
        return list(range(n - t, n))
    raise ExperimentError(f"unknown party selector form {selector!r}")


def validate_party_selector(selector: PartySelector) -> None:
    """Shape-check a selector without a concrete ``n`` (spec validation)."""
    resolve_parties(selector, 1 << 20)


# ----------------------------------------------------------------------
# Session patterns.
# ----------------------------------------------------------------------
def match_session(pattern: SessionPattern, session: SessionId) -> Optional[Dict[str, Any]]:
    """Match ``session`` against ``pattern``; return captures or ``None``.

    Each pattern component matches one session component: ``"*"`` matches
    anything, ``{"pid": true}`` matches an ``int`` and captures it under
    ``"pid"``, anything else must compare equal.  A leading ``"..."`` lets the
    rest of the pattern match any *suffix* of the session, which is how
    scenarios address protocol layers without knowing the full stack above
    them (``["...", "share", {"pid": true}]`` matches an SVSS share session
    wherever it is spawned).
    """
    pattern = list(pattern)
    if pattern and pattern[0] == _ELLIPSIS:
        tail = pattern[1:]
        if len(tail) > len(session):
            return None
        return _match_exact(tail, tuple(session)[len(session) - len(tail):])
    return _match_exact(pattern, tuple(session))


def _match_exact(pattern: List[Any], session: SessionId) -> Optional[Dict[str, Any]]:
    if len(pattern) != len(session):
        return None
    captures: Dict[str, Any] = {}
    for component, actual in zip(pattern, session):
        if component == _WILDCARD:
            continue
        if component == _PID_CAPTURE:
            if isinstance(actual, bool) or not isinstance(actual, int):
                return None
            captures["pid"] = actual
            continue
        if component != actual:
            return None
    return captures


def validate_session_pattern(pattern: Any) -> None:
    """Shape-check a session pattern; raise :class:`ExperimentError`."""
    if not isinstance(pattern, (list, tuple)) or not pattern:
        raise ExperimentError(f"session pattern must be a non-empty list, got {pattern!r}")
    body = pattern[1:] if pattern[0] == _ELLIPSIS else pattern
    for component in body:
        if component == _ELLIPSIS:
            raise ExperimentError('"..." is only valid as the first pattern component')
        if isinstance(component, Mapping) and component != _PID_CAPTURE:
            raise ExperimentError(f"unknown pattern component {component!r}")


# ----------------------------------------------------------------------
# Message predicates (the hostile schedulers' targeting language).
# ----------------------------------------------------------------------
def compile_message_predicate(
    spec: Mapping[str, Any], n: int
) -> Callable[[Message], bool]:
    """Compile a JSON message-predicate spec into a fast ``Message -> bool``.

    Recognised (conjunctive) keys: ``senders`` / ``receivers`` (party
    selectors), ``roots`` (top-level protocol names), ``kinds`` (payload kind
    tags), ``session`` (a session pattern).  An empty spec matches everything.
    """
    unknown = set(spec) - {"senders", "receivers", "roots", "kinds", "session"}
    if unknown:
        raise ExperimentError(
            f"unknown message predicate keys: {', '.join(sorted(unknown))}"
        )
    senders = (
        frozenset(resolve_parties(spec["senders"], n)) if "senders" in spec else None
    )
    receivers = (
        frozenset(resolve_parties(spec["receivers"], n)) if "receivers" in spec else None
    )
    roots = frozenset(spec["roots"]) if "roots" in spec else None
    kinds = frozenset(spec["kinds"]) if "kinds" in spec else None
    session_pattern = list(spec["session"]) if "session" in spec else None
    if session_pattern is not None:
        validate_session_pattern(session_pattern)

    def predicate(message: Message) -> bool:
        if senders is not None and message.sender not in senders:
            return False
        if receivers is not None and message.receiver not in receivers:
            return False
        if roots is not None and message.root not in roots:
            return False
        if kinds is not None and message.kind not in kinds:
            return False
        if session_pattern is not None:
            return match_session(session_pattern, message.session) is not None
        return True

    return predicate
