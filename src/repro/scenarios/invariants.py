"""Declarative safety invariants checked against scenario trial results.

Every adversarial scenario, whatever it throws at the protocol, must leave
the *guaranteed* properties intact: the corruption budget never exceeds the
resilience bound ``t < n/3``, every never-corrupted party terminates within
the step bound, and -- for the protocols that promise it -- honest outputs
agree and are valid.  This module turns those guarantees into executable
checks so a whole campaign grid fails loudly the moment a scenario breaks
one, instead of silently aggregating garbage.

The checks are **protocol-aware**: a weak common coin explicitly does *not*
guarantee agreement (honest parties may output different bits -- that is the
"weak" in the name), so requiring agreement there would reject correct
executions.  :data:`AGREEMENT_PROTOCOLS` lists the runners whose honest
outputs must be identical; the binary/range/validity checks are keyed per
runner the same way.

Entry points:

* :func:`check_result` -- run every applicable invariant against one
  :class:`~repro.net.runtime.SimulationResult`; returns the violations.
* :func:`check_scenario_result` -- convenience wrapper pulling protocol,
  params and director from a :class:`~repro.scenarios.spec.ScenarioSpec`
  and the result's network.
* :func:`assert_invariants` -- raise :class:`~repro.errors.ExperimentError`
  listing every violation (what the campaign runner and the CLI ``--check``
  mode call).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.core.config import max_faults
from repro.errors import ExperimentError
from repro.net.runtime import SimulationResult

#: Runners whose honest outputs are guaranteed identical.  ``weak_coin`` and
#: ``coinflip`` are deliberately absent: a weak coin only promises *common*
#: outputs with some probability, and Algorithm 1's coin tolerates an
#: epsilon of disagreement -- both are correct even when honest bits differ.
AGREEMENT_PROTOCOLS = frozenset(
    {"acast", "svss", "aba", "common_subset", "fba", "fair_choice"}
)

#: Runners whose honest outputs must be bits.
BINARY_OUTPUT_PROTOCOLS = frozenset({"weak_coin", "coinflip", "aba"})

#: Default step-bound slack: ``DEFAULT_STEP_FACTOR * n**2`` deliveries is
#: comfortably above every library scenario at its design sizes (the heaviest,
#: ``flood-fenwick`` at n=32 under a 4000-step starvation scheduler, stays
#: under half of it) while still catching runaway executions long before the
#: network's own ``DEFAULT_MAX_STEPS`` safety valve.
DEFAULT_STEP_FACTOR = 120


@dataclass(frozen=True)
class InvariantViolation:
    """One broken guarantee.

    Attributes:
        invariant: which check failed (``agreement``, ``validity``,
            ``termination``, ``step_bound``, ``budget``).
        detail: human-readable explanation with the offending values.
    """

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"{self.invariant}: {self.detail}"


def default_step_bound(n: int) -> int:
    """The generous-but-finite delivery bound used when none is given."""
    return DEFAULT_STEP_FACTOR * n * n


def check_result(
    result: SimulationResult,
    protocol: str,
    n: Optional[int] = None,
    director: Optional[Any] = None,
    params: Optional[Mapping[str, Any]] = None,
    step_bound: Optional[int] = None,
) -> List[InvariantViolation]:
    """Evaluate every applicable invariant; return the violations (may be []).

    Args:
        result: the finished trial.
        protocol: runner name the trial executed (selects which guarantees
            apply -- see :data:`AGREEMENT_PROTOCOLS`).
        n: party count (default: read off the result's network).
        director: the trial's :class:`~repro.scenarios.engine.ScenarioDirector`
            (default: the one installed on the network, if any); used for the
            budget check.
        params: runner parameters (``secret``, ``inputs``, ``m``...) that
            sharpen the validity checks.
        step_bound: delivery cap for the termination-by-step-bound check
            (default: :func:`default_step_bound`).
    """
    network = result.network
    if n is None:
        n = network.params.n
    if director is None:
        director = getattr(network, "director", None)
    params = dict(params or {})
    t = max_faults(n)
    violations: List[InvariantViolation] = []

    # -- budget: the adversary never controls more than t parties. ----------
    ever_corrupted = [p.pid for p in network.processes if p.ever_corrupted]
    if len(ever_corrupted) > t:
        violations.append(InvariantViolation(
            "budget",
            f"adversary controlled {len(ever_corrupted)} parties "
            f"{sorted(ever_corrupted)} but t={t} at n={n}",
        ))
    if director is not None and len(director.corrupted) > director.budget:
        violations.append(InvariantViolation(
            "budget",
            f"director corrupted {len(director.corrupted)} parties over its "
            f"budget of {director.budget}",
        ))

    # -- termination: every never-corrupted party produced an output. -------
    honest = [p.pid for p in network.processes if not p.ever_corrupted]
    missing = sorted(pid for pid in honest if pid not in result.outputs)
    if missing:
        violations.append(InvariantViolation(
            "termination",
            f"honest parties {missing} produced no output after "
            f"{result.steps} deliveries",
        ))

    # -- step bound: the run finished within the declared budget. -----------
    bound = default_step_bound(n) if step_bound is None else int(step_bound)
    if result.steps > bound:
        violations.append(InvariantViolation(
            "step_bound",
            f"trial took {result.steps} deliveries, over the bound of {bound}",
        ))

    # -- agreement: protocols that promise identical honest outputs. --------
    distinct = {repr(v): v for v in result.outputs.values()}
    if protocol in AGREEMENT_PROTOCOLS and len(distinct) > 1:
        violations.append(InvariantViolation(
            "agreement",
            f"{protocol} honest outputs disagree: {result.outputs!r}",
        ))

    violations.extend(_check_validity(result, protocol, params, network))
    return violations


def _check_validity(
    result: SimulationResult,
    protocol: str,
    params: Dict[str, Any],
    network: Any,
) -> List[InvariantViolation]:
    """Protocol-specific output-domain and validity checks."""
    violations: List[InvariantViolation] = []
    outputs = result.outputs

    if protocol in BINARY_OUTPUT_PROTOCOLS:
        bad = {pid: v for pid, v in outputs.items() if v not in (0, 1)}
        if bad:
            violations.append(InvariantViolation(
                "validity", f"{protocol} outputs outside {{0, 1}}: {bad!r}"
            ))

    if protocol == "fair_choice" and "m" in params:
        m = int(params["m"])
        bad = {pid: v for pid, v in outputs.items() if v not in range(m)}
        if bad:
            violations.append(InvariantViolation(
                "validity", f"fair_choice outputs outside range({m}): {bad!r}"
            ))

    if protocol == "svss" and "secret" in params and outputs:
        dealer = int(params.get("dealer", 0))
        if not network.processes[dealer].ever_corrupted:
            secret = int(params["secret"])
            bad = {pid: v for pid, v in outputs.items() if v != secret}
            if bad:
                violations.append(InvariantViolation(
                    "validity",
                    f"svss honest dealer shared {secret} but honest parties "
                    f"reconstructed {bad!r}",
                ))

    if protocol == "acast" and "value" in params and outputs:
        sender = int(params.get("sender", 0))
        if not network.processes[sender].ever_corrupted:
            value = params["value"]
            bad = {pid: v for pid, v in outputs.items() if v != value}
            if bad:
                violations.append(InvariantViolation(
                    "validity",
                    f"acast honest sender broadcast {value!r} but honest "
                    f"parties delivered {bad!r}",
                ))

    if protocol in ("aba", "fba") and isinstance(params.get("inputs"), Mapping):
        # Unanimity validity: when every never-corrupted party proposed the
        # same value, that value is the only permissible decision.
        honest_inputs = {
            v
            for pid, v in params["inputs"].items()
            if not network.processes[int(pid)].ever_corrupted
        }
        if len(honest_inputs) == 1 and outputs:
            (value,) = honest_inputs
            bad = {pid: v for pid, v in outputs.items() if v != value}
            if bad:
                violations.append(InvariantViolation(
                    "validity",
                    f"{protocol} unanimous honest input {value!r} but honest "
                    f"parties decided {bad!r}",
                ))

    return violations


def check_scenario_result(
    spec: Any,
    result: SimulationResult,
    n: Optional[int] = None,
    params: Optional[Mapping[str, Any]] = None,
    step_bound: Optional[int] = None,
) -> List[InvariantViolation]:
    """Run :func:`check_result` with protocol/params taken from a scenario spec.

    ``params`` overrides merge over the spec's own (mirroring how
    :func:`~repro.scenarios.engine.run_scenario` builds the runner call);
    input shorthands like ``"alternating"`` are expanded so the unanimity
    check sees real pid maps.
    """
    from repro.scenarios.engine import expand_inputs

    network = result.network
    merged: Dict[str, Any] = dict(getattr(spec, "params", None) or {})
    if params:
        merged.update(params)
    if "inputs" in merged:
        merged["inputs"] = expand_inputs(merged["inputs"], network.params.n)
    return check_result(
        result,
        protocol=getattr(spec, "protocol", None) or "weak_coin",
        n=n,
        params=merged,
        step_bound=step_bound,
    )


def assert_invariants(
    result: SimulationResult,
    protocol: str,
    context: str = "trial",
    **kwargs: Any,
) -> None:
    """Raise :class:`ExperimentError` listing every violated invariant."""
    violations = check_result(result, protocol, **kwargs)
    if violations:
        listing = "; ".join(str(v) for v in violations)
        raise ExperimentError(
            f"invariant violation in {context}: {listing}"
        )
