"""Scale presets: named (n, prime) operating points for scenario runs.

Every scenario can carry a ``scale`` naming one of these presets instead of a
hard-coded party count, so the same attack definition runs at smoke scale
(``n4``) in CI, at the benchmark scale (``n32``) in the perf suite, and at the
stress scale (``n64``) in campaigns.

The primes are *matched* to the party count:

* ``n4`` / ``n16`` keep the library default ``2^31 - 1`` (the Mersenne prime
  the seed tests were captured under), whose ``mod 2`` coin-extraction bias
  ``~n/p`` is negligible;
* ``n32`` / ``n64`` switch to million-scale primes.  At those sizes the
  field arithmetic dominates a trial (degree-``t`` rows with ``t = 10`` or
  ``21``), and million-scale moduli keep every Horner intermediate product
  under ``2^40`` -- comfortably inside CPython's single-digit fast path --
  while a bias of ``~n/p <= 7e-5`` stays far below anything a thousand-trial
  campaign can resolve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import DEFAULT_PRIME, max_faults
from repro.errors import ExperimentError


@dataclass(frozen=True)
class ScalePreset:
    """One named operating point for scenario execution.

    Attributes:
        name: the preset key (``"n4"`` .. ``"n64"``).
        n: number of parties.
        prime: field modulus matched to ``n`` (see module docstring).
        note: one-line rationale shown by the CLI listing.
    """

    name: str
    n: int
    prime: int
    note: str

    @property
    def t(self) -> int:
        """The optimal-resilience corruption bound at this scale."""
        return max_faults(self.n)


PRESETS: Dict[str, ScalePreset] = {
    preset.name: preset
    for preset in (
        ScalePreset("n4", 4, DEFAULT_PRIME, "smoke scale; seed default prime 2^31-1"),
        ScalePreset("n16", 16, DEFAULT_PRIME, "mid scale; seed default prime 2^31-1"),
        ScalePreset("n32", 32, 1_000_003, "bench scale; million-scale prime keeps ints small"),
        ScalePreset("n64", 64, 999_983, "stress scale; million-scale prime keeps ints small"),
    )
}


def get_preset(name: str) -> ScalePreset:
    """Look a preset up by name; raise :class:`ExperimentError` when unknown."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ExperimentError(f"unknown scale preset {name!r}; known: {known}") from None


def preset_names() -> List[str]:
    """All preset names, sorted."""
    return sorted(PRESETS)


def preset_for(scale: Optional[str]) -> Optional[ScalePreset]:
    """Resolve an optional scale field (``None`` passes through)."""
    return None if scale is None else get_preset(scale)
