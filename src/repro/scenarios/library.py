"""The named scenario library and its registry.

Each entry is a complete :class:`~repro.scenarios.spec.ScenarioSpec` built
from the predicate vocabulary, so every attack scales from the CI smoke size
(``n = 4``) to the stress presets (``n = 32 / 64``) without edits: targets
are selectors (``{"last_faulty": true}``), never pid lists.  All scenarios
respect the optimal-resilience corruption budget ``t < n/3`` by construction
-- the engine enforces it regardless, but the library is the reference for
what a *maximal legal* adversary looks like against each protocol layer.

Look scenarios up with :func:`get_scenario` (which returns a private copy)
and run them with :func:`repro.scenarios.engine.run_scenario`; campaigns name
them through ``ExperimentSpec.scenario``.  Downstream code can extend the
registry with :func:`register_scenario`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ExperimentError
from repro.experiments.spec import BehaviorSpec, SchedulerSpec
from repro.scenarios.spec import (
    AdaptiveRule,
    CorruptionPlan,
    FaultEvent,
    ScenarioSpec,
    StaticCorruption,
)

#: The global scenario registry: name -> spec (treated as immutable; use
#: :func:`get_scenario` to obtain a mutable copy).
SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Validate ``spec`` and add it to the registry.

    Args:
        spec: the scenario to register.
        replace: allow overwriting an existing name (default: refuse).
    """
    spec.validate()
    if not replace and spec.name in SCENARIOS:
        raise ExperimentError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


#: Scenario components the ablation harness can strip out with the
#: ``<name>~no-<component>`` variant syntax (see :func:`get_scenario`).
SCENARIO_COMPONENTS = ("scheduler", "corruption", "timeline", "tamper")


def _drop_component(spec: ScenarioSpec, component: str) -> ScenarioSpec:
    """Return ``spec`` with one attack component removed (deterministically).

    * ``scheduler`` -- drop the hostile scheduler; scheduler *actions* carried
      by timeline entries and adaptive rules are stripped too (they cannot
      fire without one), and entries/rules that only existed to reprioritise
      are removed entirely.
    * ``corruption`` -- empty the corruption plan (static and adaptive).
    * ``timeline`` -- drop every fault-timeline transition.
    * ``tamper`` -- drop only the ``tamper`` transitions.
    """
    if component == "scheduler":
        spec.scheduler = None
        spec.timeline = [
            event for event in spec.timeline if event.transition != "reprioritize"
        ]
        for event in spec.timeline:
            event.scheduler_actions = None
        spec.corruption.adaptive = [
            rule for rule in spec.corruption.adaptive if rule.behavior is not None
        ]
        for rule in spec.corruption.adaptive:
            rule.scheduler_actions = None
    elif component == "corruption":
        spec.corruption = CorruptionPlan()
    elif component == "timeline":
        spec.timeline = []
    elif component == "tamper":
        spec.timeline = [
            event for event in spec.timeline if event.transition != "tamper"
        ]
    else:
        raise ExperimentError(
            f"unknown scenario component {component!r}; "
            f"known: {', '.join(SCENARIO_COMPONENTS)}"
        )
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name; returns a private copy safe to mutate.

    Beyond plain registry names, the ablation variant syntax
    ``<base>~no-<component>[,no-<component>...]`` derives a copy of ``base``
    with the named attack components removed (see
    :data:`SCENARIO_COMPONENTS`).  Variants are derived purely from the
    registered base spec, so any process -- CLI, campaign worker under fork
    or spawn -- resolves the same variant name to the identical scenario.
    """
    base_name, tilde, variant = name.partition("~")
    try:
        spec = SCENARIOS[base_name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS)) or "<none>"
        raise ExperimentError(
            f"unknown scenario {base_name!r}; known: {known}"
        ) from None
    spec = ScenarioSpec.from_dict(spec.to_dict())
    if not tilde:
        return spec
    dropped = []
    for token in variant.split(","):
        token = token.strip()
        if not token.startswith("no-"):
            raise ExperimentError(
                f"scenario variant {name!r}: expected 'no-<component>' tokens "
                f"after '~', got {token!r}"
            )
        component = token[3:]
        if component in dropped:
            raise ExperimentError(
                f"scenario variant {name!r} drops {component!r} twice"
            )
        spec = _drop_component(spec, component)
        dropped.append(component)
    spec.name = name
    if spec.description:
        spec.description += f" [without {', '.join(dropped)}]"
    spec.validate()
    return spec


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


# ----------------------------------------------------------------------
# The built-in catalogue.
# ----------------------------------------------------------------------
#: The canonical maximal corruptible coalition: the last ``t`` parties.
_FAULTY = {"last_faulty": True}

register_scenario(ScenarioSpec(
    name="dealer-ambush",
    description="crash each dealer the moment reconstruction of its sharing opens",
    protocol="weak_coin",
    corruption=CorruptionPlan(adaptive=[
        # The {"pid": true} component captures the dealer embedded in the
        # SVSS-Rec session id; the ambush corrupts exactly that party, at the
        # worst possible time, until the budget t runs out.
        AdaptiveRule(
            on="session_open",
            pattern=["...", "rec", {"pid": True}],
            behavior=BehaviorSpec("hard_crash"),
            target="captured",
        ),
    ]),
))

register_scenario(ScenarioSpec(
    name="coin-split-brain",
    description="equivocating coalition plus a network split across the two halves",
    protocol="weak_coin",
    corruption=CorruptionPlan(static=[
        StaticCorruption(select=_FAULTY, behavior=BehaviorSpec("split_equivocator")),
    ]),
    scheduler=SchedulerSpec("partition_heal", {
        "group_a": {"half": "low"},
        "group_b": {"half": "high"},
        "duration": 200,
    }),
))

register_scenario(ScenarioSpec(
    name="partition-heal",
    description="partition the two halves during agreement, then heal",
    protocol="aba",
    params={"inputs": "alternating"},
    scheduler=SchedulerSpec("partition_heal", {
        "group_a": {"half": "low"},
        "group_b": {"half": "high"},
        "duration": 120,
    }),
))

register_scenario(ScenarioSpec(
    name="flood-fenwick",
    description="starve all reconstruction traffic so the in-flight queue "
    "floods past the Fenwick crossover",
    protocol="weak_coin",
    scale="n32",
    scheduler=SchedulerSpec("session_starvation", {
        "pattern": ["...", "rec", "*"],
        "max_delay_steps": 4000,
    }),
))

register_scenario(ScenarioSpec(
    name="adaptive-budget-burn",
    description="greedy adaptive adversary that tries to crash every dealer; "
    "the budget clamp stops it at t",
    protocol="weak_coin",
    corruption=CorruptionPlan(adaptive=[
        AdaptiveRule(
            on="session_open",
            pattern=["...", "share", {"pid": True}],
            behavior=BehaviorSpec("hard_crash"),
            target="captured",
        ),
    ]),
))

register_scenario(ScenarioSpec(
    name="silence-heal",
    description="the faulty coalition goes silent mid-run, then recovers",
    protocol="weak_coin",
    timeline=[
        FaultEvent(transition="silence", select=_FAULTY, at_step=40),
        FaultEvent(transition="recover", select=_FAULTY, at_step=400),
    ],
))

register_scenario(ScenarioSpec(
    name="rushing-coalition",
    description="bad-share dealers whose intra-coalition traffic is always "
    "delivered first",
    protocol="weak_coin",
    corruption=CorruptionPlan(static=[
        StaticCorruption(select=_FAULTY, behavior=BehaviorSpec("bad_share")),
    ]),
    scheduler=SchedulerSpec("rushing", {"coalition": _FAULTY}),
))

register_scenario(ScenarioSpec(
    name="late-crash-quorum",
    description="crash the maximal coalition mid-agreement, after votes are in flight",
    protocol="aba",
    params={"inputs": "alternating"},
    timeline=[
        FaultEvent(transition="crash", select=_FAULTY, at_step=60),
    ],
))

register_scenario(ScenarioSpec(
    name="equivocate-on-share",
    description="the coalition turns equivocator the moment the first sharing "
    "completes anywhere",
    protocol="weak_coin",
    timeline=[
        FaultEvent(
            transition="equivocate",
            select=_FAULTY,
            on={"event": "complete", "pattern": ["...", "share", {"pid": True}]},
            offset=3,
        ),
    ],
))

register_scenario(ScenarioSpec(
    name="starved-dealer-withholds",
    description="a withholding dealer whose victims are also starved by the scheduler",
    protocol="svss",
    params={"secret": 424_242, "dealer": 0},
    corruption=CorruptionPlan(static=[
        StaticCorruption(
            select=0,
            behavior=BehaviorSpec("withholding_dealer", {"victims": [1]}),
        ),
    ]),
    scheduler=SchedulerSpec("targeted_delay", {
        "victims": {"pids": [1]},
        "max_delay_steps": 120,
    }),
))


# ----------------------------------------------------------------------
# Restart / recovery scenarios (PR 7): the adversary gives parties back.
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="restart-storm",
    description="the coalition crashes, rejoins from a blank slate, crashes "
    "again and rejoins again -- churn at the resilience bound",
    protocol="weak_coin",
    timeline=[
        FaultEvent(transition="crash", select=_FAULTY, at_step=40),
        FaultEvent(transition="restart", select=_FAULTY, at_step=300),
        # Re-crashing a restarted party is free: the adversary already paid
        # for it, so the churn never touches the budget clamp.
        FaultEvent(transition="crash", select=_FAULTY, at_step=700),
        FaultEvent(transition="restart", select=_FAULTY, at_step=1200),
    ],
))

register_scenario(ScenarioSpec(
    name="crash-recover-crash",
    description="crash the coalition mid-agreement, recover it (a restart), "
    "then crash it again for good",
    protocol="aba",
    params={"inputs": "alternating"},
    timeline=[
        FaultEvent(transition="crash", select=_FAULTY, at_step=60),
        # ``recover`` on a corrupted party is a restart: fresh protocol
        # state, no budget refund.
        FaultEvent(transition="recover", select=_FAULTY, at_step=300),
        FaultEvent(transition="crash", select=_FAULTY, at_step=700),
    ],
))


# ----------------------------------------------------------------------
# Tampering scenarios: honest code over adversarially mutated channels.
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="tamper-on-share",
    description="the coalition offsets every POINT field element it sends, "
    "poisoning cross-validation of the sharings it participates in",
    protocol="weak_coin",
    timeline=[
        FaultEvent(
            transition="tamper",
            select=_FAULTY,
            at_step=10,
            tamper={"kinds": ["POINT"], "offset": 5},
        ),
    ],
))

register_scenario(ScenarioSpec(
    name="tamper-kind-noise",
    description="the coalition rewrites its ROW payload kinds to garbage, "
    "erasing its own sharing traffic without going silent",
    protocol="weak_coin",
    timeline=[
        FaultEvent(
            transition="tamper",
            select=_FAULTY,
            at_step=10,
            tamper={"kinds": ["ROW"], "rewrite_kind": "NOISE"},
        ),
    ],
))

register_scenario(ScenarioSpec(
    name="tamper-drop-fraction",
    description="a lossy-link coalition that deterministically drops half of "
    "its reconstruction traffic against an honest dealer",
    protocol="svss",
    params={"secret": 171_717, "dealer": 0},
    timeline=[
        FaultEvent(
            transition="tamper",
            select=_FAULTY,
            at_step=5,
            tamper={"session": ["...", "rec"], "drop_fraction": 0.5},
        ),
    ],
))


# ----------------------------------------------------------------------
# Reactive-scheduler scenarios: the director reprioritises deliveries live.
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="reactive-starvation",
    description="each time a sharing completes, the director delays all "
    "further traffic from the party that finished it",
    protocol="weak_coin",
    scheduler=SchedulerSpec("reactive"),
    corruption=CorruptionPlan(adaptive=[
        AdaptiveRule(
            on="complete",
            pattern=["...", "share", {"pid": True}],
            scheduler_actions=[{
                "op": "delay",
                "predicate": {"senders": "event"},
                "expires": 150,
            }],
            max_firings=6,
        ),
    ]),
))

register_scenario(ScenarioSpec(
    name="reactive-rush",
    description="once the third sharing completes anywhere, rush the "
    "coalition's remaining traffic ahead of everything else",
    protocol="weak_coin",
    scheduler=SchedulerSpec("reactive"),
    timeline=[
        FaultEvent(
            transition="reprioritize",
            select=[],
            on={
                "event": "complete",
                "pattern": ["...", "share", {"pid": True}],
                "count": 3,
            },
            scheduler_actions=[
                {"op": "boost", "predicate": {"senders": _FAULTY}},
            ],
        ),
    ],
))
