"""Adversarial scenario engine: declarative attacks on the protocol stack.

A scenario composes, as one JSON-serialisable artifact, everything the
asynchronous adversary of the paper controls: *which parties are corrupted*
(statically, or adaptively in response to observed protocol events, under an
explicit budget ``t``), *how faults evolve* (crash / silence / equivocate /
recover timelines) and *how messages are ordered* (the hostile scheduler
family).  See :mod:`repro.scenarios.spec` for the data model,
:mod:`repro.scenarios.engine` for execution, and
:mod:`repro.scenarios.library` for the named catalogue::

    from repro.scenarios import run_scenario

    result = run_scenario("dealer-ambush", n=16, seed=7)

Importing this package also registers the hostile scheduler family in
:data:`repro.experiments.registry.SCHEDULERS`.
"""

from repro.scenarios import schedulers as _schedulers  # noqa: F401  (registers SCHEDULERS)
from repro.scenarios.engine import ScenarioDirector, ScenarioRuntime, run_scenario
from repro.scenarios.library import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.predicates import (
    compile_message_predicate,
    match_session,
    resolve_parties,
)
from repro.scenarios.presets import PRESETS, ScalePreset, get_preset, preset_names
from repro.scenarios.spec import (
    AdaptiveRule,
    CorruptionPlan,
    FaultEvent,
    ScenarioSpec,
    StaticCorruption,
)

__all__ = [
    "AdaptiveRule",
    "CorruptionPlan",
    "FaultEvent",
    "PRESETS",
    "SCENARIOS",
    "ScalePreset",
    "ScenarioDirector",
    "ScenarioRuntime",
    "ScenarioSpec",
    "StaticCorruption",
    "compile_message_predicate",
    "get_preset",
    "get_scenario",
    "match_session",
    "preset_names",
    "register_scenario",
    "resolve_parties",
    "run_scenario",
    "scenario_names",
]
