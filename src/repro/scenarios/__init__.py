"""Adversarial scenario engine: declarative attacks on the protocol stack.

A scenario composes, as one JSON-serialisable artifact, everything the
asynchronous adversary of the paper controls: *which parties are corrupted*
(statically, or adaptively in response to observed protocol events, under an
explicit budget ``t``), *how faults evolve* (crash / silence / equivocate /
recover / restart / tamper timelines) and *how messages are ordered* (the
hostile scheduler family, including the director-driven
:class:`~repro.scenarios.schedulers.ReactiveScheduler`).  Safety invariants
(:mod:`repro.scenarios.invariants`) close the loop: whatever the scenario
throws, the guaranteed properties are checked on every result.  See
:mod:`repro.scenarios.spec` for the data model,
:mod:`repro.scenarios.engine` for execution, and
:mod:`repro.scenarios.library` for the named catalogue::

    from repro.scenarios import check_scenario_result, run_scenario

    result = run_scenario("dealer-ambush", n=16, seed=7)
    assert not check_scenario_result(get_scenario("dealer-ambush"), result)

Importing this package also registers the hostile scheduler family in
:data:`repro.experiments.registry.SCHEDULERS` and the ``tamper`` behaviour
in :data:`repro.experiments.registry.BEHAVIORS`.
"""

from repro.scenarios import schedulers as _schedulers  # noqa: F401  (registers SCHEDULERS)
from repro.scenarios import tamper as _tamper  # noqa: F401  (registers BEHAVIORS)
from repro.scenarios.engine import ScenarioDirector, ScenarioRuntime, run_scenario
from repro.scenarios.invariants import (
    AGREEMENT_PROTOCOLS,
    InvariantViolation,
    assert_invariants,
    check_result,
    check_scenario_result,
    default_step_bound,
)
from repro.scenarios.library import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.predicates import (
    compile_message_predicate,
    match_session,
    resolve_parties,
)
from repro.scenarios.presets import PRESETS, ScalePreset, get_preset, preset_names
from repro.scenarios.schedulers import ReactiveScheduler
from repro.scenarios.spec import (
    AdaptiveRule,
    CorruptionPlan,
    FaultEvent,
    ScenarioSpec,
    StaticCorruption,
    validate_scheduler_actions,
    validate_tamper,
)
from repro.scenarios.tamper import TamperBehavior

__all__ = [
    "AGREEMENT_PROTOCOLS",
    "AdaptiveRule",
    "CorruptionPlan",
    "FaultEvent",
    "InvariantViolation",
    "PRESETS",
    "ReactiveScheduler",
    "SCENARIOS",
    "ScalePreset",
    "ScenarioDirector",
    "ScenarioRuntime",
    "ScenarioSpec",
    "StaticCorruption",
    "TamperBehavior",
    "assert_invariants",
    "check_result",
    "check_scenario_result",
    "compile_message_predicate",
    "default_step_bound",
    "get_preset",
    "get_scenario",
    "match_session",
    "preset_names",
    "register_scenario",
    "resolve_parties",
    "run_scenario",
    "scenario_names",
    "validate_scheduler_actions",
    "validate_tamper",
]
