"""Message tampering: honest execution with adversarially mutated channels.

The ``tamper`` fault-timeline transition corrupts a party with a
:class:`TamperBehavior`: the party keeps running its honest protocol tree,
but every *outgoing* message crossing the spec's matched channels is mutated
in flight -- field elements offset (mod the field prime), payload kinds
rewritten, or a deterministic fraction of messages dropped.  This models the
classic "faulty link / lying transport" adversary without re-implementing
any protocol logic, and it composes with the rest of the scenario plane:
tampering *is* a corruption (it spends budget and excludes the party from
honest-output accounting), and every installation is logged to the
director's audit trail and the trace.

Tamper specs are validated by :func:`repro.scenarios.spec.validate_tamper`;
the channel-matching half reuses the scenario predicate vocabulary.  All
mutations are pure functions of the message stream (the drop fraction uses a
Bresenham-style counter, never randomness), so tampered trials remain
byte-identical per seed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.adversary.behaviors import Behavior
from repro.net.message import Message, SessionId
from repro.scenarios.predicates import match_session, resolve_parties
from repro.scenarios.spec import validate_tamper


def _offset_element(value: Any, offset: int, prime: int) -> Any:
    """Offset one payload element: ints shift mod prime, everything else passes.

    Tuples are rewritten one level deep (SVSS row payloads are tuples of
    field elements); bools are left alone -- they are protocol flags, not
    field elements, even though they subclass int.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return (value + offset) % prime
    if isinstance(value, tuple):
        return tuple(
            (item + offset) % prime
            if isinstance(item, int) and not isinstance(item, bool)
            else item
            for item in value
        )
    return value


class TamperBehavior(Behavior):
    """Runs the honest protocol; mutates outgoing messages on matched channels.

    Construction takes a validated tamper spec (see module docstring).  The
    delivery side routes straight through the honest protocol tree (the
    :class:`~repro.adversary.behaviors.HonestButMutatingBehavior` pattern);
    the sending side installs an outgoing mutator compiled from the spec.
    """

    runs_honest_protocol = True

    def __init__(self, spec: Mapping[str, Any]) -> None:
        super().__init__()
        validate_tamper(spec)
        self.spec: Dict[str, Any] = dict(spec)
        #: Messages that matched the channel filter.
        self.matched = 0
        #: Matched messages dropped by the drop fraction.
        self.dropped = 0
        #: Matched messages forwarded with a payload mutation applied.
        self.mutated = 0

    def on_attach(self) -> None:
        assert self.process is not None
        self.process.outgoing_mutator = self._build_mutator()

    def on_message(self, message: Message) -> None:
        assert self.process is not None
        behavior, self.process.behavior = self.process.behavior, None
        try:
            self.process.deliver(message)
        finally:
            self.process.behavior = behavior

    # ------------------------------------------------------------------
    def _build_mutator(
        self,
    ) -> Callable[[int, SessionId, tuple], Optional[Tuple[int, SessionId, tuple]]]:
        assert self.process is not None
        params = self.process.params
        prime = params.prime
        spec = self.spec
        kinds = frozenset(spec["kinds"]) if "kinds" in spec else None
        receivers = (
            frozenset(resolve_parties(spec["receivers"], params.n))
            if "receivers" in spec
            else None
        )
        pattern = list(spec["session"]) if "session" in spec else None
        offset = int(spec.get("offset", 0))
        rewrite_kind = spec.get("rewrite_kind")
        fraction = float(spec.get("drop_fraction", 0.0))

        def mutate(
            receiver: int, session: SessionId, payload: tuple
        ) -> Optional[Tuple[int, SessionId, tuple]]:
            if kinds is not None and (payload[0] if payload else None) not in kinds:
                return (receiver, session, payload)
            if receivers is not None and receiver not in receivers:
                return (receiver, session, payload)
            if pattern is not None and match_session(pattern, session) is None:
                return (receiver, session, payload)
            self.matched += 1
            if fraction:
                # Deterministic thinning: drop exactly floor(matched *
                # fraction) of the matched stream, Bresenham-style, so the
                # same seed tampers the same messages on every rerun.
                if int(self.matched * fraction + 1e-9) > self.dropped:
                    self.dropped += 1
                    return None
            if rewrite_kind is not None and payload:
                payload = (rewrite_kind,) + tuple(payload[1:])
            if offset:
                payload = (payload[0],) + tuple(
                    _offset_element(value, offset, prime) for value in payload[1:]
                )
            self.mutated += 1
            return (receiver, session, payload)

        return mutate


def tamper_behavior(**spec: Any) -> Callable[..., TamperBehavior]:
    """Registry builder: ``BehaviorSpec("tamper", {...tamper spec...})``."""
    validate_tamper(spec)

    def build(_process: Any) -> TamperBehavior:
        return TamperBehavior(spec)

    return build


# Registered here (not in repro.experiments.registry) so the behaviour rides
# the same self-registration pattern as the hostile scheduler family.
from repro.experiments.registry import BEHAVIORS  # noqa: E402

BEHAVIORS.add("tamper", tamper_behavior)
