"""Declarative adversarial scenario specifications.

A :class:`ScenarioSpec` is to an attack what a
:class:`~repro.experiments.spec.CampaignSpec` is to an experiment: a plain
JSON-serialisable description, with every executable piece named through a
registry string and every target described by a predicate
(:mod:`repro.scenarios.predicates`).  A scenario composes four orthogonal
ingredients:

* a **corruption plan** -- static corruptions applied before the run plus
  *adaptive* rules that corrupt parties mid-run when trigger events fire,
  all under an explicit corruption budget;
* a **fault timeline** -- crash / silence / equivocate / recover transitions
  triggered at delivery counts or protocol phase events;
* a **hostile scheduler** -- one of the adversarial scheduler family
  (:mod:`repro.scenarios.schedulers`) or any registered scheduler;
* a **scale preset** -- a named ``(n, prime)`` operating point
  (:mod:`repro.scenarios.presets`).

Specs deliberately contain no live objects, so scenarios serialise losslessly
to JSON, ship to campaign workers, and diff cleanly in review::

    spec = get_scenario("dealer-ambush")
    same = ScenarioSpec.from_dict(spec.to_dict())
    assert same == spec
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ExperimentError
from repro.experiments.spec import BehaviorSpec, SchedulerSpec
from repro.scenarios.predicates import (
    validate_party_selector,
    validate_session_pattern,
)
from repro.scenarios.presets import preset_for

#: Valid adaptive-rule trigger events.
RULE_EVENTS = ("session_open", "complete", "step")
#: Valid fault-timeline transitions.
TRANSITIONS = ("crash", "silence", "equivocate", "recover")
#: Timeline transitions that corrupt the target (and therefore spend budget).
CORRUPTING_TRANSITIONS = ("crash", "equivocate")


@dataclass
class StaticCorruption:
    """A corruption applied before the run starts.

    Attributes:
        select: party selector naming the corrupted parties.
        behavior: the behaviour (a :class:`BehaviorSpec`) they run.
    """

    select: Any
    behavior: BehaviorSpec

    def __post_init__(self) -> None:
        if isinstance(self.behavior, Mapping):
            self.behavior = BehaviorSpec.from_dict(self.behavior)

    def validate(self) -> None:
        validate_party_selector(self.select)
        if not self.behavior.behavior:
            raise ExperimentError("static corruption needs a behavior name")

    def to_dict(self) -> Dict[str, Any]:
        return {"select": self.select, "behavior": self.behavior.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StaticCorruption":
        return cls(select=data["select"], behavior=BehaviorSpec.from_dict(data["behavior"]))


@dataclass
class AdaptiveRule:
    """One trigger -> corruption rule of an adaptive adversary.

    Attributes:
        on: trigger event -- ``"session_open"`` / ``"complete"`` (protocol
            phase events carrying a session) or ``"step"`` (delivery count).
        behavior: behaviour installed on the corrupted target(s).
        pattern: session pattern the event's session must match (session
            events only); a ``{"pid": true}`` component captures the party id
            embedded in the session.
        at_step: delivery count threshold (``"step"`` trigger only).
        target: who gets corrupted -- ``"captured"`` (the pid captured by the
            pattern), ``"subject"`` (the party the event happened at), or a
            party selector.
        max_firings: cap on successful firings (``None`` = only the budget
            limits the rule).
    """

    on: str
    behavior: BehaviorSpec
    pattern: Optional[List[Any]] = None
    at_step: Optional[int] = None
    target: Any = "captured"
    max_firings: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.behavior, Mapping):
            self.behavior = BehaviorSpec.from_dict(self.behavior)

    def validate(self) -> None:
        if self.on not in RULE_EVENTS:
            raise ExperimentError(
                f"adaptive rule event must be one of {RULE_EVENTS}, got {self.on!r}"
            )
        if self.on == "step":
            if self.at_step is None or int(self.at_step) < 0:
                raise ExperimentError("step-triggered rules need a non-negative at_step")
            if self.target in ("captured", "subject"):
                raise ExperimentError(
                    "step-triggered rules have no event party; target must be a selector"
                )
        else:
            if self.pattern is None:
                raise ExperimentError(f"{self.on!r}-triggered rules need a session pattern")
            validate_session_pattern(self.pattern)
            if self.target == "captured" and {"pid": True} not in self.pattern:
                raise ExperimentError(
                    'target "captured" needs a {"pid": true} component in the pattern'
                )
        if self.target not in ("captured", "subject"):
            validate_party_selector(self.target)
        if self.max_firings is not None and int(self.max_firings) < 1:
            raise ExperimentError("max_firings must be >= 1 when given")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"on": self.on, "behavior": self.behavior.to_dict()}
        if self.pattern is not None:
            data["pattern"] = list(self.pattern)
        if self.at_step is not None:
            data["at_step"] = self.at_step
        if self.target != "captured":
            data["target"] = self.target
        if self.max_firings is not None:
            data["max_firings"] = self.max_firings
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdaptiveRule":
        return cls(
            on=str(data["on"]),
            behavior=BehaviorSpec.from_dict(data["behavior"]),
            pattern=list(data["pattern"]) if data.get("pattern") is not None else None,
            at_step=data.get("at_step"),
            target=data.get("target", "captured"),
            max_firings=data.get("max_firings"),
        )


@dataclass
class CorruptionPlan:
    """The scenario's corruption strategy: static set + adaptive rules + budget.

    Attributes:
        budget: maximum number of parties this scenario may ever corrupt
            (static + adaptive + corrupting timeline transitions); ``None``
            means "the resilience bound ``t`` of the concrete run".  The
            effective budget is always clamped to ``t``.
        static: corruptions applied before the run.
        adaptive: mid-run corruption rules (see :class:`AdaptiveRule`).
    """

    budget: Optional[int] = None
    static: List[StaticCorruption] = field(default_factory=list)
    adaptive: List[AdaptiveRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.static = [
            entry if isinstance(entry, StaticCorruption) else StaticCorruption.from_dict(entry)
            for entry in self.static
        ]
        self.adaptive = [
            rule if isinstance(rule, AdaptiveRule) else AdaptiveRule.from_dict(rule)
            for rule in self.adaptive
        ]

    def validate(self) -> None:
        if self.budget is not None and int(self.budget) < 0:
            raise ExperimentError(f"corruption budget must be >= 0, got {self.budget}")
        for entry in self.static:
            entry.validate()
        for rule in self.adaptive:
            rule.validate()

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.budget is not None:
            data["budget"] = self.budget
        if self.static:
            data["static"] = [entry.to_dict() for entry in self.static]
        if self.adaptive:
            data["adaptive"] = [rule.to_dict() for rule in self.adaptive]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorruptionPlan":
        return cls(
            budget=data.get("budget"),
            static=[StaticCorruption.from_dict(entry) for entry in data.get("static", [])],
            adaptive=[AdaptiveRule.from_dict(rule) for rule in data.get("adaptive", [])],
        )


@dataclass
class FaultEvent:
    """One fault-timeline transition.

    Attributes:
        transition: ``"crash"``, ``"silence"``, ``"equivocate"`` or
            ``"recover"``.  Crash and equivocate corrupt the target (spending
            budget, irreversible); silence only severs the target's outgoing
            channel and is undone by a later recover.
        select: party selector naming the affected parties.
        at_step: fire after this many deliveries, or
        on: fire on a phase event: ``{"event": "session_open" | "complete",
            "pattern": [...]}``.
        offset: perturbation offset for ``equivocate`` (forwarded to the
            equivocating behaviour).
    """

    transition: str
    select: Any
    at_step: Optional[int] = None
    on: Optional[Dict[str, Any]] = None
    offset: int = 1

    def validate(self) -> None:
        if self.transition not in TRANSITIONS:
            raise ExperimentError(
                f"timeline transition must be one of {TRANSITIONS}, got {self.transition!r}"
            )
        validate_party_selector(self.select)
        if (self.at_step is None) == (self.on is None):
            raise ExperimentError(
                "timeline event needs exactly one trigger: at_step or on"
            )
        if self.at_step is not None and int(self.at_step) < 0:
            raise ExperimentError("timeline at_step must be non-negative")
        if self.on is not None:
            event = self.on.get("event")
            if event not in ("session_open", "complete"):
                raise ExperimentError(
                    f'timeline "on" event must be session_open or complete, got {event!r}'
                )
            validate_session_pattern(self.on.get("pattern"))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"transition": self.transition, "select": self.select}
        if self.at_step is not None:
            data["at_step"] = self.at_step
        if self.on is not None:
            data["on"] = dict(self.on)
        if self.offset != 1:
            data["offset"] = self.offset
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            transition=str(data["transition"]),
            select=data["select"],
            at_step=data.get("at_step"),
            on=dict(data["on"]) if data.get("on") is not None else None,
            offset=int(data.get("offset", 1)),
        )


@dataclass
class ScenarioSpec:
    """A complete, named adversarial scenario.

    Attributes:
        name: registry name (kebab-case by convention).
        description: one-line human description shown by the CLI.
        protocol: default runner name (``repro.experiments.registry.RUNNERS``).
        params: default runner keyword arguments.  The special value
            ``"alternating"`` / ``"half"`` for an ``inputs`` param expands to
            per-party binary inputs at run time (scenarios cannot know ``n``).
        scale: optional scale preset name (:mod:`repro.scenarios.presets`)
            providing the default ``n`` and the matched field prime.
        corruption: the corruption plan.
        timeline: the fault timeline.
        scheduler: optional hostile scheduler spec.
    """

    name: str
    description: str = ""
    protocol: str = "weak_coin"
    params: Dict[str, Any] = field(default_factory=dict)
    scale: Optional[str] = None
    corruption: CorruptionPlan = field(default_factory=CorruptionPlan)
    timeline: List[FaultEvent] = field(default_factory=list)
    scheduler: Optional[SchedulerSpec] = None

    def __post_init__(self) -> None:
        if isinstance(self.corruption, Mapping):
            self.corruption = CorruptionPlan.from_dict(self.corruption)
        self.timeline = [
            event if isinstance(event, FaultEvent) else FaultEvent.from_dict(event)
            for event in self.timeline
        ]
        if isinstance(self.scheduler, Mapping):
            self.scheduler = SchedulerSpec.from_dict(self.scheduler)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ExperimentError`."""
        if not self.name:
            raise ExperimentError("scenario needs a non-empty name")
        if not self.protocol:
            raise ExperimentError(f"scenario {self.name!r}: missing protocol name")
        preset_for(self.scale)  # raises on unknown preset names
        self.corruption.validate()
        for event in self.timeline:
            event.validate()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "protocol": self.protocol}
        if self.description:
            data["description"] = self.description
        if self.params:
            data["params"] = dict(self.params)
        if self.scale is not None:
            data["scale"] = self.scale
        corruption = self.corruption.to_dict()
        if corruption:
            data["corruption"] = corruption
        if self.timeline:
            data["timeline"] = [event.to_dict() for event in self.timeline]
        if self.scheduler is not None:
            data["scheduler"] = self.scheduler.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        try:
            return cls(
                name=str(data["name"]),
                description=str(data.get("description", "")),
                protocol=str(data.get("protocol", "weak_coin")),
                params=dict(data.get("params", {})),
                scale=data.get("scale"),
                corruption=CorruptionPlan.from_dict(data.get("corruption", {})),
                timeline=[FaultEvent.from_dict(event) for event in data.get("timeline", [])],
                scheduler=(
                    SchedulerSpec.from_dict(data["scheduler"])
                    if data.get("scheduler") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed scenario: {exc}") from exc

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())
