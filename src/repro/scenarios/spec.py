"""Declarative adversarial scenario specifications.

A :class:`ScenarioSpec` is to an attack what a
:class:`~repro.experiments.spec.CampaignSpec` is to an experiment: a plain
JSON-serialisable description, with every executable piece named through a
registry string and every target described by a predicate
(:mod:`repro.scenarios.predicates`).  A scenario composes four orthogonal
ingredients:

* a **corruption plan** -- static corruptions applied before the run plus
  *adaptive* rules that corrupt parties mid-run when trigger events fire,
  all under an explicit corruption budget;
* a **fault timeline** -- crash / silence / equivocate / recover / restart /
  tamper / reprioritize transitions triggered at delivery counts or protocol
  phase events;
* a **hostile scheduler** -- one of the adversarial scheduler family
  (:mod:`repro.scenarios.schedulers`) or any registered scheduler;
* a **scale preset** -- a named ``(n, prime)`` operating point
  (:mod:`repro.scenarios.presets`).

Specs deliberately contain no live objects, so scenarios serialise losslessly
to JSON, ship to campaign workers, and diff cleanly in review::

    spec = get_scenario("dealer-ambush")
    same = ScenarioSpec.from_dict(spec.to_dict())
    assert same == spec
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ExperimentError
from repro.experiments.spec import BehaviorSpec, SchedulerSpec
from repro.scenarios.predicates import (
    compile_message_predicate,
    validate_party_selector,
    validate_session_pattern,
)
from repro.scenarios.presets import preset_for

#: Valid adaptive-rule trigger events.
RULE_EVENTS = ("session_open", "complete", "step")
#: Valid fault-timeline transitions.
TRANSITIONS = (
    "crash",
    "silence",
    "equivocate",
    "recover",
    "restart",
    "tamper",
    "reprioritize",
)
#: Timeline transitions that corrupt the target (and therefore spend budget).
CORRUPTING_TRANSITIONS = ("crash", "equivocate", "tamper")

#: Scheduler-action operations a reactive scheduler understands.
SCHEDULER_ACTION_OPS = ("boost", "delay", "clear")

#: Channel-matching keys of a tamper spec (all optional, conjunctive).
TAMPER_MATCH_KEYS = frozenset({"kinds", "receivers", "session"})
#: Payload-mutation keys of a tamper spec (at least one required).
TAMPER_MUTATION_KEYS = frozenset({"offset", "rewrite_kind", "drop_fraction"})


def validate_tamper(tamper: Any) -> None:
    """Shape-check a tamper spec; raise :class:`ExperimentError`.

    A tamper spec selects outgoing channels (``kinds`` -- payload kind tags,
    ``receivers`` -- a party selector, ``session`` -- a session pattern; all
    optional, all must match) and applies at least one mutation: ``offset``
    (add to every integer field element, mod the field prime),
    ``rewrite_kind`` (replace the payload kind tag) or ``drop_fraction``
    (deterministically drop that fraction of matched messages).
    """
    if not isinstance(tamper, Mapping):
        raise ExperimentError(f"tamper spec must be a mapping, got {tamper!r}")
    unknown = set(tamper) - TAMPER_MATCH_KEYS - TAMPER_MUTATION_KEYS
    if unknown:
        raise ExperimentError(
            f"unknown tamper keys: {', '.join(sorted(unknown))}"
        )
    if not TAMPER_MUTATION_KEYS.intersection(tamper):
        raise ExperimentError(
            "tamper spec needs at least one mutation: "
            + ", ".join(sorted(TAMPER_MUTATION_KEYS))
        )
    if "kinds" in tamper:
        kinds = tamper["kinds"]
        if not isinstance(kinds, (list, tuple)) or not all(
            isinstance(kind, str) for kind in kinds
        ):
            raise ExperimentError("tamper kinds must be a list of strings")
    if "receivers" in tamper:
        validate_party_selector(tamper["receivers"])
    if "session" in tamper:
        validate_session_pattern(tamper["session"])
    if "offset" in tamper and int(tamper["offset"]) == 0:
        raise ExperimentError("tamper offset must be non-zero")
    if "rewrite_kind" in tamper and (
        not isinstance(tamper["rewrite_kind"], str) or not tamper["rewrite_kind"]
    ):
        raise ExperimentError("tamper rewrite_kind must be a non-empty string")
    if "drop_fraction" in tamper:
        fraction = float(tamper["drop_fraction"])
        if not 0.0 < fraction <= 1.0:
            raise ExperimentError(
                f"tamper drop_fraction must be in (0, 1], got {fraction}"
            )


def validate_scheduler_actions(actions: Any, has_event_pid: bool) -> None:
    """Shape-check a ``scheduler_actions`` list; raise :class:`ExperimentError`.

    Each action is ``{"op": "boost" | "delay", "predicate": {...},
    "expires": steps?}`` or ``{"op": "clear"}``.  The predicate is a message
    predicate (:func:`~repro.scenarios.predicates.compile_message_predicate`)
    whose ``senders`` / ``receivers`` may also be the placeholder string
    ``"event"``, substituted at fire time with the party the triggering phase
    event captured -- only meaningful on phase-triggered entries
    (``has_event_pid``).
    """
    if not isinstance(actions, (list, tuple)) or not actions:
        raise ExperimentError("scheduler_actions must be a non-empty list")
    for action in actions:
        if not isinstance(action, Mapping):
            raise ExperimentError(f"scheduler action must be a mapping, got {action!r}")
        op = action.get("op")
        if op not in SCHEDULER_ACTION_OPS:
            raise ExperimentError(
                f"scheduler action op must be one of {SCHEDULER_ACTION_OPS}, got {op!r}"
            )
        if op == "clear":
            if set(action) - {"op"}:
                raise ExperimentError('a "clear" scheduler action takes no other keys')
            continue
        if set(action) - {"op", "predicate", "expires"}:
            raise ExperimentError(
                f"unknown scheduler action keys: "
                f"{', '.join(sorted(set(action) - {'op', 'predicate', 'expires'}))}"
            )
        predicate = action.get("predicate")
        if not isinstance(predicate, Mapping):
            raise ExperimentError(f'a "{op}" scheduler action needs a predicate mapping')
        probe = dict(predicate)
        for key in ("senders", "receivers"):
            if probe.get(key) == "event":
                if not has_event_pid:
                    raise ExperimentError(
                        f'scheduler-action predicate {key}="event" needs a phase '
                        f"trigger (an entry fired by session_open/complete)"
                    )
                probe[key] = [0]
        # Compile against a huge n: validates keys, selectors and patterns.
        compile_message_predicate(probe, 1 << 20)
        expires = action.get("expires")
        if expires is not None and int(expires) < 1:
            raise ExperimentError("scheduler action expires must be >= 1 when given")


@dataclass
class StaticCorruption:
    """A corruption applied before the run starts.

    Attributes:
        select: party selector naming the corrupted parties.
        behavior: the behaviour (a :class:`BehaviorSpec`) they run.
    """

    select: Any
    behavior: BehaviorSpec

    def __post_init__(self) -> None:
        if isinstance(self.behavior, Mapping):
            self.behavior = BehaviorSpec.from_dict(self.behavior)

    def validate(self) -> None:
        validate_party_selector(self.select)
        if not self.behavior.behavior:
            raise ExperimentError("static corruption needs a behavior name")

    def to_dict(self) -> Dict[str, Any]:
        return {"select": self.select, "behavior": self.behavior.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StaticCorruption":
        return cls(select=data["select"], behavior=BehaviorSpec.from_dict(data["behavior"]))


@dataclass
class AdaptiveRule:
    """One trigger -> corruption rule of an adaptive adversary.

    Attributes:
        on: trigger event -- ``"session_open"`` / ``"complete"`` (protocol
            phase events carrying a session) or ``"step"`` (delivery count).
        behavior: behaviour installed on the corrupted target(s); ``None``
            makes the rule scheduler-only (it must then carry
            ``scheduler_actions``).
        pattern: session pattern the event's session must match (session
            events only); a ``{"pid": true}`` component captures the party id
            embedded in the session.
        at_step: delivery count threshold (``"step"`` trigger only).
        target: who gets corrupted -- ``"captured"`` (the pid captured by the
            pattern), ``"subject"`` (the party the event happened at), or a
            party selector.  Ignored for scheduler-only rules.
        max_firings: cap on successful firings (``None`` = only the budget
            limits the rule).
        scheduler_actions: reactive-scheduler reprioritisations applied each
            time the rule fires (see :func:`validate_scheduler_actions`);
            requires the scenario to run a reactive scheduler.
    """

    on: str
    behavior: Optional[BehaviorSpec] = None
    pattern: Optional[List[Any]] = None
    at_step: Optional[int] = None
    target: Any = "captured"
    max_firings: Optional[int] = None
    scheduler_actions: Optional[List[Dict[str, Any]]] = None

    def __post_init__(self) -> None:
        if isinstance(self.behavior, Mapping):
            self.behavior = BehaviorSpec.from_dict(self.behavior)

    def validate(self) -> None:
        if self.on not in RULE_EVENTS:
            raise ExperimentError(
                f"adaptive rule event must be one of {RULE_EVENTS}, got {self.on!r}"
            )
        if self.behavior is None and not self.scheduler_actions:
            raise ExperimentError(
                "adaptive rule needs a behavior and/or scheduler_actions"
            )
        if self.on == "step":
            if self.at_step is None or int(self.at_step) < 0:
                raise ExperimentError("step-triggered rules need a non-negative at_step")
            if self.behavior is not None and self.target in ("captured", "subject"):
                raise ExperimentError(
                    "step-triggered rules have no event party; target must be a selector"
                )
        else:
            if self.pattern is None:
                raise ExperimentError(f"{self.on!r}-triggered rules need a session pattern")
            validate_session_pattern(self.pattern)
            if (
                self.behavior is not None
                and self.target == "captured"
                and {"pid": True} not in self.pattern
            ):
                raise ExperimentError(
                    'target "captured" needs a {"pid": true} component in the pattern'
                )
        if self.behavior is not None and self.target not in ("captured", "subject"):
            validate_party_selector(self.target)
        if self.max_firings is not None and int(self.max_firings) < 1:
            raise ExperimentError("max_firings must be >= 1 when given")
        if self.scheduler_actions is not None:
            validate_scheduler_actions(
                self.scheduler_actions, has_event_pid=self.on != "step"
            )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"on": self.on}
        if self.behavior is not None:
            data["behavior"] = self.behavior.to_dict()
        if self.pattern is not None:
            data["pattern"] = list(self.pattern)
        if self.at_step is not None:
            data["at_step"] = self.at_step
        if self.target != "captured":
            data["target"] = self.target
        if self.max_firings is not None:
            data["max_firings"] = self.max_firings
        if self.scheduler_actions is not None:
            data["scheduler_actions"] = [dict(action) for action in self.scheduler_actions]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdaptiveRule":
        return cls(
            on=str(data["on"]),
            behavior=(
                BehaviorSpec.from_dict(data["behavior"])
                if data.get("behavior") is not None
                else None
            ),
            pattern=list(data["pattern"]) if data.get("pattern") is not None else None,
            at_step=data.get("at_step"),
            target=data.get("target", "captured"),
            max_firings=data.get("max_firings"),
            scheduler_actions=(
                [dict(action) for action in data["scheduler_actions"]]
                if data.get("scheduler_actions") is not None
                else None
            ),
        )


@dataclass
class CorruptionPlan:
    """The scenario's corruption strategy: static set + adaptive rules + budget.

    Attributes:
        budget: maximum number of parties this scenario may ever corrupt
            (static + adaptive + corrupting timeline transitions); ``None``
            means "the resilience bound ``t`` of the concrete run".  The
            effective budget is always clamped to ``t``.
        static: corruptions applied before the run.
        adaptive: mid-run corruption rules (see :class:`AdaptiveRule`).
    """

    budget: Optional[int] = None
    static: List[StaticCorruption] = field(default_factory=list)
    adaptive: List[AdaptiveRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.static = [
            entry if isinstance(entry, StaticCorruption) else StaticCorruption.from_dict(entry)
            for entry in self.static
        ]
        self.adaptive = [
            rule if isinstance(rule, AdaptiveRule) else AdaptiveRule.from_dict(rule)
            for rule in self.adaptive
        ]

    def validate(self) -> None:
        if self.budget is not None and int(self.budget) < 0:
            raise ExperimentError(f"corruption budget must be >= 0, got {self.budget}")
        for entry in self.static:
            entry.validate()
        for rule in self.adaptive:
            rule.validate()

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.budget is not None:
            data["budget"] = self.budget
        if self.static:
            data["static"] = [entry.to_dict() for entry in self.static]
        if self.adaptive:
            data["adaptive"] = [rule.to_dict() for rule in self.adaptive]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorruptionPlan":
        return cls(
            budget=data.get("budget"),
            static=[StaticCorruption.from_dict(entry) for entry in data.get("static", [])],
            adaptive=[AdaptiveRule.from_dict(rule) for rule in data.get("adaptive", [])],
        )


@dataclass
class FaultEvent:
    """One fault-timeline transition.

    Attributes:
        transition: ``"crash"``, ``"silence"``, ``"equivocate"``,
            ``"recover"``, ``"restart"``, ``"tamper"`` or ``"reprioritize"``.
            Crash, equivocate and tamper corrupt the target (spending budget,
            irreversibly for accounting purposes); silence only severs the
            target's outgoing channel; recover restores a silenced party for
            free or restarts a corrupted one; restart rejoins a corrupted
            party with fresh protocol state (refunding nothing);
            reprioritize touches no party and only applies its
            ``scheduler_actions``.
        select: party selector naming the affected parties (ignored by
            ``reprioritize``).
        at_step: fire after this many deliveries, or
        on: fire on a phase event: ``{"event": "session_open" | "complete",
            "pattern": [...], "count": k?}`` -- with ``count`` the entry fires
            on the k-th matching event (default 1), turning trace statistics
            like "8 sharings have completed" into triggers.
        offset: perturbation offset for ``equivocate`` (forwarded to the
            equivocating behaviour).
        tamper: tamper spec for ``tamper`` transitions (see
            :func:`validate_tamper`).
        scheduler_actions: reactive-scheduler reprioritisations applied when
            the entry fires (see :func:`validate_scheduler_actions`).
    """

    transition: str
    select: Any
    at_step: Optional[int] = None
    on: Optional[Dict[str, Any]] = None
    offset: int = 1
    tamper: Optional[Dict[str, Any]] = None
    scheduler_actions: Optional[List[Dict[str, Any]]] = None

    def validate(self) -> None:
        if self.transition not in TRANSITIONS:
            raise ExperimentError(
                f"timeline transition must be one of {TRANSITIONS}, got {self.transition!r}"
            )
        validate_party_selector(self.select)
        if (self.at_step is None) == (self.on is None):
            raise ExperimentError(
                "timeline event needs exactly one trigger: at_step or on"
            )
        if self.at_step is not None and int(self.at_step) < 0:
            raise ExperimentError("timeline at_step must be non-negative")
        if self.on is not None:
            event = self.on.get("event")
            if event not in ("session_open", "complete"):
                raise ExperimentError(
                    f'timeline "on" event must be session_open or complete, got {event!r}'
                )
            validate_session_pattern(self.on.get("pattern"))
            unknown = set(self.on) - {"event", "pattern", "count"}
            if unknown:
                raise ExperimentError(
                    f'unknown timeline "on" keys: {", ".join(sorted(unknown))}'
                )
            if "count" in self.on and int(self.on["count"]) < 1:
                raise ExperimentError('timeline "on" count must be >= 1 when given')
        if self.transition == "tamper":
            if self.tamper is None:
                raise ExperimentError('a "tamper" transition needs a tamper spec')
            validate_tamper(self.tamper)
        elif self.tamper is not None:
            raise ExperimentError(
                f'a tamper spec is only valid on "tamper" transitions, '
                f"not {self.transition!r}"
            )
        if self.scheduler_actions is not None:
            validate_scheduler_actions(
                self.scheduler_actions, has_event_pid=self.on is not None
            )
        if self.transition == "reprioritize" and not self.scheduler_actions:
            raise ExperimentError(
                'a "reprioritize" transition needs scheduler_actions'
            )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"transition": self.transition, "select": self.select}
        if self.at_step is not None:
            data["at_step"] = self.at_step
        if self.on is not None:
            data["on"] = dict(self.on)
        if self.offset != 1:
            data["offset"] = self.offset
        if self.tamper is not None:
            data["tamper"] = dict(self.tamper)
        if self.scheduler_actions is not None:
            data["scheduler_actions"] = [dict(action) for action in self.scheduler_actions]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        return cls(
            transition=str(data["transition"]),
            select=data["select"],
            at_step=data.get("at_step"),
            on=dict(data["on"]) if data.get("on") is not None else None,
            offset=int(data.get("offset", 1)),
            tamper=dict(data["tamper"]) if data.get("tamper") is not None else None,
            scheduler_actions=(
                [dict(action) for action in data["scheduler_actions"]]
                if data.get("scheduler_actions") is not None
                else None
            ),
        )


@dataclass
class ScenarioSpec:
    """A complete, named adversarial scenario.

    Attributes:
        name: registry name (kebab-case by convention).
        description: one-line human description shown by the CLI.
        protocol: default runner name (``repro.experiments.registry.RUNNERS``).
        params: default runner keyword arguments.  The special value
            ``"alternating"`` / ``"half"`` for an ``inputs`` param expands to
            per-party binary inputs at run time (scenarios cannot know ``n``).
        scale: optional scale preset name (:mod:`repro.scenarios.presets`)
            providing the default ``n`` and the matched field prime.
        corruption: the corruption plan.
        timeline: the fault timeline.
        scheduler: optional hostile scheduler spec.
    """

    name: str
    description: str = ""
    protocol: str = "weak_coin"
    params: Dict[str, Any] = field(default_factory=dict)
    scale: Optional[str] = None
    corruption: CorruptionPlan = field(default_factory=CorruptionPlan)
    timeline: List[FaultEvent] = field(default_factory=list)
    scheduler: Optional[SchedulerSpec] = None

    def __post_init__(self) -> None:
        if isinstance(self.corruption, Mapping):
            self.corruption = CorruptionPlan.from_dict(self.corruption)
        self.timeline = [
            event if isinstance(event, FaultEvent) else FaultEvent.from_dict(event)
            for event in self.timeline
        ]
        if isinstance(self.scheduler, Mapping):
            self.scheduler = SchedulerSpec.from_dict(self.scheduler)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ExperimentError`."""
        if not self.name:
            raise ExperimentError("scenario needs a non-empty name")
        if not self.protocol:
            raise ExperimentError(f"scenario {self.name!r}: missing protocol name")
        preset_for(self.scale)  # raises on unknown preset names
        self.corruption.validate()
        for event in self.timeline:
            event.validate()
        uses_actions = any(event.scheduler_actions for event in self.timeline) or any(
            rule.scheduler_actions for rule in self.corruption.adaptive
        )
        if uses_actions and self.scheduler is None:
            # The director re-checks at attach time (a custom reactive
            # scheduler may be registered under any name); a spec with no
            # scheduler at all can never satisfy its actions, so fail early.
            raise ExperimentError(
                f"scenario {self.name!r} declares scheduler_actions but names "
                f'no scheduler; use the "reactive" scheduler'
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "protocol": self.protocol}
        if self.description:
            data["description"] = self.description
        if self.params:
            data["params"] = dict(self.params)
        if self.scale is not None:
            data["scale"] = self.scale
        corruption = self.corruption.to_dict()
        if corruption:
            data["corruption"] = corruption
        if self.timeline:
            data["timeline"] = [event.to_dict() for event in self.timeline]
        if self.scheduler is not None:
            data["scheduler"] = self.scheduler.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        try:
            return cls(
                name=str(data["name"]),
                description=str(data.get("description", "")),
                protocol=str(data.get("protocol", "weak_coin")),
                params=dict(data.get("params", {})),
                scale=data.get("scale"),
                corruption=CorruptionPlan.from_dict(data.get("corruption", {})),
                timeline=[FaultEvent.from_dict(event) for event in data.get("timeline", [])],
                scheduler=(
                    SchedulerSpec.from_dict(data["scheduler"])
                    if data.get("scheduler") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed scenario: {exc}") from exc

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())
