"""Scenario execution engine: adaptive corruption and fault timelines, live.

Two classes turn a declarative :class:`~repro.scenarios.spec.ScenarioSpec`
into a running attack:

* :class:`ScenarioRuntime` resolves a spec against a concrete party count --
  party selectors become pid sets, the scale preset yields the matched field
  prime, static corruptions become behaviour factories, the scheduler spec
  becomes a :class:`~repro.net.scheduler.Scheduler` -- and builds one fresh
  :class:`ScenarioDirector` per trial.
* :class:`ScenarioDirector` is the live adversary installed on the network
  (:meth:`repro.net.network.Network.install_director`).  It observes protocol
  lifecycle events (session opens, completions) and -- when the scenario has
  step triggers -- every delivery, and reacts by corrupting parties mid-run
  or driving fault-timeline transitions.  Every action is appended to the
  director's ``actions`` audit log, and the **corruption budget is a hard
  invariant**: the director never corrupts beyond
  ``min(spec budget, resilience bound t)``, whatever the rules ask for.

Determinism: the director's decisions are pure functions of the (seeded,
deterministic) event stream, so a scenario trial is byte-identical across
reruns of the same seed -- asserted by ``tests/scenarios/test_engine.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.config import max_faults
from repro.errors import ExperimentError
from repro.experiments.registry import (
    RUNNERS,
    SCHEDULERS,
    build_behavior_factory,
)
from repro.experiments.spec import BehaviorSpec
from repro.net.message import Message, SessionId
from repro.net.network import Network
from repro.net.runtime import SimulationResult
from repro.net.scheduler import Scheduler
from repro.scenarios.predicates import match_session, resolve_parties
from repro.scenarios.presets import ScalePreset, preset_for
from repro.scenarios.schedulers import resolve_scheduler_params
from repro.scenarios.spec import (
    CORRUPTING_TRANSITIONS,
    AdaptiveRule,
    FaultEvent,
    ScenarioSpec,
)

#: ``inputs`` shorthands expanded per ``n`` at run time.
_INPUT_PATTERNS: Dict[str, Callable[[int], Dict[int, int]]] = {
    "alternating": lambda n: {pid: pid % 2 for pid in range(n)},
    "half": lambda n: {pid: 0 if pid < n // 2 else 1 for pid in range(n)},
    "zeros": lambda n: {pid: 0 for pid in range(n)},
    "ones": lambda n: {pid: 1 for pid in range(n)},
}


def expand_inputs(value: Any, n: int) -> Any:
    """Expand an ``inputs`` shorthand (``"alternating"``...) to a per-pid map."""
    if isinstance(value, str):
        try:
            return _INPUT_PATTERNS[value](n)
        except KeyError:
            raise ExperimentError(
                f"unknown inputs pattern {value!r}; known: "
                f"{', '.join(sorted(_INPUT_PATTERNS))}"
            ) from None
    return value


class ScenarioDirector:
    """The live adversary for one trial: observes events, applies the attack.

    Install on a network via :meth:`Network.install_director` (done by the
    runners when a ``director`` is passed).  The director carries all mutable
    attack state -- budget spent, rules fired, silenced parties -- so one
    instance must drive exactly one trial.
    """

    def __init__(
        self,
        n: int,
        budget: Optional[int],
        rules: List[AdaptiveRule],
        timeline: List[FaultEvent],
    ) -> None:
        self.n = n
        t = max_faults(n)
        #: Hard cap on parties this scenario may corrupt (never above ``t``).
        self.budget = t if budget is None else min(int(budget), t)
        self.rules = rules
        self._rule_firings = [0] * len(rules)
        #: Step-triggered rules evaluate once, when their threshold is first
        #: crossed (phase rules instead re-evaluate per matching event).
        self._step_rule_done = [False] * len(rules)
        self.timeline = timeline
        self._timeline_fired = [False] * len(timeline)
        #: Per-entry count of phase events matched so far (``on.count``
        #: triggers fire on the k-th match, not the first).
        self._timeline_matches = [0] * len(timeline)
        #: Step-triggered work still pending, as ``(index, entry)`` in spec
        #: order.  ``on_deliver`` consumes these instead of rescanning the
        #: full timeline/rule lists on every delivery: once both lists drain,
        #: the per-delivery callback is two falsy checks.
        self._pending_step_timeline: List[Tuple[int, FaultEvent]] = [
            (index, event)
            for index, event in enumerate(timeline)
            if event.at_step is not None
        ]
        self._pending_step_rules: List[Tuple[int, AdaptiveRule]] = [
            (index, rule) for index, rule in enumerate(rules) if rule.on == "step"
        ]
        #: pid -> outgoing mutator saved when the party was silenced.
        self._silenced: Dict[int, Any] = {}
        #: Parties corrupted *by this director or the static plan* (budget).
        self.corrupted: set = set()
        #: pids whose corruption was refused on budget, already logged.
        self._budget_blocked: set = set()
        #: Audit log of ``(step, action, pid, detail)`` tuples (``pid`` is
        #: None for actions without a subject party, e.g. scheduler clears).
        self.actions: List[Tuple[int, str, Optional[int], str]] = []
        self.network: Optional[Network] = None
        #: Whether the network must route deliveries through the observed
        #: loop (only needed for step triggers).
        self.wants_deliveries = bool(
            self._pending_step_rules or self._pending_step_timeline
        )
        #: Whether any entry carries scheduler_actions (requires the trial's
        #: scheduler to be reactive -- checked at attach time).
        self._needs_reactive = any(
            event.scheduler_actions for event in timeline
        ) or any(rule.scheduler_actions for rule in rules)
        #: The trial's reactive scheduler, bound at attach time (None when
        #: the scheduler does not accept director actions).
        self.reactive_scheduler: Optional[Any] = None
        self._behavior_factories: Dict[Any, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    def attach(self, network: Network) -> None:
        """Bind to the network; pre-applied static corruptions join the budget."""
        self.network = network
        scheduler = network.scheduler
        if getattr(scheduler, "supports_reactions", False):
            self.reactive_scheduler = scheduler
        elif self._needs_reactive:
            raise ExperimentError(
                "scenario declares scheduler_actions but the trial's scheduler "
                'does not accept them; use the "reactive" scheduler'
            )
        for pid in network.corrupted_pids():
            self.corrupted.add(pid)
        if len(self.corrupted) > self.budget:
            raise ExperimentError(
                f"scenario statically corrupts {len(self.corrupted)} parties, "
                f"over its budget of {self.budget}"
            )

    # ------------------------------------------------------------------
    # Network observation hooks.
    # ------------------------------------------------------------------
    def on_session_open(self, pid: int, session: SessionId) -> None:
        self._handle_phase_event("session_open", pid, session)

    def on_complete(self, pid: int, session: SessionId) -> None:
        self._handle_phase_event("complete", pid, session)

    def on_deliver(self, step: int, message: Message) -> None:
        # Step-triggered entries are consumed from pending lists (spec order
        # preserved): after the last threshold fires, this callback is two
        # falsy checks per delivery, not a rescan of the whole spec.
        pending = self._pending_step_timeline
        if pending:
            remaining = []
            for index, event in pending:
                if step >= event.at_step:
                    self._timeline_fired[index] = True
                    self._apply_transition(event)
                else:
                    remaining.append((index, event))
            self._pending_step_timeline = remaining
        pending_rules = self._pending_step_rules
        if pending_rules:
            remaining_rules = []
            for index, rule in pending_rules:
                if step >= rule.at_step:
                    self._step_rule_done[index] = True
                    self._maybe_fire_rule(index, rule, subject=None, captured=None)
                else:
                    remaining_rules.append((index, rule))
            self._pending_step_rules = remaining_rules

    # ------------------------------------------------------------------
    # Rule and timeline dispatch.
    # ------------------------------------------------------------------
    def _handle_phase_event(self, event: str, pid: int, session: SessionId) -> None:
        for index, entry in enumerate(self.timeline):
            if self._timeline_fired[index] or entry.on is None:
                continue
            if entry.on["event"] != event:
                continue
            captures = match_session(entry.on["pattern"], session)
            if captures is None:
                continue
            count = self._timeline_matches[index] = self._timeline_matches[index] + 1
            if count < int(entry.on.get("count", 1)):
                continue
            self._timeline_fired[index] = True
            self._apply_transition(entry, event_pid=captures.get("pid", pid))
        for index, rule in enumerate(self.rules):
            if rule.on != event:
                continue
            captures = match_session(rule.pattern, session)
            if captures is None:
                continue
            self._maybe_fire_rule(index, rule, subject=pid, captured=captures.get("pid"))

    def _maybe_fire_rule(
        self,
        index: int,
        rule: AdaptiveRule,
        subject: Optional[int],
        captured: Optional[int],
    ) -> None:
        if rule.max_firings is not None and self._rule_firings[index] >= rule.max_firings:
            return
        fired = False
        if rule.behavior is not None:
            if rule.target == "captured":
                targets = [captured] if captured is not None else []
            elif rule.target == "subject":
                targets = [subject] if subject is not None else []
            else:
                targets = resolve_parties(rule.target, self.n)
            for pid in targets:
                if self._corrupt(pid, rule.behavior, f"rule[{index}]:{rule.on}"):
                    fired = True
        if rule.scheduler_actions:
            event_pid = captured if captured is not None else subject
            if self._apply_scheduler_actions(
                rule.scheduler_actions, event_pid, f"rule[{index}]:{rule.on}"
            ):
                fired = True
        if fired:
            self._rule_firings[index] += 1

    def _apply_transition(self, event: FaultEvent, event_pid: Optional[int] = None) -> None:
        assert self.network is not None
        targets = resolve_parties(event.select, self.n)
        if event.transition in CORRUPTING_TRANSITIONS:
            # Corrupting transitions are irreversible and spend budget.
            if event.transition == "crash":
                spec = BehaviorSpec("hard_crash")
            elif event.transition == "tamper":
                spec = BehaviorSpec("tamper", dict(event.tamper or {}))
            else:  # equivocate
                spec = BehaviorSpec("split_equivocator", {"offset": event.offset})
            for pid in targets:
                self._corrupt(pid, spec, f"timeline:{event.transition}")
        elif event.transition == "silence":
            for pid in targets:
                self._silence(pid)
        elif event.transition == "recover":
            for pid in targets:
                self._recover(pid)
        elif event.transition == "restart":
            for pid in targets:
                self._restart(pid, "timeline:restart")
        # "reprioritize" touches no party; like every other transition it may
        # carry scheduler actions, applied once per firing below.
        if event.scheduler_actions:
            self._apply_scheduler_actions(
                event.scheduler_actions, event_pid, f"timeline:{event.transition}"
            )

    # ------------------------------------------------------------------
    # Actions.
    # ------------------------------------------------------------------
    def _corrupt(self, pid: int, behavior: BehaviorSpec, reason: str) -> bool:
        """Corrupt ``pid`` if the budget allows; returns whether it happened."""
        assert self.network is not None
        process = self.network.processes[pid]
        if process.is_corrupted:
            return False
        if pid not in self.corrupted and len(self.corrupted) >= self.budget:
            # Log each blocked pid once; phase rules can re-attempt the same
            # corruption on every matching event, and the audit log must stay
            # bounded by n, not by the event count.  A pid already in
            # ``corrupted`` was paid for earlier (re-corrupting a restarted
            # party costs nothing extra).
            if pid not in self._budget_blocked:
                self._budget_blocked.add(pid)
                self._log("budget-exhausted", pid, reason)
            return False
        factory = self._behavior_factory(behavior)
        process.corrupt(factory(process))
        self.corrupted.add(pid)
        self._log("corrupt", pid, f"{reason} behavior={behavior.behavior}")
        return True

    def _behavior_factory(self, behavior: BehaviorSpec) -> Callable[..., Any]:
        key = (behavior.behavior, repr(sorted(behavior.params.items())))
        factory = self._behavior_factories.get(key)
        if factory is None:
            factory = self._behavior_factories[key] = build_behavior_factory(behavior)
        return factory

    def _silence(self, pid: int) -> None:
        assert self.network is not None
        process = self.network.processes[pid]
        if process.is_corrupted or pid in self._silenced:
            # Skips are audited (not silently swallowed) so a timeline that
            # tries to silence an already-taken party stays explainable from
            # the action log alone.
            reason = "already corrupted" if process.is_corrupted else "already silenced"
            self._log("silence-skipped", pid, reason)
            return
        self._silenced[pid] = process.outgoing_mutator
        process.outgoing_mutator = lambda receiver, session, payload: None
        self._log("silence", pid, "outgoing channel severed")

    def _recover(self, pid: int) -> None:
        """Recover ``pid``: un-silence for free, or restart a corrupted party.

        Recovery of a silenced party restores its saved outgoing mutator and
        costs nothing (the party was honest all along).  A *corrupted* party
        cannot be un-corrupted -- recovering it is a restart: fresh protocol
        state, ``ever_corrupted`` kept, no budget refund.
        """
        assert self.network is not None
        process = self.network.processes[pid]
        if process.is_corrupted:
            self._restart(pid, "timeline:recover")
            return
        if pid in self._silenced:
            process.outgoing_mutator = self._silenced.pop(pid)
            self._log("recover", pid, "outgoing channel restored")
            return
        self._log("recover-skipped", pid, "party is neither silenced nor corrupted")

    def _restart(self, pid: int, reason: str) -> None:
        """Restart a corrupted party with fresh protocol state.

        The behaviour and the whole protocol tree are discarded and the root
        protocol is re-opened from the network's recorded recipe; the party
        runs honest code again but remains the adversary's for accounting
        (``ever_corrupted`` stays set, the budget refunds nothing, and its
        completions/outputs stay excluded).  Messages delivered before the
        restart are lost -- exactly the crash/recovery semantics of a node
        that rejoins from a blank slate.
        """
        network = self.network
        assert network is not None
        process = network.processes[pid]
        if not process.is_corrupted:
            self._log("restart-skipped", pid, "party is not corrupted")
            return
        # Any mutator saved while silencing belongs to the discarded state.
        self._silenced.pop(pid, None)
        process.reinitialize()
        self._log("restart", pid, f"{reason}: fresh protocol state, no budget refund")
        recipe = network.root_recipe
        if recipe is not None:
            session, factory, inputs, common_input = recipe
            kwargs = dict(common_input)
            kwargs.update(inputs.get(pid, {}))
            instance = process.create_protocol(session, factory)
            if not instance.started:
                instance.start(**kwargs)

    def _apply_scheduler_actions(
        self, actions: List[Dict[str, Any]], event_pid: Optional[int], reason: str
    ) -> bool:
        """Forward scheduler actions to the reactive scheduler; log changes."""
        scheduler = self.reactive_scheduler
        if scheduler is None:
            # attach() rejects scenarios that need reactions without a
            # reactive scheduler; this only guards directors constructed and
            # driven by hand.
            return False
        step = self.network.step_count if self.network is not None else 0
        changed = False
        for action in actions:
            described = scheduler.apply_action(action, self.n, step, event_pid)
            if described is not None:
                changed = True
                self._log("scheduler", event_pid, f"{reason}: {described}")
        return changed

    def _log(self, action: str, pid: Optional[int], detail: str) -> None:
        network = self.network
        step = network.step_count if network is not None else 0
        self.actions.append((step, action, pid, detail))
        if network is not None:
            # The audit log is also a trace client: every director action
            # becomes a ``director`` trace event, so streaming sinks (JSONL,
            # timeline) see the attack interleaved with the deliveries.
            network.trace.on_director(step, action, pid, detail)


class ScenarioRuntime:
    """A :class:`ScenarioSpec` resolved against a concrete party count.

    The runtime is reusable across trials of the same scenario and size (a
    campaign chunk builds one and calls :meth:`build_director` per seed).

    Attributes:
        spec: the scenario definition.
        n: resolved party count (explicit ``n`` beats the scale preset).
        preset: the scale preset, when the spec names one.
        prime: matched field prime (``None`` = library default).
    """

    def __init__(self, spec: ScenarioSpec, n: Optional[int] = None) -> None:
        spec.validate()
        self.spec = spec
        self.preset: Optional[ScalePreset] = preset_for(spec.scale)
        resolved_n = n if n is not None else (self.preset.n if self.preset else 4)
        if resolved_n < 1:
            raise ExperimentError(f"scenario needs a positive n, got {resolved_n}")
        self.n = resolved_n
        self.t = max_faults(resolved_n)
        self.prime: Optional[int] = None
        if self.preset is not None and self.preset.prime > resolved_n:
            self.prime = self.preset.prime
        self._static = self._resolve_static()

    # ------------------------------------------------------------------
    def _resolve_static(self) -> Dict[int, Callable[..., Any]]:
        corruptions: Dict[int, Callable[..., Any]] = {}
        budget = self.spec.corruption.budget
        cap = self.t if budget is None else min(int(budget), self.t)
        for entry in self.spec.corruption.static:
            factory = build_behavior_factory(entry.behavior)
            for pid in resolve_parties(entry.select, self.n):
                corruptions[pid] = factory
        if len(corruptions) > cap:
            raise ExperimentError(
                f"scenario {self.spec.name!r} statically corrupts "
                f"{len(corruptions)} parties at n={self.n}, over its budget of {cap}"
            )
        return corruptions

    # ------------------------------------------------------------------
    def static_corruptions(self) -> Dict[int, Callable[..., Any]]:
        """The resolved ``pid -> behaviour factory`` map (shared, reusable)."""
        return dict(self._static)

    def build_scheduler(self) -> Optional[Scheduler]:
        """Instantiate the scenario's hostile scheduler (fresh per trial)."""
        spec = self.spec.scheduler
        if spec is None:
            return None
        builder = SCHEDULERS.get(spec.scheduler)
        params = SCHEDULERS.normalize(
            spec.scheduler, resolve_scheduler_params(spec.params, self.n)
        )
        return builder(**params)

    def build_director(self) -> ScenarioDirector:
        """A fresh director for one trial (directors hold per-trial state)."""
        return ScenarioDirector(
            n=self.n,
            budget=self.spec.corruption.budget,
            rules=self.spec.corruption.adaptive,
            timeline=self.spec.timeline,
        )

    def runner_kwargs(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Protocol-runner kwargs: spec params, input shorthands expanded."""
        kwargs = dict(self.spec.params)
        if overrides:
            kwargs.update(overrides)
        if "inputs" in kwargs:
            kwargs["inputs"] = expand_inputs(kwargs["inputs"], self.n)
        return kwargs


def run_scenario(
    scenario: Any,
    n: Optional[int] = None,
    seed: int = 0,
    protocol: Optional[str] = None,
    params: Optional[Mapping[str, Any]] = None,
    tracing: bool = True,
    sinks: Optional[List[Any]] = None,
) -> SimulationResult:
    """Run one trial of a scenario and return its :class:`SimulationResult`.

    Args:
        scenario: a :class:`ScenarioSpec`, or a name resolved through the
            scenario registry (:mod:`repro.scenarios.library`).
        n: party count override (default: the scenario's scale preset, or 4).
        seed: trial seed.
        protocol: runner-name override (default: the scenario's protocol).
        params: runner keyword overrides merged over the scenario's params.
        tracing: forwarded to the runner (disable for throughput sweeps;
            trace-free trials still report message counts via the group
            meter).
        sinks: streaming trace sinks (:mod:`repro.obs.sinks`) attached to the
            trial's trace; requires ``tracing=True``.

    Raises:
        ExperimentError: on unknown names/params, or when ``sinks`` are given
            with ``tracing=False`` (sinks only see events the trace emits --
            silently producing an empty trace file would hide the mistake).
    """
    if sinks and not tracing:
        raise ExperimentError(
            "run_scenario: sinks require tracing=True (a trace-free trial "
            "emits no events for them)"
        )
    if isinstance(scenario, str):
        from repro.scenarios.library import get_scenario

        scenario = get_scenario(scenario)
    runtime = ScenarioRuntime(scenario, n=n)
    runner_name = protocol or scenario.protocol
    runner = RUNNERS.get(runner_name)
    kwargs = RUNNERS.normalize(runner_name, runtime.runner_kwargs(params))
    call: Dict[str, Any] = dict(kwargs)
    if runtime.prime is not None and "prime" not in call:
        call["prime"] = runtime.prime
    call.setdefault("tracing", tracing)
    if sinks:
        call.setdefault("sinks", sinks)
    corruptions = runtime.static_corruptions()
    return runner(
        n=runtime.n,
        seed=seed,
        scheduler=runtime.build_scheduler(),
        corruptions=corruptions or None,
        director=runtime.build_director(),
        **call,
    )
