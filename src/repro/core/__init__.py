"""Core configuration, public API and result types."""

from repro.core.config import DEFAULT_PRIME, ProtocolParams, max_faults, validate_resilience

__all__ = [
    "DEFAULT_PRIME",
    "ProtocolParams",
    "max_faults",
    "validate_resilience",
]
