"""Aggregated experiment results.

The one-call runners in :mod:`repro.core.api` return a
:class:`~repro.net.runtime.SimulationResult` per execution; the helpers here
aggregate many executions (different seeds) into the statistics the paper's
theorems talk about: per-value output frequencies, disagreement rates,
fair-validity rates, message counts and shun counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.net.runtime import SimulationResult


@dataclass
class TrialAggregate:
    """Statistics over a batch of simulated executions of one protocol."""

    trials: int = 0
    disagreements: int = 0
    value_counts: Counter = field(default_factory=Counter)
    total_messages: int = 0
    total_steps: int = 0
    total_shun_events: int = 0
    outputs: List[Any] = field(default_factory=list)

    def add(self, result: SimulationResult) -> None:
        """Fold one execution into the aggregate."""
        self.trials += 1
        self.total_messages += result.trace.messages_sent
        self.total_steps += result.steps
        self.total_shun_events += result.trace.total_shun_events()
        if result.disagreement:
            self.disagreements += 1
            self.outputs.append(dict(result.outputs))
            return
        value = result.values[0] if result.values else None
        self.outputs.append(value)
        self.value_counts[repr(value)] += 1

    # ------------------------------------------------------------------
    def frequency(self, value: Any) -> float:
        """Fraction of agreeing trials whose common output was ``value``."""
        if self.trials == 0:
            return 0.0
        return self.value_counts[repr(value)] / self.trials

    @property
    def disagreement_rate(self) -> float:
        """Fraction of trials in which honest parties disagreed."""
        return self.disagreements / self.trials if self.trials else 0.0

    @property
    def mean_messages(self) -> float:
        """Average number of messages sent per trial."""
        return self.total_messages / self.trials if self.trials else 0.0

    @property
    def mean_steps(self) -> float:
        """Average number of deliveries needed per trial."""
        return self.total_steps / self.trials if self.trials else 0.0

    @property
    def mean_shun_events(self) -> float:
        """Average number of shunning events per trial."""
        return self.total_shun_events / self.trials if self.trials else 0.0

    def hit_rate(self, predicate) -> float:
        """Fraction of agreeing trials whose output satisfies ``predicate``."""
        if self.trials == 0:
            return 0.0
        hits = sum(
            1
            for output in self.outputs
            if not isinstance(output, dict) and predicate(output)
        )
        return hits / self.trials

    def summary(self) -> Dict[str, Any]:
        """Headline metrics as a plain dictionary (for benchmark reporting)."""
        return {
            "trials": self.trials,
            "disagreement_rate": self.disagreement_rate,
            "value_counts": dict(self.value_counts),
            "mean_messages": round(self.mean_messages, 1),
            "mean_steps": round(self.mean_steps, 1),
            "mean_shun_events": round(self.mean_shun_events, 3),
        }


def aggregate(results: Iterable[SimulationResult]) -> TrialAggregate:
    """Aggregate an iterable of simulation results."""
    stats = TrialAggregate()
    for result in results:
        stats.add(result)
    return stats
