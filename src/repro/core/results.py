"""Aggregated experiment results.

The one-call runners in :mod:`repro.core.api` return a
:class:`~repro.net.runtime.SimulationResult` per execution; the helpers here
aggregate many executions (different seeds) into the statistics the paper's
theorems talk about: per-value output frequencies, disagreement rates,
fair-validity rates, message counts and shun counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.net.runtime import SimulationResult


def _merge_histograms(
    target: Optional[Dict[str, Any]], incoming: Dict[str, Any]
) -> Dict[str, Any]:
    """Bucketwise histogram merge (lazy import: obs builds on core elsewhere)."""
    from repro.obs.metrics import merge_histogram_dicts

    return merge_histogram_dicts(target, incoming)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of an output value to JSON-compatible types.

    Primitive values pass through unchanged; containers are converted
    recursively (dictionary keys become strings, as JSON requires); anything
    else falls back to ``repr``, which is also how :class:`TrialAggregate`
    keys its value counts.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(item) for item in value), key=repr)
    return repr(value)


@dataclass
class TrialAggregate:
    """Statistics over a batch of simulated executions of one protocol.

    All fields except ``total_elapsed_s`` are deterministic functions of the
    trials (parallel and sequential campaign runs produce byte-identical
    aggregates); ``total_elapsed_s`` accumulates wall-clock time and backs
    the advisory deliveries/sec throughput column, so it is excluded from
    :meth:`to_dict` and carried separately by the result store.
    """

    trials: int = 0
    disagreements: int = 0
    value_counts: Counter = field(default_factory=Counter)
    total_messages: int = 0
    total_steps: int = 0
    total_shun_events: int = 0
    total_dropped: int = 0
    #: Scenario-director action counts (corrupt/silence/recover/...), summed
    #: over the trials that ran under a director.
    director_actions: Counter = field(default_factory=Counter)
    #: Structured-metrics counter totals from trials run with a registry.
    #: Includes the per-network crypto-plane cache deltas folded in under
    #: ``crypto.plane.*`` names, which back the ablation harness's
    #: cache-hit-rate column.  The process-global Lagrange / plan-dispatch
    #: counters are deliberately NOT folded in -- their hit/miss split
    #: depends on cache warmth from earlier trials in the same process.
    metric_counters: Counter = field(default_factory=Counter)
    #: Message counts by payload kind (string keys), summed over trials that
    #: collected message stats (trace or group meter).
    sent_by_kind: Counter = field(default_factory=Counter)
    #: Merged structured-metrics histograms (``Histogram.to_dict`` payloads
    #: keyed by metric name), bucketwise-summed across trials -- the source
    #: of the completion-step / queue-depth percentiles in reports.
    metric_histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    outputs: List[Any] = field(default_factory=list)
    total_elapsed_s: float = 0.0

    def add(self, result: SimulationResult) -> None:
        """Fold one execution into the aggregate.

        Message totals come from whichever observability tier collected them
        (:meth:`SimulationResult.message_stats`): the trace when tracing was
        on, the group meter when it was off -- so campaigns on the group-mode
        fast path report real message counts instead of zeros.
        """
        self.trials += 1
        stats = result.message_stats
        if stats is not None:
            self.total_messages += stats["messages_sent"]
            self.total_shun_events += stats["shun_events"]
            self.total_dropped += stats["messages_dropped"]
            for kind, count in (stats.get("sent_by_kind") or {}).items():
                self.sent_by_kind[str(kind)] += count
        self.total_steps += result.steps
        self.total_elapsed_s += getattr(result, "elapsed_s", 0.0)
        director = result.network.director
        if director is not None:
            for _step, action, _pid, _detail in getattr(director, "actions", ()):
                self.director_actions[action] += 1
        if result.metrics is not None:
            self.metric_counters.update(result.metrics.get("counters", {}))
            crypto = result.metrics.get("crypto") or {}
            # Only the crypto-*plane* cache is folded in: it lives on the
            # trial's own network, so its hit/miss split is a deterministic
            # function of the trial.  The Lagrange and plan-dispatch deltas
            # track process-global caches whose warmth depends on which
            # trials ran earlier in the same process -- folding them would
            # break the parallel == sequential aggregate guarantee.
            for key, value in (crypto.get("plane_cache") or {}).items():
                # Cache *sizes* are end-of-trial gauges, not additive;
                # zero counts stay absent (``Counter.__add__`` drops
                # zeros, so folding them would break merge identity).
                if value and not key.endswith("_size"):
                    self.metric_counters["crypto.plane." + key] += value
            for name, hist in (result.metrics.get("histograms") or {}).items():
                self.metric_histograms[name] = _merge_histograms(
                    self.metric_histograms.get(name), hist
                )
        if result.disagreement:
            self.disagreements += 1
            self.outputs.append(dict(result.outputs))
            return
        value = result.values[0] if result.values else None
        self.outputs.append(value)
        self.value_counts[repr(value)] += 1

    # ------------------------------------------------------------------
    def merge(self, other: "TrialAggregate") -> "TrialAggregate":
        """Return a new aggregate combining ``self`` then ``other``.

        Merging preserves trial order (``self``'s outputs come first), so
        folding per-chunk aggregates back together in dispatch order yields
        exactly the aggregate a sequential run would have produced.  The
        operation is associative with :meth:`empty` as identity, which is what
        lets the campaign runner fan chunks out to worker processes.
        """
        combined = TrialAggregate(
            trials=self.trials + other.trials,
            disagreements=self.disagreements + other.disagreements,
            value_counts=self.value_counts + other.value_counts,
            total_messages=self.total_messages + other.total_messages,
            total_steps=self.total_steps + other.total_steps,
            total_shun_events=self.total_shun_events + other.total_shun_events,
            total_dropped=self.total_dropped + other.total_dropped,
            director_actions=self.director_actions + other.director_actions,
            metric_counters=self.metric_counters + other.metric_counters,
            sent_by_kind=self.sent_by_kind + other.sent_by_kind,
            outputs=self.outputs + other.outputs,
            total_elapsed_s=self.total_elapsed_s + other.total_elapsed_s,
        )
        # ``Counter.__add__`` drops zero/negative entries; histogram payloads
        # need an explicit keywise merge instead.
        histograms = {
            name: _merge_histograms(None, hist)
            for name, hist in self.metric_histograms.items()
        }
        for name, hist in other.metric_histograms.items():
            histograms[name] = _merge_histograms(histograms.get(name), hist)
        combined.metric_histograms = histograms
        return combined

    @classmethod
    def empty(cls) -> "TrialAggregate":
        """The identity element for :meth:`merge`."""
        return cls()

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-compatible representation (lossless up to :func:`_jsonable`).

        Unlike :meth:`summary` this keeps the raw totals and per-trial
        outputs, so aggregates can be persisted, shipped across process
        boundaries and recombined with :meth:`merge` after
        :meth:`from_dict`.
        """
        return {
            "trials": self.trials,
            "disagreements": self.disagreements,
            "value_counts": dict(self.value_counts),
            "total_messages": self.total_messages,
            "total_steps": self.total_steps,
            "total_shun_events": self.total_shun_events,
            "total_dropped": self.total_dropped,
            "director_actions": dict(self.director_actions),
            "metric_counters": dict(self.metric_counters),
            "sent_by_kind": dict(self.sent_by_kind),
            "metric_histograms": {
                name: dict(hist) for name, hist in self.metric_histograms.items()
            },
            "outputs": [_jsonable(output) for output in self.outputs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrialAggregate":
        """Rebuild an aggregate from :meth:`to_dict` output.

        The observability fields default when absent so stores written
        before they existed keep loading.
        """
        return cls(
            trials=int(data["trials"]),
            disagreements=int(data["disagreements"]),
            value_counts=Counter(data["value_counts"]),
            total_messages=int(data["total_messages"]),
            total_steps=int(data["total_steps"]),
            total_shun_events=int(data["total_shun_events"]),
            total_dropped=int(data.get("total_dropped", 0)),
            director_actions=Counter(data.get("director_actions", {})),
            metric_counters=Counter(data.get("metric_counters", {})),
            sent_by_kind=Counter(data.get("sent_by_kind", {})),
            metric_histograms={
                name: dict(hist)
                for name, hist in data.get("metric_histograms", {}).items()
            },
            outputs=list(data["outputs"]),
        )

    def to_transport_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` plus the advisory wall-clock total.

        Used when an aggregate crosses a process boundary and comes straight
        back (campaign chunk results): the deterministic artifact contract of
        :meth:`to_dict` is for *persisted* statistics, but dropping timing in
        transit would zero the throughput column of parallel runs.
        """
        payload = self.to_dict()
        payload["total_elapsed_s"] = self.total_elapsed_s
        return payload

    @classmethod
    def from_transport_dict(cls, data: Dict[str, Any]) -> "TrialAggregate":
        """Inverse of :meth:`to_transport_dict` (timing key optional)."""
        aggregate = cls.from_dict(data)
        aggregate.total_elapsed_s = float(data.get("total_elapsed_s", 0.0))
        return aggregate

    # ------------------------------------------------------------------
    def frequency(self, value: Any) -> float:
        """Fraction of agreeing trials whose common output was ``value``."""
        if self.trials == 0:
            return 0.0
        return self.value_counts[repr(value)] / self.trials

    @property
    def disagreement_rate(self) -> float:
        """Fraction of trials in which honest parties disagreed."""
        return self.disagreements / self.trials if self.trials else 0.0

    @property
    def mean_messages(self) -> float:
        """Average number of messages sent per trial."""
        return self.total_messages / self.trials if self.trials else 0.0

    @property
    def mean_steps(self) -> float:
        """Average number of deliveries needed per trial."""
        return self.total_steps / self.trials if self.trials else 0.0

    @property
    def mean_shun_events(self) -> float:
        """Average number of shunning events per trial."""
        return self.total_shun_events / self.trials if self.trials else 0.0

    @property
    def mean_dropped(self) -> float:
        """Average number of dropped (shunned) deliveries per trial."""
        return self.total_dropped / self.trials if self.trials else 0.0

    @property
    def deliveries_per_s(self) -> Optional[float]:
        """Throughput (delivered messages / wall-clock second), or None.

        None when no timing was recorded -- e.g. aggregates reloaded from
        stores written before throughput tracking existed.
        """
        if self.total_elapsed_s <= 0.0:
            return None
        return self.total_steps / self.total_elapsed_s

    def hit_rate(self, predicate) -> float:
        """Fraction of agreeing trials whose output satisfies ``predicate``."""
        if self.trials == 0:
            return 0.0
        hits = sum(
            1
            for output in self.outputs
            if not isinstance(output, dict) and predicate(output)
        )
        return hits / self.trials

    def summary(self) -> Dict[str, Any]:
        """Headline metrics as a plain dictionary (for benchmark reporting)."""
        throughput = self.deliveries_per_s
        return {
            "trials": self.trials,
            "disagreement_rate": self.disagreement_rate,
            "value_counts": dict(self.value_counts),
            "mean_messages": round(self.mean_messages, 1),
            "mean_steps": round(self.mean_steps, 1),
            "mean_shun_events": round(self.mean_shun_events, 3),
            "mean_dropped": round(self.mean_dropped, 3),
            "director_actions": dict(self.director_actions),
            "sent_by_kind": dict(self.sent_by_kind),
            "deliveries_per_s": None if throughput is None else round(throughput),
        }


def aggregate(results: Iterable[SimulationResult]) -> TrialAggregate:
    """Aggregate an iterable of simulation results."""
    stats = TrialAggregate()
    for result in results:
        stats.add(result)
    return stats
