"""One-call runners for every protocol in the library.

These functions are the public entry points used by the examples, tests and
benchmarks.  Each builds a :class:`~repro.net.runtime.Simulation`, wires the
requested protocol at every honest party, applies corruptions and the chosen
scheduler, runs to completion and returns a
:class:`~repro.net.runtime.SimulationResult`.

Example::

    from repro import api
    result = api.run_coinflip(n=4, seed=1, rounds=4)
    print(result.agreed_value)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from repro.core.config import ProtocolParams
from repro.errors import ConfigurationError
from repro.core.results import TrialAggregate, aggregate
from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.net.runtime import Simulation, SimulationResult
from repro.net.scheduler import Scheduler
from repro.protocols.aba import BinaryAgreement, CoinSource, OracleCoinSource
from repro.protocols.acast import ACast
from repro.protocols.coinflip import CoinFlip
from repro.protocols.common_subset import CommonSubset
from repro.protocols.fair_choice import FairChoice
from repro.protocols.fba import FairByzantineAgreement
from repro.protocols.svss import SVSSRec, SVSSShare
from repro.protocols.weak_coin import WeakCommonCoin

BehaviorFactory = Callable[[Process], Any]
Corruptions = Optional[Mapping[int, BehaviorFactory]]
#: Optional per-run optimisation toggles (``tuning={...}``): a JSON-shaped
#: mapping every runner threads onto :class:`~repro.net.runtime.Simulation`.
#: Keys (all optional) and their default-on semantics:
#:
#: * ``pause_gc`` (bool, default True) -- pause the cyclic GC during the run;
#: * ``group_mode`` (bool | None, default None) -- False forces the flat
#:   per-message delivery queue even when group batching is possible;
#: * ``intern_sessions`` (bool, default True) -- False disables network-wide
#:   session-tuple canonicalisation;
#: * ``eval_plan`` (``"auto"`` | ``"scalar"``, default auto) -- "scalar"
#:   forces the plain-int crypto kernels for the whole run.
#:
#: The ablation harness (:mod:`repro.analysis.ablation`) drives these through
#: campaign cell params; every toggle preserves per-seed outputs and message
#: statistics byte-identically (the fast paths are tested against the scalar/
#: flat oracles), only wall-clock behaviour changes.
Tuning = Optional[Mapping[str, Any]]

_TUNING_KEYS = frozenset({"pause_gc", "group_mode", "intern_sessions", "eval_plan"})

#: Default iteration override used when callers do not specify one.  The
#: paper's CoinFlip runs k = Theta(log(1/epsilon)) SVSS iterations; at
#: simulation scale a handful of iterations already exercises the full
#: mechanism (dealing, reconstruction, XOR combination) while keeping each
#: trial fast enough for thousand-seed sweeps.  An odd value avoids majority
#: ties, which at simulation scale would visibly skew the coin towards the
#: tie-breaking value.
DEFAULT_COINFLIP_ROUNDS = 5


def _simulation(
    n: int,
    seed: int,
    scheduler: Optional[Scheduler],
    corruptions: Corruptions,
    max_steps: Optional[int] = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> Simulation:
    if prime is None:
        params = ProtocolParams.for_parties(n)
    else:
        params = ProtocolParams.for_parties(n, prime=prime)
    knobs = dict(tuning or {})
    unknown = set(knobs) - _TUNING_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown tuning keys {sorted(unknown)}; "
            f"known: {sorted(_TUNING_KEYS)}"
        )
    sim = Simulation(
        params=params,
        scheduler=scheduler,
        seed=seed,
        tracing=tracing,
        director=director,
        session_table=session_table,
        metering=metering,
        metrics=metrics,
        sinks=list(sinks) if sinks else None,
        pause_gc=bool(knobs.get("pause_gc", True)),
        group_mode=knobs.get("group_mode"),
        intern_sessions=bool(knobs.get("intern_sessions", True)),
        eval_plan=knobs.get("eval_plan"),
    )
    if max_steps is not None:
        sim.max_steps = max_steps
    for pid, factory in (corruptions or {}).items():
        sim.corrupt(pid, factory)
    return sim


def run_acast(
    n: int,
    value: Any,
    sender: int = 0,
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run one reliable broadcast of ``value`` from ``sender``."""
    sim = _simulation(
        n, seed, scheduler, corruptions, tracing=tracing, prime=prime,
        director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    return sim.run(
        ("acast",),
        ACast.factory(sender),
        inputs={sender: {"value": value}},
    )


class _ShareThenReconstruct(Protocol):
    """SVSS harness protocol: complete SVSS-Share, then reconstruct.

    Module-level (rather than defined inside :func:`run_svss`) so campaign
    workers can pickle runners that reference it and the perf benchmarks can
    drive the identical harness through the frozen legacy event loop.
    """

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer

    def on_start(self, value: Optional[int] = None, **_: Any) -> None:
        kwargs = {"value": value} if self.pid == self.dealer else {}
        self.spawn(("share",), SVSSShare.factory(self.dealer), **kwargs)

    def on_child_complete(self, child: Protocol) -> None:
        if isinstance(child, SVSSShare):
            self.spawn(("rec",), SVSSRec.factory(self.dealer), share=child.output)
        elif isinstance(child, SVSSRec):
            self.complete(int(child.output))


def svss_harness_factory(dealer: int) -> Callable[[Process, SessionId], Protocol]:
    """Factory for the share-then-reconstruct harness used by :func:`run_svss`."""

    def factory(process: Process, session: SessionId) -> Protocol:
        return _ShareThenReconstruct(process, session, dealer)

    return factory


def run_svss(
    n: int,
    secret: int,
    dealer: int = 0,
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run SVSS-Share followed by SVSS-Rec and return the reconstructed values.

    The share and reconstruction phases are driven by a small wrapper protocol
    at every party, mirroring how CoinFlip uses SVSS.
    """
    sim = _simulation(
        n, seed, scheduler, corruptions, tracing=tracing, prime=prime,
        director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    return sim.run(
        ("svss_harness",),
        svss_harness_factory(dealer),
        inputs={dealer: {"value": secret}},
    )


def run_aba(
    n: int,
    inputs: Mapping[int, int],
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    coin_source: Optional[CoinSource] = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run binary Byzantine agreement with the given per-party inputs."""
    sim = _simulation(
        n, seed, scheduler, corruptions, tracing=tracing, prime=prime,
        director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    source = coin_source or OracleCoinSource(seed)
    return sim.run(
        ("aba",),
        BinaryAgreement.factory(source),
        inputs={pid: {"value": value} for pid, value in inputs.items()},
    )


class _PredicateDriver(Protocol):
    """CommonSubset harness: set the predicate for ``ready``, report the subset."""

    def __init__(
        self,
        process: Process,
        session: SessionId,
        ready: Iterable[int],
        source: CoinSource,
    ) -> None:
        super().__init__(process, session)
        self.ready = sorted(ready)
        self.source = source

    def on_start(self, **_: Any) -> None:
        child = self.spawn(
            ("cs",), CommonSubset.factory(self.source), k=self.params.quorum
        )
        for index in self.ready:
            child.set_predicate(index)

    def on_child_complete(self, child: Protocol) -> None:
        self.complete(frozenset(child.output))


def run_common_subset(
    n: int,
    ready_parties: Iterable[int],
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    coin_source: Optional[CoinSource] = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run CommonSubset where the predicate is immediately true for ``ready_parties``."""
    ready = set(ready_parties)
    source = coin_source or OracleCoinSource(seed)

    def factory(process: Process, session: SessionId) -> Protocol:
        return _PredicateDriver(process, session, ready, source)

    sim = _simulation(
        n, seed, scheduler, corruptions, tracing=tracing, prime=prime,
        director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    return sim.run(("common_subset_harness",), factory)


def run_weak_coin(
    n: int,
    seed: int = 0,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run one weak common coin flip."""
    sim = _simulation(
        n, seed, scheduler, corruptions, tracing=tracing, prime=prime,
        director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    return sim.run(("weak_coin",), WeakCommonCoin.factory())


def run_coinflip(
    n: int,
    seed: int = 0,
    epsilon: float = 0.25,
    rounds: Optional[int] = DEFAULT_COINFLIP_ROUNDS,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    coin_source: Optional[CoinSource] = None,
    max_steps: Optional[int] = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run the strong common coin (Algorithm 1) once.

    ``tracing=False`` runs the network with all trace hooks disabled -- the
    Monte-Carlo campaign configuration, where only outputs are read.
    """
    sim = _simulation(
        n, seed, scheduler, corruptions, max_steps=max_steps, tracing=tracing,
        prime=prime, director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    source = coin_source or OracleCoinSource(seed)
    return sim.run(
        ("coinflip",),
        CoinFlip.factory(epsilon=epsilon, rounds_override=rounds, coin_source=source),
    )


def run_fair_choice(
    n: int,
    m: int,
    seed: int = 0,
    coinflip_rounds: int = 1,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    coin_source: Optional[CoinSource] = None,
    max_steps: Optional[int] = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run FairChoice (Algorithm 2) over ``m`` candidates."""
    sim = _simulation(
        n, seed, scheduler, corruptions, max_steps=max_steps, tracing=tracing,
        prime=prime, director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    source = coin_source or OracleCoinSource(seed)
    return sim.run(
        ("fair_choice",),
        FairChoice.factory(
            coinflip_rounds_override=coinflip_rounds, coin_source=source
        ),
        common_input={"m": m},
    )


def run_fba(
    n: int,
    inputs: Mapping[int, Any],
    seed: int = 0,
    coinflip_rounds: int = 1,
    scheduler: Optional[Scheduler] = None,
    corruptions: Corruptions = None,
    coin_source: Optional[CoinSource] = None,
    max_steps: Optional[int] = None,
    tracing: bool = True,
    prime: Optional[int] = None,
    director: Optional[Any] = None,
    session_table: Optional[Dict[Any, Any]] = None,
    metering: Optional[bool] = None,
    metrics: Optional[Any] = None,
    sinks: Optional[Any] = None,
    tuning: Tuning = None,
) -> SimulationResult:
    """Run fair Byzantine agreement (Algorithm 3) with the given inputs."""
    sim = _simulation(
        n, seed, scheduler, corruptions, max_steps=max_steps, tracing=tracing,
        prime=prime, director=director, session_table=session_table,
        metering=metering, metrics=metrics, sinks=sinks, tuning=tuning,
    )
    source = coin_source or OracleCoinSource(seed)
    return sim.run(
        ("fba",),
        FairByzantineAgreement.factory(
            coin_source=source, coinflip_rounds_override=coinflip_rounds
        ),
        inputs={pid: {"value": value} for pid, value in inputs.items()},
    )


def run_many(
    runner: Callable[..., SimulationResult],
    seeds: Iterable[int],
    workers: int = 1,
    chunk_trials: Optional[int] = None,
    **kwargs: Any,
) -> TrialAggregate:
    """Run ``runner`` once per seed and aggregate the outcomes.

    With ``workers > 1`` the seeds are fanned out across a process pool via
    :mod:`repro.experiments.runner`, ``chunk_trials`` seeds per task; every
    trial is still seeded explicitly and chunk aggregates travel back as
    pickled objects, so the result is identical to a sequential run.
    Parallel execution requires ``runner`` and all ``kwargs`` to be picklable
    (module-level functions and plain data are; lambdas and bound schedulers
    may not be).

    Example::

        stats = run_many(run_coinflip, range(50), n=4, rounds=3, workers=4)
        print(stats.frequency(0), stats.frequency(1))
    """
    if workers > 1:
        from repro.experiments.runner import DEFAULT_CHUNK_TRIALS, run_seeds

        return run_seeds(
            runner,
            seeds,
            workers=workers,
            chunk_trials=chunk_trials or DEFAULT_CHUNK_TRIALS,
            **kwargs,
        )
    return aggregate(runner(seed=seed, **kwargs) for seed in seeds)
