"""Protocol parameterisation shared by every protocol in the library.

The central object is :class:`ProtocolParams`, which carries the number of
parties ``n``, the corruption bound ``t`` and the finite field used by the
secret-sharing layer.  The paper's protocols require optimal resilience,
``n >= 3t + 1``; the constructor validates this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default prime modulus for the secret-sharing field.  Large enough that the
#: ``mod 2`` reduction used by CoinFlip (step 6 of Algorithm 1) is essentially
#: unbiased, small enough that arithmetic stays cheap in pure Python.
DEFAULT_PRIME = 2_147_483_647  # 2**31 - 1, a Mersenne prime


def validate_resilience(n: int, t: int) -> None:
    """Raise :class:`ConfigurationError` unless ``n >= 3t + 1`` and ``t >= 0``."""
    if n <= 0:
        raise ConfigurationError(f"number of parties must be positive, got n={n}")
    if t < 0:
        raise ConfigurationError(f"corruption bound must be non-negative, got t={t}")
    if n < 3 * t + 1:
        raise ConfigurationError(
            f"optimal resilience requires n >= 3t + 1; got n={n}, t={t}"
        )


def max_faults(n: int) -> int:
    """Return the largest ``t`` with ``3t + 1 <= n`` (optimal resilience)."""
    if n < 1:
        raise ConfigurationError(f"number of parties must be positive, got n={n}")
    return (n - 1) // 3


@dataclass(frozen=True)
class ProtocolParams:
    """Immutable protocol parameters.

    Attributes:
        n: total number of parties, indexed ``0 .. n-1``.
        t: maximum number of corrupted parties tolerated.
        prime: modulus of the finite field used for secret sharing.
    """

    n: int
    t: int
    prime: int = field(default=DEFAULT_PRIME)

    def __post_init__(self) -> None:
        validate_resilience(self.n, self.t)
        if self.prime <= self.n:
            raise ConfigurationError(
                f"field modulus must exceed the number of parties; "
                f"got prime={self.prime}, n={self.n}"
            )

    @classmethod
    def for_parties(cls, n: int, prime: int = DEFAULT_PRIME) -> "ProtocolParams":
        """Build parameters for ``n`` parties with the maximum tolerated ``t``."""
        return cls(n=n, t=max_faults(n), prime=prime)

    @property
    def quorum(self) -> int:
        """Size of an ``n - t`` quorum (at least ``2t + 1`` honest-capable set)."""
        return self.n - self.t

    @property
    def party_ids(self) -> range:
        """Iterable of all party identifiers."""
        return range(self.n)

    def is_valid_party(self, pid: int) -> bool:
        """Return True when ``pid`` names an existing party."""
        return 0 <= pid < self.n
