"""repro: reproduction of "Revisiting Asynchronous Fault Tolerant Computation
with Optimal Resilience" (Abraham, Dolev, Stern; PODC 2020).

The package provides

* a deterministic asynchronous network simulator with adversarial scheduling
  (:mod:`repro.net`),
* information-theoretic secret-sharing primitives (:mod:`repro.crypto`),
* the paper's protocol stack -- A-Cast, shunning VSS, binary BA, CommonSubset,
  the strong common coin ``CoinFlip``, ``FairChoice`` and the fair Byzantine
  agreement ``FBA`` (:mod:`repro.protocols`),
* the Section-2 lower-bound attack machinery (:mod:`repro.lowerbound`),
* analytic reproductions of the appendices (:mod:`repro.analysis`), and
* one-call runners (:mod:`repro.core.api`, re-exported as ``repro.api``).
"""

from repro.core import api
from repro.core.config import DEFAULT_PRIME, ProtocolParams, max_faults
from repro.net.runtime import Simulation, SimulationResult

__version__ = "1.1.0"

__all__ = [
    "api",
    "DEFAULT_PRIME",
    "ProtocolParams",
    "max_faults",
    "Simulation",
    "SimulationResult",
    "__version__",
]
