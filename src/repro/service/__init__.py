"""Long-lived sharded beacon service over the deterministic protocol stack.

The campaign layer (:mod:`repro.experiments`) runs to completion and exits;
this package keeps the expensive state *resident* -- per-(prime, n)
evaluation plans, behaviour factories, interned session tables -- behind a
supervised pool of shard processes, so a stream of coin/ABA/FBA requests
pays world-building once per shape instead of once per request.

Modules:

* :mod:`repro.service.requests` -- request/response envelopes, canonical
  payloads, the cold-rerun oracle;
* :mod:`repro.service.shard` -- the resident worker process;
* :mod:`repro.service.frontend` -- dispatch, deadlines/retries, heartbeats,
  backpressure, graceful shutdown;
* :mod:`repro.service.loadgen` -- synthetic load, chaos injection,
  byte-identity verification;
* :mod:`repro.service.bench` -- warm-vs-cold and end-to-end benchmarks.
"""

from repro.service.frontend import (
    BeaconService,
    ServicePolicy,
)
from repro.service.loadgen import LoadReport, build_requests, run_load
from repro.service.requests import (
    BeaconRequest,
    BeaconResponse,
    canonical_payload,
    cold_payload,
)

__all__ = [
    "BeaconRequest",
    "BeaconResponse",
    "BeaconService",
    "LoadReport",
    "ServicePolicy",
    "build_requests",
    "canonical_payload",
    "cold_payload",
    "run_load",
]
