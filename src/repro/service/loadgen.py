"""Synthetic load for the beacon service, with chaos and verification.

:func:`build_requests` manufactures a deterministic mixed-protocol request
stream (coinflip / weak_coin / aba / fba over explicit seeds), optionally
lacing every k-th request with a chaos fault from the campaign plane's
``FAULTS`` registry -- a SIGKILL or hang that takes the serving shard down
mid-request.  :func:`run_load` drives the stream through a running
:class:`~repro.service.frontend.BeaconService`, honouring shed responses by
backing off and resubmitting, and (optionally) verifies **every** OK response
against :func:`~repro.service.requests.cold_payload` -- a cold one-shot rerun
of the same request in this process.  A single byte of divergence between the
service's answer (possibly computed after shard deaths and retries) and the
cold oracle is a correctness failure, recorded per request in the
:class:`LoadReport`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServiceError
from repro.experiments.spec import canonical_json
from repro.service.frontend import BeaconService
from repro.service.requests import BeaconRequest, BeaconResponse, cold_payload

#: Default protocol mix exercised by the load generator.
DEFAULT_PROTOCOLS = ("coinflip", "weak_coin", "aba", "fba")

#: Faults the load generator knows how to inject (subset of ``FAULTS``).
INJECTABLE_FAULTS = ("raise", "exit", "sigkill", "hang")


def _protocol_params(protocol: str, n: int, seed: int) -> Dict[str, Any]:
    """Deterministic per-protocol params; input bits derive from the seed."""
    if protocol == "coinflip":
        return {"rounds": 2}
    if protocol == "aba":
        return {"inputs": {pid: (seed >> pid) & 1 for pid in range(n)}}
    if protocol == "fba":
        return {
            "inputs": {pid: (seed >> pid) & 1 for pid in range(n)},
            "coinflip_rounds": 1,
        }
    return {}


def build_requests(
    count: int,
    n: int = 4,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    seed_base: int = 1000,
    inject: Optional[str] = None,
    inject_every: int = 7,
) -> List[BeaconRequest]:
    """A deterministic request stream: ``count`` requests cycling ``protocols``.

    Seeds run ``seed_base, seed_base + 1, ...`` so the stream is reproducible
    and every request is distinct.  With ``inject``, every ``inject_every``-th
    request carries that fault with ``attempts=[0]`` -- it fires on the first
    dispatch only, so the service's retry machinery must recover it.
    """
    if inject is not None and inject not in INJECTABLE_FAULTS:
        raise ServiceError(
            f"unknown injectable fault {inject!r}; known: "
            f"{', '.join(INJECTABLE_FAULTS)}"
        )
    requests: List[BeaconRequest] = []
    for index in range(count):
        protocol = protocols[index % len(protocols)]
        seed = seed_base + index
        fault: Optional[Dict[str, Any]] = None
        if inject is not None and inject_every > 0 and index % inject_every == 0:
            fault = {"fault": inject, "params": {"attempts": [0]}}
            if inject == "hang":
                # Hang "forever" relative to the request deadline; the
                # SIGKILL-and-replace sweep is what must end it.
                fault["params"]["seconds"] = 30.0
        requests.append(
            BeaconRequest(
                protocol=protocol,
                n=n,
                seed=seed,
                params=_protocol_params(protocol, n, seed),
                request_id=f"load-{index}",
                fault=fault,
            )
        )
    return requests


@dataclass
class LoadReport:
    """Outcome of one load run: availability, latency, divergence."""

    total: int
    ok: int
    errors: int
    shed_events: int
    divergent: List[Dict[str, Any]] = field(default_factory=list)
    error_ids: List[str] = field(default_factory=list)
    verified: int = 0
    warm_hits: int = 0
    elapsed_s: float = 0.0

    @property
    def availability(self) -> float:
        """Completed-OK fraction of all finally-answered requests."""
        answered = self.ok + self.errors
        return self.ok / answered if answered else 0.0

    @property
    def requests_per_s(self) -> Optional[float]:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "ok": self.ok,
            "errors": self.errors,
            "shed_events": self.shed_events,
            "availability": round(self.availability, 6),
            "verified": self.verified,
            "divergent": list(self.divergent),
            "error_ids": list(self.error_ids),
            "warm_hits": self.warm_hits,
            "elapsed_s": round(self.elapsed_s, 3),
            "requests_per_s": (
                round(self.requests_per_s, 3)
                if self.requests_per_s is not None else None
            ),
        }

    def render_text(self) -> str:
        lines = [
            f"load: {self.ok}/{self.total} ok, {self.errors} errors, "
            f"{self.shed_events} shed events "
            f"(availability {self.availability:.4f})",
            f"verified: {self.verified} responses against cold reruns, "
            f"{len(self.divergent)} divergent",
        ]
        if self.requests_per_s is not None:
            lines.append(
                f"throughput: {self.requests_per_s:.1f} requests/s "
                f"({self.warm_hits} warm hits) in {self.elapsed_s:.2f}s"
            )
        for entry in self.divergent[:5]:
            lines.append(f"  DIVERGENT {entry['request_id']}")
        return "\n".join(lines)


def run_load(
    service: BeaconService,
    requests: Sequence[BeaconRequest],
    verify: bool = True,
    max_shed_rounds: int = 100_000,
) -> LoadReport:
    """Drive ``requests`` through ``service`` and collect a :class:`LoadReport`.

    Shed responses are honoured: the request waits out ``retry_after_s`` and
    is resubmitted (counted in ``shed_events``), so backpressure costs
    latency, never answers.  With ``verify``, every OK payload is compared --
    via canonical JSON bytes -- against a cold one-shot rerun.
    """
    started = time.monotonic()
    by_id = {request.request_id: request for request in requests}
    submit_queue: List[BeaconRequest] = list(requests)
    outstanding: set = set()
    report = LoadReport(total=len(requests), ok=0, errors=0, shed_events=0)
    responses: Dict[str, BeaconResponse] = {}
    shed_rounds = 0
    retry_at: Dict[str, float] = {}

    while submit_queue or outstanding:
        # Submit whatever is due (respecting shed retry-after hints).
        now = time.monotonic()
        deferred: List[BeaconRequest] = []
        for request in submit_queue:
            if retry_at.get(request.request_id, 0.0) > now:
                deferred.append(request)
                continue
            shed = service.submit(request)
            if shed is not None:
                report.shed_events += 1
                shed_rounds += 1
                if shed_rounds > max_shed_rounds:
                    raise ServiceError(
                        f"load generator shed {shed_rounds} times; the "
                        f"service is not absorbing this request rate"
                    )
                retry_at[request.request_id] = now + (shed.retry_after_s or 0.01)
                deferred.append(request)
            else:
                outstanding.add(request.request_id)
        submit_queue = deferred

        service.poll()
        for request_id in list(outstanding):
            response = service.take_response(request_id)
            if response is not None:
                outstanding.discard(request_id)
                responses[request_id] = response

    report.elapsed_s = time.monotonic() - started

    for request_id, response in sorted(responses.items()):
        if response.ok:
            report.ok += 1
            if response.warm:
                report.warm_hits += 1
            if verify:
                request = by_id[request_id]
                expected = cold_payload(request)
                report.verified += 1
                if canonical_json(response.payload) != canonical_json(expected):
                    report.divergent.append(
                        {
                            "request_id": request_id,
                            "request": request.to_dict(),
                            "service": response.payload,
                            "cold": expected,
                        }
                    )
        else:
            report.errors += 1
            report.error_ids.append(request_id)
    return report
